"""The Advertisement Orchestrator: Algorithm 1 plus the learning loop.

Greedy structure follows the paper's pseudocode exactly:

* outer loop — learning iterations: solve, execute the advertisement against
  ground truth, observe which ingresses UGs actually used, fold the
  observations into the routing model, repeat;
* middle loop — one prefix at a time from the budget;
* inner loop — advertise the current prefix via as many peerings as provide
  positive marginal benefit (prefix reuse), considered in ranked order of
  estimated improvement (Eq. 2).

The implementation accelerates the ranked scan with lazy re-evaluation
(stale marginals are recomputed only when they reach the top of the heap),
mirroring the paper's note that "UGs tend to have paths via a relatively
small fraction of ingresses, speeding up computation".
"""

from __future__ import annotations

import heapq
import logging
import math
import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.core.advertisement import AdvertisementConfig
from repro.core.benefit import BenefitEvaluator, LatencyFn, realized_benefit
from repro.core.routing_model import DEFAULT_D_REUSE_KM, RoutingModel
from repro.kernels import ComputeBackend
from repro.perf import PERF
from repro.scenario import Scenario
from repro.telemetry import TRACER, emit_event
from repro.usergroups.usergroup import UserGroup

#: Marginal benefit below this (volume-weighted ms) counts as "no benefit".
EPSILON_BENEFIT = 1e-9
#: UG-rows × peering-columns slot count at which
#: ``OrchestratorConfig.dense_matrices=None`` flips to the dense layout.
#: Far above every classic preset (azure ≈ 1M slots) and far below the
#: ``mega`` preset (≈ 200M slots), so only genuinely large worlds switch.
DENSE_AUTO_SLOTS = 32_000_000
#: Histogram buckets for accepted marginal benefits (volume-weighted ms).
_BENEFIT_BUCKETS = (
    0.01, 0.1, 1.0, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0,
)
_DEBUG_CHECK = False  # cross-check vectorized marginals against the scalar path

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class OrchestratorConfig:
    """Everything that parameterizes one :class:`PainterOrchestrator`.

    Replaces the growing positional signature
    (``prefix_budget, d_reuse_km, latency_of, allow_reuse``); construct with
    ``PainterOrchestrator(scenario, OrchestratorConfig(prefix_budget=10))``.
    """

    #: Number of /24 prefixes Algorithm 1 may allocate (its budget, k).
    prefix_budget: int
    #: Geographic reuse distance for the routing model (Eq. 3).
    d_reuse_km: float = DEFAULT_D_REUSE_KM
    #: Latency oracle override; ``None`` uses the scenario's ground truth.
    latency_of: Optional[LatencyFn] = None
    #: Ablation knob: with reuse disabled each prefix is advertised via a
    #: single peering, reducing Algorithm 1 to a greedy one-per-peering.
    allow_reuse: bool = True
    #: Intra-solve parallelism: shard marginal evaluations across this many
    #: persistent fork workers (``repro.parallel``).  ``0`` or ``1`` solves
    #: serially.  Results are bit-identical for every worker count; on any
    #: worker failure the solve falls back to the serial path.
    workers: int = 0
    #: Per-message worker-pool timeout in seconds; ``None`` uses the pool
    #: default (``repro.parallel.pool.DEFAULT_TIMEOUT_S``).
    worker_timeout_s: Optional[float] = None
    #: After a pool failure trips the serial-fallback breaker, retry the
    #: parallel path once this many consecutive solves have run serially.
    #: ``0`` keeps the pre-existing behavior: broken stays broken forever.
    parallel_retry_solves: int = 3
    #: Compute backend for the marginal-evaluation kernels: a registry name
    #: (``"auto"``, ``"numpy"``, ``"numba"``, ``"cupy"``) or a
    #: :class:`repro.kernels.ComputeBackend` instance.  ``"auto"`` picks the
    #: best available; an explicitly named backend that is missing or fails
    #: to compile degrades to the numpy reference with a recorded fallback
    #: (``kernels.fallbacks`` counter + ``backend_fallback`` event).  Every
    #: backend is bit-identical to numpy by construction — see
    #: :mod:`repro.kernels`.
    backend: Union[str, ComputeBackend] = "auto"
    #: Dense-matrix mode for very large worlds: ``None`` enables it
    #: automatically when the UG×peering slot count reaches
    #: ``DENSE_AUTO_SLOTS``; ``True``/``False`` force it on/off.  When on,
    #: the evaluator materializes flat float64 latency/distance matrices
    #: (chunked fill, memo trimming) instead of per-UG Python rows — the
    #: layout that lets the ``mega`` preset fit in memory.
    dense_matrices: Optional[bool] = None
    #: Optional byte budget for the two dense matrices; exceeded budgets
    #: raise ``MemoryBudgetExceeded`` before allocation.
    dense_budget_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.prefix_budget < 1:
            raise ValueError("prefix budget must be at least 1")
        if self.d_reuse_km < 0:
            raise ValueError("d_reuse_km must be non-negative")
        if self.workers < 0:
            raise ValueError("workers must be non-negative")
        if self.worker_timeout_s is not None and self.worker_timeout_s <= 0:
            raise ValueError("worker_timeout_s must be positive")
        if self.parallel_retry_solves < 0:
            raise ValueError("parallel_retry_solves must be non-negative")
        if not isinstance(self.backend, (str, ComputeBackend)):
            raise ValueError(
                "backend must be a registry name or a ComputeBackend instance"
            )
        if self.dense_budget_bytes is not None and self.dense_budget_bytes < 1:
            raise ValueError("dense_budget_bytes must be positive")


def _coerce_orchestrator_config(
    config: Optional[Union[OrchestratorConfig, int]],
    prefix_budget: Optional[int],
    d_reuse_km: Optional[float],
    latency_of: Optional[LatencyFn],
    allow_reuse: Optional[bool],
) -> OrchestratorConfig:
    """Resolve the new-style config and the deprecated keyword form."""
    legacy_used = any(
        value is not None
        for value in (prefix_budget, d_reuse_km, latency_of, allow_reuse)
    )
    if isinstance(config, OrchestratorConfig):
        if legacy_used:
            raise TypeError(
                "pass either an OrchestratorConfig or the legacy keyword "
                "arguments, not both"
            )
        return config
    if isinstance(config, int):
        # Legacy positional budget: PainterOrchestrator(scenario, 10).
        warnings.warn(
            "PainterOrchestrator(scenario, prefix_budget, ...) is deprecated; "
            "use PainterOrchestrator(scenario, OrchestratorConfig(...))",
            DeprecationWarning,
            stacklevel=3,
        )
        if prefix_budget is not None:
            raise TypeError("prefix budget given both positionally and by keyword")
        prefix_budget = config
    elif config is None:
        if prefix_budget is None:
            raise TypeError(
                "PainterOrchestrator needs an OrchestratorConfig "
                "(or the deprecated prefix_budget keyword)"
            )
        warnings.warn(
            "the PainterOrchestrator(scenario, prefix_budget=..., ...) keyword "
            "form is deprecated; use "
            "PainterOrchestrator(scenario, OrchestratorConfig(...))",
            DeprecationWarning,
            stacklevel=3,
        )
    else:
        raise TypeError(f"config must be an OrchestratorConfig, not {type(config)!r}")
    kwargs = {"prefix_budget": prefix_budget}
    if d_reuse_km is not None:
        kwargs["d_reuse_km"] = d_reuse_km
    if latency_of is not None:
        kwargs["latency_of"] = latency_of
    if allow_reuse is not None:
        kwargs["allow_reuse"] = allow_reuse
    return OrchestratorConfig(**kwargs)


@dataclass
class _PrefixMemo:
    """Everything one prefix's inner-loop scan computed, for replay.

    ``accepts`` is the ordered accepted-peering sequence; ``build`` the
    initial-heap marginal per peering; ``refresh`` the lazily recomputed
    marginal keyed by ``(version, peering_id)`` — the version stamp is the
    number of accepts that preceded the recomputation, which (together
    with the static per-peering arrays and the peering's UG volumes) fully
    determines the value.
    """

    accepts: List[int] = field(default_factory=list)
    build: Dict[int, float] = field(default_factory=dict)
    refresh: Dict[Tuple[int, int], float] = field(default_factory=dict)
    #: Per-refresh summation breakdown keyed like ``refresh``:
    #: ``(contrib_vector, learned_terms)`` where ``contrib_vector`` is the
    #: per-row contribution array of the vectorized path (shrink rows hold
    #: their exact scalar term) and ``learned_terms`` the ordered scalar
    #: additions of the learned loop.  A volume shift changes only the
    #: shifted UG's entries, so the next warm solve can substitute those
    #: rows and re-run the *same* float summation — bit-equal to a full
    #: recomputation at a tiny fraction of the cost (see the volume-patch
    #: path in ``_solve``).
    detail: Dict[Tuple[int, int], tuple] = field(default_factory=dict)


@dataclass
class SolveMemo:
    """A recorded solve, replayable by :meth:`PainterOrchestrator.solve_warm`.

    Warm-start soundness rests on one invariant: every marginal is a pure
    function of (the accept sequence so far, the peering's static
    latency/distance arrays, the volumes of the peering's affected UGs).
    The scan state (``d0``/``csum``/``ccnt``/``ob``/``exp_np``) is
    volume-free and evolves only through accepts, so while a replay's
    accept sequence still matches this memo's, a memoized marginal for a
    *clean* peering (none of its UGs' volumes changed, not toggled, no
    learned-set change touching it) is bit-equal to what a cold solve
    would recompute.  The first divergence flips ``intact`` off and every
    later value is computed fresh — the replay is then simply a cold solve.
    """

    budget: int = 0
    allow_reuse: bool = True
    learned_rows: FrozenSet[int] = frozenset()
    active_peerings: FrozenSet[int] = frozenset()
    prefixes: List[_PrefixMemo] = field(default_factory=list)


@dataclass(frozen=True)
class WarmSolveStats:
    """Accounting of one :meth:`PainterOrchestrator.solve_warm` call."""

    #: ``"warm"`` when a usable memo existed, else ``"cold"``.
    mode: str
    #: Peerings whose marginals a delta could have touched (recomputed).
    dirty_peerings: int
    #: Memoized marginals reused verbatim.
    reused_evals: int
    #: Marginals computed fresh (dirty peerings + post-divergence work).
    fresh_evals: int
    #: True when the replayed accept sequence departed from the memo's.
    diverged: bool
    #: Volume-dirty marginals rebuilt by patching the memoized summation
    #: (bit-equal to a fresh evaluation, ~10x cheaper).
    patched_evals: int = 0


@dataclass(frozen=True)
class BudgetPoint:
    """Benefit snapshot after the k-th prefix was fully allocated."""

    prefixes_used: int
    pairs_used: int
    estimated_benefit: float
    upper_benefit: float
    lower_benefit: float
    mean_benefit: float


@dataclass(frozen=True)
class ObservationReport:
    """Accounting of one ``execute_and_observe`` round under degradation."""

    learned: int = 0
    observed: int = 0
    missing: int = 0
    stale: int = 0

    @property
    def total(self) -> int:
        return self.observed + self.missing + self.stale

    @property
    def degraded_fraction(self) -> float:
        """Fraction of this round's observations withheld or stale."""
        if self.total == 0:
            return 0.0
        return (self.missing + self.stale) / self.total


class ObservationFaultsLike:
    """Protocol-ish observation filter (see :class:`repro.faults.ObservationFaults`).

    ``outcome(iteration, ug_id, prefix)`` returns ``"ok"``, ``"missing"``,
    or ``"stale"``.
    """

    def outcome(self, iteration: int, ug_id: int, prefix: int) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class IterationRecord:
    """One learning iteration's outcome."""

    iteration: int
    config: AdvertisementConfig
    expected_benefit: float
    realized_benefit: float
    upper_benefit: float
    estimated_benefit: float
    lower_benefit: float
    new_preferences: int
    observations_observed: int = 0
    observations_missing: int = 0
    observations_stale: int = 0

    @property
    def degraded_fraction(self) -> float:
        total = (
            self.observations_observed
            + self.observations_missing
            + self.observations_stale
        )
        if total == 0:
            return 0.0
        return (self.observations_missing + self.observations_stale) / total

    @property
    def uncertainty(self) -> float:
        """Pre-test uncertainty band: best case minus inflation-weighted.

        When fault injection withheld or staled part of the round's
        observations, the band is widened proportionally — the model
        refined itself on less evidence than the benefit estimate assumes,
        so claiming the clean-round band would overstate confidence.
        """
        return (self.upper_benefit - self.estimated_benefit) * (
            1.0 + self.degraded_fraction
        )


@dataclass
class LearningResult:
    """The full learning-loop history (Fig. 6c)."""

    iterations: List[IterationRecord] = field(default_factory=list)

    @property
    def final_config(self) -> AdvertisementConfig:
        """The configuration to deploy: the best *measured* one.

        Each iteration's configuration is executed and measured; an operator
        deploys the best-known configuration, not the latest exploration —
        an untested re-solve can regress while the routing model digests new
        observations (the incorrect-assumption transients of §3.1).
        """
        if not self.iterations:
            raise ValueError("no iterations recorded")
        return max(self.iterations, key=lambda r: r.realized_benefit).config

    @property
    def last_config(self) -> AdvertisementConfig:
        """The most recent (possibly exploratory) configuration."""
        if not self.iterations:
            raise ValueError("no iterations recorded")
        return self.iterations[-1].config

    @property
    def realized_benefits(self) -> List[float]:
        return [record.realized_benefit for record in self.iterations]

    @property
    def uncertainties(self) -> List[float]:
        return [record.uncertainty for record in self.iterations]


class PainterOrchestrator:
    """Computes advertisement configurations for a scenario.

    ``latency_of`` lets callers substitute measured/estimated latencies (the
    geolocation heuristic, ping minima) for the default true-latency source,
    as the paper does in its Azure evaluation.
    """

    def __init__(
        self,
        scenario: Scenario,
        config: Optional[Union[OrchestratorConfig, int]] = None,
        *,
        model: Optional[RoutingModel] = None,
        prefix_budget: Optional[int] = None,
        d_reuse_km: Optional[float] = None,
        latency_of: Optional[LatencyFn] = None,
        allow_reuse: Optional[bool] = None,
    ) -> None:
        config = _coerce_orchestrator_config(
            config,
            prefix_budget=prefix_budget,
            d_reuse_km=d_reuse_km,
            latency_of=latency_of,
            allow_reuse=allow_reuse,
        )
        self._scenario = scenario
        self._config = config
        self._budget = config.prefix_budget
        self._model = model or RoutingModel(
            scenario.catalog, d_reuse_km=config.d_reuse_km
        )
        self._evaluator = BenefitEvaluator(
            scenario, self._model, latency_of=config.latency_of,
            backend=config.backend,
        )
        self._affected: Dict[int, List[UserGroup]] = self._invert_catalog()
        self._allow_reuse = config.allow_reuse
        self.budget_curve: List[BudgetPoint] = []
        #: Freshest observation per (ug_id, prefix) — what a lagging
        #: collector replays when fault injection serves stale data.
        self._last_seen: Dict[Tuple[int, int], Tuple[FrozenSet[int], int]] = {}
        #: Static per-peering evaluation arrays (built on first solve):
        #: affected-UG row indices, volumes, and latencies.  Latencies and
        #: the catalog are immutable, so these never need invalidation.
        self._ug_index: Dict[int, int] = {
            ug.ug_id: i for i, ug in enumerate(scenario.user_groups)
        }
        self._aff_rows: Optional[Dict[int, List[int]]] = None
        self._aff_idx: Dict[int, "np.ndarray"] = {}
        self._aff_vol: Dict[int, "np.ndarray"] = {}
        self._aff_lat: Dict[int, "np.ndarray"] = {}
        self._aff_dist: Dict[int, "np.ndarray"] = {}
        #: Parallel-solve state: the lazily created worker pool wrapper, a
        #: finalizer that reaps it if the orchestrator is garbage-collected
        #: unclosed, and a breaker that pins the orchestrator to the serial
        #: path after a pool failure (with an optional retry budget — see
        #: ``OrchestratorConfig.parallel_retry_solves``).
        self._parallel = None
        self._parallel_finalizer = None
        self._parallel_broken = False
        self._solves_since_break = 0
        #: Warm-start state: the memo of the last recorded solve, the set
        #: of peerings a world mutation has dirtied since, peerings taken
        #: administratively down, and a generation counter forked worker
        #: pools compare against (mutations invalidate forked snapshots).
        self._memo: Optional[SolveMemo] = None
        self._dirty_pids: Set[int] = set()
        #: Volume-only dirt, tracked per peering at UG-row granularity: a
        #: volume shift changes marginal *weights* but no scan state, so
        #: the next warm solve can patch the memoized summation instead of
        #: recomputing it (see the volume-patch path in ``_solve``).
        #: Structural dirt in ``_dirty_pids`` always wins over an entry
        #: here.
        self._dirty_vol_rows: Dict[int, Set[int]] = {}
        self._disabled_peerings: Set[int] = set()
        self._world_epoch = 0
        #: Cached learned-rows split of the static arrays (keyed by the
        #: learned-row set): rebuilding it is a Python loop over every
        #: (peering, UG) pair, which would dominate warm re-solves.
        self._split_cache = None
        self.last_warm_stats: Optional[WarmSolveStats] = None

    @property
    def model(self) -> RoutingModel:
        return self._model

    @property
    def evaluator(self) -> BenefitEvaluator:
        return self._evaluator

    @property
    def prefix_budget(self) -> int:
        return self._budget

    @property
    def config(self) -> OrchestratorConfig:
        """The resolved configuration this orchestrator runs under."""
        return self._config

    def _invert_catalog(self) -> Dict[int, List[UserGroup]]:
        affected: Dict[int, List[UserGroup]] = {}
        for ug in self._scenario.user_groups:
            for pid in self._scenario.catalog.ingress_ids(ug):
                affected.setdefault(pid, []).append(ug)
        return affected

    def _use_dense_matrices(self) -> bool:
        """Should this world use the backend's dense-matrix layout?"""
        mode = self._config.dense_matrices
        if mode is not None:
            return bool(mode)
        n_slots = len(self._scenario.user_groups) * len(
            self._scenario.deployment.peerings
        )
        return n_slots >= DENSE_AUTO_SLOTS

    def _ensure_affected_arrays(self, vol_arr: "np.ndarray") -> None:
        """Build the static per-peering arrays the vectorized scan uses."""
        if self._aff_rows is not None:
            return
        evaluator = self._evaluator
        model = self._model
        ug_index = self._ug_index
        backend = evaluator.backend
        lat_mat = backend.latency_matrix
        dist_mat = backend.distance_matrix
        dense = lat_mat is not None and dist_mat is not None
        col_of = evaluator.peering_columns if dense else None
        self._aff_rows = {}
        for pid, affected in self._affected.items():
            rows = [ug_index[ug.ug_id] for ug in affected]
            self._aff_rows[pid] = rows
            idx = np.array(rows, dtype=np.intp)
            self._aff_idx[pid] = idx
            self._aff_vol[pid] = vol_arr[idx]
            if dense:
                # Vectorized gather from the materialized matrices: the
                # stored doubles are the oracle values bit-for-bit (the
                # dense encoding maps None↔+inf), so this produces exactly
                # the arrays the per-pair path below would.
                col = col_of[pid]
                lat = lat_mat[idx, col]
                unfilled = np.isnan(lat)
                if unfilled.any():
                    # Slots outside the materialized set: fall back to the
                    # per-pair oracle for just those rows.
                    for pos in np.nonzero(unfilled)[0]:
                        value = evaluator.latency(affected[int(pos)], pid)
                        lat[pos] = np.nan if value is None else value
                lat[np.isinf(lat)] = np.nan
                self._aff_lat[pid] = lat
                self._aff_dist[pid] = dist_mat[idx, col]
            else:
                lats = evaluator.latencies_for(pid, affected)
                self._aff_lat[pid] = np.array(
                    [np.nan if lat is None else lat for lat in lats]
                )
                self._aff_dist[pid] = np.array(
                    [model.distance_km(ug, pid) for ug in affected]
                )

    def _learned_split(self, learned_rows: Set[int]):
        """Static arrays split into vectorized (unlearned) and exact parts.

        Cached by learned-row set: the split is a Python loop over every
        (peering, UG) pair, far too slow to repeat on every warm re-solve
        when the learned set has not moved.  Volume mutations patch the
        cached arrays in place (see :meth:`apply_volume_shift`).
        """
        if not learned_rows:
            return (
                self._aff_idx,
                self._aff_vol,
                self._aff_lat,
                self._aff_dist,
                {},
            )
        key = frozenset(learned_rows)
        cached = self._split_cache
        if cached is not None and cached[0] == key:
            return cached[1]
        build_idx: Dict[int, "np.ndarray"] = {}
        build_vol: Dict[int, "np.ndarray"] = {}
        build_lat: Dict[int, "np.ndarray"] = {}
        build_dist: Dict[int, "np.ndarray"] = {}
        learned_aff: Dict[int, List[Tuple[UserGroup, int]]] = {}
        masks: Dict[int, "np.ndarray"] = {}
        for pid, affected in self._affected.items():
            rows = self._aff_rows[pid]
            keep = np.array(
                [row not in learned_rows for row in rows], dtype=bool
            )
            if keep.all():
                build_idx[pid] = self._aff_idx[pid]
                build_vol[pid] = self._aff_vol[pid]
                build_lat[pid] = self._aff_lat[pid]
                build_dist[pid] = self._aff_dist[pid]
            else:
                masks[pid] = keep
                build_idx[pid] = self._aff_idx[pid][keep]
                build_vol[pid] = self._aff_vol[pid][keep]
                build_lat[pid] = self._aff_lat[pid][keep]
                build_dist[pid] = self._aff_dist[pid][keep]
                learned_aff[pid] = [
                    (ug, row)
                    for ug, row in zip(affected, rows)
                    if row in learned_rows
                ]
        arrays = (build_idx, build_vol, build_lat, build_dist, learned_aff)
        self._split_cache = (key, arrays, masks)
        return arrays

    # -- world mutation (the controller's delta surface) ---------------------

    @property
    def world_epoch(self) -> int:
        """Generation counter bumped by every world mutation."""
        return self._world_epoch

    @property
    def disabled_peerings(self) -> FrozenSet[int]:
        return frozenset(self._disabled_peerings)

    @property
    def dirty_peerings(self) -> FrozenSet[int]:
        """Peerings whose marginals the pending deltas can touch."""
        return frozenset(self._dirty_pids) | frozenset(self._dirty_vol_rows)

    def apply_volume_shift(self, ug_id: int, volume: float) -> FrozenSet[int]:
        """Change one UG's traffic volume; returns the dirtied peerings.

        Volumes enter Algorithm 1 only as marginal-benefit weights, never
        as scan state, so the dirty set is exactly the UG's
        policy-compliant ingress set.  All cached volume arrays (the
        static per-peering arrays and the learned-split cache) are patched
        in place so the next solve — warm or cold — sees the new weights.
        """
        if volume < 0:
            raise ValueError("volume must be non-negative")
        row = self._ug_index.get(ug_id)
        if row is None:
            raise KeyError(f"unknown UG id {ug_id}")
        ug = self._scenario.user_groups[row]
        self._scenario.set_ug_volume(ug_id, volume)
        dirty = self._scenario.catalog.ingress_ids(ug)
        if self._aff_rows is not None:
            for pid in dirty:
                idx = self._aff_idx.get(pid)
                if idx is None:
                    continue
                self._aff_vol[pid][idx == row] = volume
            if self._split_cache is not None:
                _, arrays, masks = self._split_cache
                build_vol = arrays[1]
                for pid in dirty:
                    mask = masks.get(pid)
                    if mask is not None and pid in build_vol:
                        # Masked splits are copies; all-keep splits alias
                        # ``_aff_vol`` and were patched in place above.
                        build_vol[pid] = self._aff_vol[pid][mask]
        # Volume dirt is tracked per (peering, UG row): the affected
        # marginals differ from their memoized values only in the shifted
        # rows' terms, which the next warm solve patches in place of a
        # full recomputation.
        for pid in dirty:
            self._dirty_vol_rows.setdefault(pid, set()).add(row)
        self._world_epoch += 1
        return dirty

    def set_peering_enabled(self, peering_id: int, enabled: bool) -> None:
        """Administratively toggle a peering (session down / back up).

        A disabled peering is excluded from the candidate list of every
        subsequent solve; re-enabling restores it.  Either direction
        dirties the peering and bumps the world epoch (forked worker pools
        hold the candidate list frozen, so they must be rebuilt).
        """
        self._scenario.deployment.peering(peering_id)  # validate the id
        if enabled:
            self._disabled_peerings.discard(peering_id)
        else:
            self._disabled_peerings.add(peering_id)
        self._dirty_pids.add(peering_id)
        self._world_epoch += 1

    def solve_warm(self, record_curve: bool = False) -> AdvertisementConfig:
        """Re-solve, reusing every marginal the pending deltas cannot touch.

        Produces a configuration **bit-identical** to :meth:`solve` on the
        same (mutated) world: memoized marginals are reused only while the
        replayed accept sequence still matches the recorded one, and only
        for peerings outside the dirty set (see :class:`SolveMemo`).  The
        first call — or any call after a budget/ablation change — records
        a cold solve; every call leaves a fresh memo behind, so steady
        streams of small deltas pay only for what they touched.

        ``last_warm_stats`` reports the reuse accounting of the call.
        """
        dirty = set(self._dirty_pids)
        self._dirty_pids.clear()
        vol_rows = {
            pid: set(rows) for pid, rows in self._dirty_vol_rows.items()
        }
        self._dirty_vol_rows.clear()
        memo = self._memo
        usable = (
            memo is not None
            and memo.budget == self._budget
            and memo.allow_reuse == self._allow_reuse
        )
        if usable:
            # Defensive dirty expansion: any learned-set or candidate-set
            # drift since the memo was recorded touches the marginals of
            # every peering containing an affected row, whether or not a
            # delta announced it.
            current_learned = frozenset(
                self._ug_index[ug_id]
                for ug_id in self._model.learned_ug_ids
                if ug_id in self._ug_index
            )
            for row in memo.learned_rows ^ current_learned:
                dirty.update(
                    self._scenario.catalog.ingress_ids(
                        self._scenario.user_groups[row]
                    )
                )
            active = frozenset(
                pid
                for pid in self._affected
                if pid not in self._disabled_peerings
            )
            dirty.update(memo.active_peerings ^ active)
        # Structural dirt supersedes volume dirt: a fully dirty peering is
        # recomputed from scratch, so its row-level entries are moot.
        for pid in dirty:
            vol_rows.pop(pid, None)
        new_memo = SolveMemo()
        try:
            with TRACER.span(
                "orchestrator.solve_warm",
                budget=self._budget,
                backend=self._evaluator.backend.name,
            ) as span:
                with PERF.timed("orchestrator.solve_warm"):
                    config = self._solve(
                        record_curve=record_curve,
                        memo_in=memo if usable else None,
                        memo_out=new_memo,
                        dirty=dirty,
                        vol_rows=vol_rows,
                    )
                span.tag("prefixes_used", config.prefix_count)
                span.tag("pairs_used", config.pair_count)
        except BaseException:
            # An interrupted solve (watchdog timeout, worker failure) must
            # not swallow the dirt it consumed: restore it so a retry —
            # warm or cold — still sees every pending delta.
            self._dirty_pids.update(dirty)
            for pid, rows in vol_rows.items():
                self._dirty_vol_rows.setdefault(pid, set()).update(rows)
            raise
        self._memo = new_memo
        self.last_warm_stats = WarmSolveStats(
            mode="warm" if usable else "cold",
            dirty_peerings=len(dirty) + len(vol_rows),
            reused_evals=self._last_reused,
            fresh_evals=self._last_fresh,
            diverged=self._last_diverged,
            patched_evals=self._last_patched,
        )
        PERF.counter("orchestrator.warm_solves").add()
        PERF.counter("orchestrator.warm_reused_evals").add(self._last_reused)
        return config

    def forget_memo(self) -> None:
        """Drop the warm-start memo (the next ``solve_warm`` runs cold)."""
        self._memo = None

    def solve_cold(self) -> AdvertisementConfig:
        """A from-scratch serial solve leaving all warm-start state alone.

        The controller's differential guard uses this to cross-check a
        warm solve without consuming the pending dirty set or replacing
        the memo.
        """
        with TRACER.span("orchestrator.solve_cold", budget=self._budget):
            with PERF.timed("orchestrator.solve_cold"):
                return self._solve()

    # -- parallel-solve lifecycle -------------------------------------------

    def close(self) -> None:
        """Release the solve worker pool (if one was created)."""
        self._teardown_parallel()

    def __enter__(self) -> "PainterOrchestrator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _teardown_parallel(self, mark_broken: bool = False) -> None:
        if mark_broken:
            self._parallel_broken = True
            self._solves_since_break = 0
        solver = self._parallel
        self._parallel = None
        finalizer = self._parallel_finalizer
        self._parallel_finalizer = None
        if finalizer is not None:
            finalizer.detach()
        if solver is not None:
            try:
                solver.close()
            except Exception:  # pragma: no cover - teardown best-effort
                logger.debug("parallel solver teardown failed", exc_info=True)

    def _ensure_parallel(self, n_workers: int):
        """The lazily forked :class:`repro.parallel.ParallelSolver` (or None)."""
        solver = self._parallel
        if solver is not None:
            if (
                solver.n_workers == n_workers
                and solver.pool.alive()
                and solver.world_epoch == self._world_epoch
            ):
                return solver
            # Worker died between solves (chaos kill), the count changed,
            # or a world mutation (volume shift, peering toggle) outdated
            # the forked snapshots: rebuild.  Forking from the current
            # state is safe — workers never consult their inherited
            # model's learned set, only the set the parent broadcasts at
            # each solve's prep.
            self._teardown_parallel()
        import repro.parallel as parallel_mod

        if not parallel_mod.parallel_enabled():
            return None
        kwargs = {}
        if self._config.worker_timeout_s is not None:
            kwargs["timeout_s"] = self._config.worker_timeout_s
        try:
            import weakref

            solver = parallel_mod.ParallelSolver(self, n_workers, **kwargs)
        except (parallel_mod.WorkerPoolError, OSError, ValueError) as exc:
            logger.warning(
                "parallel solver unavailable (%s); solving serially", exc
            )
            self._parallel_broken = True
            return None
        self._parallel = solver
        self._parallel_finalizer = weakref.finalize(self, solver.close)
        return solver

    # -- Algorithm 1, middle + inner loops ----------------------------------

    def solve(
        self, record_curve: bool = False, workers: Optional[int] = None
    ) -> AdvertisementConfig:
        """Greedy allocation of the prefix budget (one outer-loop pass).

        Parallelism and the compute backend are configured once on
        :class:`OrchestratorConfig` (``workers=``, ``backend=``); any value
        of ``workers`` above 1 shards the marginal evaluations across a
        persistent fork pool (``repro.parallel``) with bit-identical
        results, and worker failure falls back to the serial path.  The
        per-call ``workers=`` override is deprecated.
        """
        if workers is not None:
            warnings.warn(
                "solve(workers=...) is deprecated; set "
                "OrchestratorConfig(workers=...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
        with TRACER.span(
            "orchestrator.solve",
            budget=self._budget,
            backend=self._evaluator.backend.name,
        ) as span:
            with PERF.timed("orchestrator.solve"):
                config = self._solve_dispatch(record_curve, workers)
            span.tag("prefixes_used", config.prefix_count)
            span.tag("pairs_used", config.pair_count)
            return config

    def _breaker_allows_parallel(self) -> bool:
        """Has the serial-fallback breaker cooled down enough to retry?"""
        if not self._parallel_broken:
            return True
        retry = self._config.parallel_retry_solves
        if retry <= 0:
            return False  # broken stays broken (legacy behavior)
        self._solves_since_break += 1
        if self._solves_since_break > retry:
            # Probe solve: re-arm the parallel path.  If the pool fails
            # again the fallback handler re-trips the breaker and the
            # cooldown restarts from zero.
            self._parallel_broken = False
            self._solves_since_break = 0
            return True
        return False

    def _solve_dispatch(
        self, record_curve: bool, workers: Optional[int]
    ) -> AdvertisementConfig:
        n_workers = self._config.workers if workers is None else workers
        # Disabled peerings force the serial path: forked workers hold the
        # candidate peering list frozen from fork time, and the serial
        # solve is the one place the exclusion is applied authoritatively.
        if (
            n_workers > 1
            and not self._disabled_peerings
            and self._breaker_allows_parallel()
        ):
            solver = self._ensure_parallel(n_workers)
            if solver is not None:
                from repro.parallel import WorkerPoolError

                try:
                    return solver.solve(record_curve=record_curve)
                except WorkerPoolError as exc:
                    # Graceful degradation: the sharded solve is
                    # deterministic, so re-running serially from scratch
                    # produces exactly the configuration the pool would
                    # have.  The breaker keeps later solves serial too —
                    # a dead pool does not come back mid-experiment.
                    logger.warning(
                        "parallel solve failed (%s); falling back to serial",
                        exc,
                    )
                    PERF.counter("parallel.fallbacks").add()
                    emit_event(
                        "parallel_fallback",
                        reason=str(exc),
                        workers=solver.n_workers,
                    )
                    self._teardown_parallel(mark_broken=True)
        return self._solve(record_curve=record_curve)

    def _solve(
        self,
        record_curve: bool = False,
        *,
        memo_in: Optional[SolveMemo] = None,
        memo_out: Optional[SolveMemo] = None,
        dirty: FrozenSet[int] = frozenset(),
        vol_rows: Optional[Dict[int, Set[int]]] = None,
    ) -> AdvertisementConfig:
        if vol_rows is None:
            vol_rows = {}
        scenario = self._scenario
        evaluator = self._evaluator
        config = AdvertisementConfig()
        self.budget_curve = []
        PERF.counter("orchestrator.solve_calls").add()
        marginal_evals = PERF.counter("orchestrator.marginal_evals")
        naive_evals = PERF.counter("orchestrator.naive_marginal_evals")
        repushes = PERF.counter("orchestrator.heap_repushes")
        marginal_hist = PERF.histogram(
            "orchestrator.marginal_benefit", _BENEFIT_BUCKETS
        )
        # Fill the UG×peering latency store up front so the ranked scan
        # below never pays a latency_of call mid-heap-operation.  Large
        # worlds (see DENSE_AUTO_SLOTS) materialize flat float64 matrices
        # on the compute backend instead of per-UG Python rows; with a
        # dense matrix already bound (parallel fill or an earlier
        # materialization) the row precompute would only duplicate it, so
        # it is skipped — unfilled slots fall back per lookup to the same
        # deterministic oracle.
        if self._use_dense_matrices():
            evaluator.materialize_latency_matrices(
                budget_bytes=self._config.dense_budget_bytes
            )
        if evaluator.backend.latency_matrix is None:
            evaluator.precompute_latency_matrix()

        ugs = scenario.user_groups
        n_ugs = len(ugs)
        model = self._model
        anycast_arr = np.array(
            [scenario.anycast_latency_ms(ug) for ug in ugs]
        )
        vol_list = [ug.volume for ug in ugs]
        vol_arr = np.array(vol_list)
        self._ensure_affected_arrays(vol_arr)
        fast_queries = PERF.counter("evaluator.scan_fast_queries")

        # Expected latency per (UG row, prefix); +inf where the prefix is
        # unusable for the UG (None), so row minima need no masking.
        exp_np = np.full((n_ugs, self._budget), np.inf)

        # Per-solve fast/slow split: the vectorized heap build covers UGs
        # whose predictions are pure distance pruning; UGs with learned
        # state go through the exact (memoized) Eq.-2 path.
        learned_rows = {
            self._ug_index[ug_id]
            for ug_id in model.learned_ug_ids
            if ug_id in self._ug_index
        }
        build_idx, build_vol, build_lat, build_dist, learned_aff = (
            self._learned_split(learned_rows)
        )

        all_peering_ids = sorted(
            pid
            for pid in self._affected
            if pid not in self._disabled_peerings
        )
        if self._budget > len(all_peering_ids):
            # An over-budget solve is feasible (extra prefixes simply go
            # unallocated) but almost always a mis-specified experiment, and
            # it would silently skew greedy-vs-ILP comparisons where the
            # selection problem clamps its budget to the candidate count.
            # Surface it loudly instead of under-allocating in silence.
            logger.warning(
                "prefix budget %d exceeds the %d distinct candidate "
                "peerings; at most %d prefixes can be allocated "
                "(optimality comparisons clamp to the candidate count)",
                self._budget,
                len(all_peering_ids),
                len(all_peering_ids),
            )
            PERF.counter("orchestrator.budget_over_candidates").add()
            emit_event(
                "budget_over_candidates",
                prefix_budget=self._budget,
                candidate_peerings=len(all_peering_ids),
            )

        # Warm-start replay state (see SolveMemo): while ``intact``, the
        # accept sequence still matches the memo and clean-peering values
        # may be reused verbatim.
        intact = memo_in is not None
        reused_evals = 0
        fresh_evals = 0
        patched_evals = 0
        if memo_out is not None:
            memo_out.budget = self._budget
            memo_out.allow_reuse = self._allow_reuse
            memo_out.learned_rows = frozenset(learned_rows)
            memo_out.active_peerings = frozenset(all_peering_ids)

        for prefix in range(self._budget):
            # Manual enter/exit keeps the 200-line loop body unindented;
            # while tracing is disabled both calls hit the shared no-op.
            scan_cm = TRACER.span("orchestrator.prefix_scan", prefix=prefix)
            scan_span = scan_cm.__enter__()
            advertised: Set[int] = set()
            # Replay bookkeeping: the memo's record of this prefix (while
            # intact) and the record being written for the next warm solve.
            pmemo_in: Optional[_PrefixMemo] = None
            if intact:
                if prefix < len(memo_in.prefixes):
                    pmemo_in = memo_in.prefixes[prefix]
                else:
                    intact = False  # the memo solve stopped earlier than us
            pmemo_out: Optional[_PrefixMemo] = None
            if memo_out is not None:
                pmemo_out = _PrefixMemo()
                memo_out.prefixes.append(pmemo_out)
            # Incremental Eq.-2 session: marginal queries against the
            # growing accepted set cost a binary search for unlearned UGs
            # instead of a full candidate-set rebuild.
            scan = evaluator.begin_prefix_scan()
            # Best latency each UG gets from anycast or *another* prefix.
            # Fixed for the whole inner loop: accepts only change the
            # current prefix's expected latencies, which are excluded —
            # the reason the old per-accept base-cache clear was wasted
            # work (exp_np[:, prefix] is still all-inf when this runs).
            base_np = np.minimum(anycast_arr, exp_np.min(axis=1)) if n_ugs else anycast_arr
            base_list = base_np.tolist()
            # Expected latency of the current prefix per UG row (None until
            # a compliant peering is accepted).
            cur_p: List[Optional[float]] = [None] * n_ugs
            # Numpy mirror of the PrefixScan state for unlearned UGs, so a
            # refresh marginal is a handful of array ops instead of one
            # bisect per affected UG:
            #   d0_arr    closest accepted distance (inf while none kept)
            #   csum_arr  sum of measurable kept-set latencies
            #   ccnt_arr  count of measurable kept-set latencies
            #   ob_arr    min(base, current expected) — the UG's best today
            d_reuse = model.d_reuse_km
            d0_arr = np.full(n_ugs, np.inf)
            csum_arr = np.zeros(n_ugs)
            ccnt_arr = np.zeros(n_ugs)
            ob_arr = base_np.copy()
            backend = evaluator.backend

            def marginal(peering_id: int) -> Tuple[float, tuple]:
                """Fresh marginal plus its summation detail.

                The detail — the per-row contribution vector (shrink rows
                hold their exact scalar term) and the ordered learned-loop
                terms — lets a later warm solve whose only dirt on this
                peering is a volume shift substitute the shifted rows and
                replay the identical float summation (bit-equal result)
                without re-running the vectorized scan.
                """
                marginal_evals.add()
                idx = build_idx[peering_id]
                dist = build_dist[peering_id]
                lat = build_lat[peering_id]
                # The fused elementwise pipeline (reuse-window shrink test,
                # kept-set mean update, best-latency improvement) runs on
                # the compute backend; rows where the reuse window shrinks
                # come back zeroed and are recomputed exactly below.  Every
                # backend returns bit-identical elements (the kernels are
                # reduction-free — see repro.kernels), so the contrib.sum()
                # reduction below is the same float for all of them.
                contrib, shrink = backend.refresh_contrib(
                    dist,
                    lat,
                    build_vol[peering_id],
                    d0_arr[idx],
                    csum_arr[idx],
                    ccnt_arr[idx],
                    ob_arr[idx],
                    base_np[idx],
                    d_reuse,
                )
                fast_queries.value += len(lat)
                # Shrink rows get their exact scalar term scattered back
                # into the contribution vector (rather than added to a
                # running scalar): the whole unlearned part then reduces in
                # one numpy sum, which a later volume patch can reproduce
                # bit-for-bit by substituting the shifted elements and
                # re-running the identical pairwise reduction.
                if shrink.any():
                    for pos in np.nonzero(shrink)[0]:
                        row = int(idx[pos])
                        ug = ugs[row]
                        ob_s = ob_arr[row]
                        new_p_s = scan.query(ug, peering_id)
                        if new_p_s is None:
                            continue
                        base_s = base_list[row]
                        new_best_s = new_p_s if new_p_s < base_s else base_s
                        contrib[pos] = vol_list[row] * (ob_s - new_best_s)
                delta = float(contrib.sum())
                learned_terms: List[float] = []
                for ug, row in learned_aff.get(peering_id, ()):
                    base_s = base_list[row]
                    old_p = cur_p[row]
                    old_best = (
                        base_s if old_p is None or base_s < old_p else old_p
                    )
                    new_p_s = scan.query(ug, peering_id)
                    if new_p_s is None:
                        new_best_s = old_best
                    elif new_p_s < base_s:
                        new_best_s = new_p_s
                    else:
                        new_best_s = base_s
                    term = vol_list[row] * (old_best - new_best_s)
                    delta += term
                    learned_terms.append(term)
                if _DEBUG_CHECK:
                    ref = 0.0
                    for ug, row in zip(
                        self._affected[peering_id], self._aff_rows[peering_id]
                    ):
                        base_s = base_list[row]
                        old_p = cur_p[row]
                        old_best = (
                            base_s if old_p is None or base_s < old_p else old_p
                        )
                        new_p_s = scan.query(ug, peering_id)
                        if new_p_s is None:
                            new_best_s = old_best
                        elif new_p_s < base_s:
                            new_best_s = new_p_s
                        else:
                            new_best_s = base_s
                        ref += vol_list[row] * (old_best - new_best_s)
                    if abs(ref - delta) > 1e-6:
                        import sys
                        print(
                            f"MISMATCH pid={peering_id} vec={delta!r} ref={ref!r}",
                            file=sys.stderr,
                        )
                        for ug, row, pos in zip(
                            self._affected[peering_id],
                            self._aff_rows[peering_id],
                            range(len(self._aff_rows[peering_id])),
                        ):
                            base_s = base_list[row]
                            old_p = cur_p[row]
                            old_best = (
                                base_s
                                if old_p is None or base_s < old_p
                                else old_p
                            )
                            new_p_s = scan.query(ug, peering_id)
                            if new_p_s is None:
                                new_best_s = old_best
                            elif new_p_s < base_s:
                                new_best_s = new_p_s
                            else:
                                new_best_s = base_s
                            c_ref = vol_list[row] * (old_best - new_best_s)
                            c_vec = float(contrib[pos]) if pos < len(contrib) else 0.0
                            if abs(c_ref - c_vec) > 1e-9 and not shrink[pos]:
                                print(
                                    f"  row={row} dist={dist[pos]} lat={lat[pos]}"
                                    f" d0={d0_arr[row]} csum={csum_arr[row]}"
                                    f" ccnt={ccnt_arr[row]} ob={ob_arr[row]}"
                                    f" cur_p={old_p} new_p_ref={new_p_s}"
                                    f" c_ref={c_ref} c_vec={c_vec}",
                                    file=sys.stderr,
                                )
                        raise SystemExit(1)
                # ``contrib`` is freshly allocated per call, so the detail
                # can hold it without a defensive copy.
                return delta, (contrib, learned_terms)

            def patch_marginal(peering_id: int, key: Tuple[int, int]):
                """Volume-patch a memoized marginal: bit-equal, far cheaper.

                A volume shift changes marginal *weights* only — none of
                the scan state (``d0_arr``/``csum_arr``/``ccnt_arr``/
                ``ob_arr``) depends on volumes, and while ``intact`` that
                state evolves exactly as it did in the memo run.  So the
                shifted rows' terms are recomputed with IEEE-double scalar
                clones of the vectorized ops in ``marginal``, substituted
                into the recorded contribution vector and scalar-addition
                sequence, and the identical float summation is replayed —
                producing the same bits a fresh evaluation would, without
                rescanning the untouched rows.  Returns ``None`` when the
                recorded shape no longer matches (caller re-evaluates).
                """
                rec = pmemo_in.detail.get(key)
                if rec is None:
                    return None
                contrib0, learned_terms = rec
                idx = build_idx[peering_id]
                if len(contrib0) != len(idx):
                    return None  # learned split drifted under this memo
                la = learned_aff.get(peering_id, ())
                if len(la) != len(learned_terms):
                    return None
                dist = build_dist[peering_id]
                lat = build_lat[peering_id]
                vol = build_vol[peering_id]
                patched = contrib0.copy()
                changed = vol_rows[peering_id]
                for row in changed:
                    # ``idx`` is ascending (catalog inversion walks UGs in
                    # row order, and the learned-split mask preserves it).
                    pos = int(np.searchsorted(idx, row))
                    if pos >= len(idx) or idx[pos] != row:
                        continue  # learned row: handled in the loop below
                    d0_s = float(d0_arr[row])
                    ob_s = float(ob_arr[row])
                    dist_s = float(dist[pos])
                    shrink_s = dist_s < d0_s and math.isfinite(d0_s)
                    if shrink_s:
                        # Shrink rows hold their exact scalar term (or 0.0
                        # when the UG loses its path); both the shrink set
                        # and query reachability are volume-independent.
                        new_p_s = scan.query(ugs[row], peering_id)
                        if new_p_s is None:
                            patched[pos] = 0.0
                        else:
                            bl = base_list[row]
                            nb = new_p_s if new_p_s < bl else bl
                            patched[pos] = vol_list[row] * (
                                ob_arr[row] - nb
                            )
                    else:
                        lat_s = float(lat[pos])
                        limit_s = (
                            dist_s if dist_s < d0_s else d0_s
                        ) + d_reuse
                        add_s = dist_s <= limit_s and not math.isnan(lat_s)
                        new_cnt = float(ccnt_arr[row]) + (
                            1.0 if add_s else 0.0
                        )
                        new_sum = float(csum_arr[row]) + (
                            lat_s if add_s else 0.0
                        )
                        new_p = new_sum / (new_cnt if new_cnt > 1.0 else 1.0)
                        base_s = float(base_np[row])
                        if new_cnt > 0:
                            new_best = base_s if base_s < new_p else new_p
                        else:
                            new_best = ob_s
                        patched[pos] = float(vol[pos]) * (ob_s - new_best)
                total = float(patched.sum())
                if la:
                    new_learned: List[float] = []
                    for i, (ug, row) in enumerate(la):
                        if row in changed:
                            base_s = base_list[row]
                            old_p = cur_p[row]
                            old_best = (
                                base_s
                                if old_p is None or base_s < old_p
                                else old_p
                            )
                            new_p_s = scan.query(ug, peering_id)
                            if new_p_s is None:
                                new_best_s = old_best
                            elif new_p_s < base_s:
                                new_best_s = new_p_s
                            else:
                                new_best_s = base_s
                            t = vol_list[row] * (old_best - new_best_s)
                        else:
                            t = learned_terms[i]
                        total += t
                        new_learned.append(t)
                else:
                    new_learned = learned_terms
                return total, (patched, new_learned)

            # Initial heap build: with nothing accepted yet, each unlearned
            # affected UG contributes vol * max(0, base - latency), so one
            # masked dot product replaces the per-UG Python loop.
            version = 0
            heap: List[Tuple[float, int, int]] = []
            for pid in all_peering_ids:
                marginal_evals.add()
                # Volume-dirty peerings rebuild fresh too: the initial
                # build is one masked dot product, and BLAS accumulation
                # order is not reproducible by scalar patching.
                cached = (
                    pmemo_in.build.get(pid)
                    if intact and pid not in dirty and pid not in vol_rows
                    else None
                )
                if cached is not None:
                    delta = cached
                    reused_evals += 1
                else:
                    fresh_evals += 1
                    lat = build_lat[pid]
                    # Elementwise gains on the backend; the vol @ gain dot
                    # product (a reduction) stays on the host numpy path.
                    gain = backend.initial_gains(base_np[build_idx[pid]], lat)
                    delta = float(build_vol[pid] @ gain)
                    fast_queries.value += len(lat)
                    for ug, row in learned_aff.get(pid, ()):
                        base = base_list[row]
                        new_p = scan.query(ug, pid)
                        if new_p is not None and new_p < base:
                            delta += vol_list[row] * (base - new_p)
                if pmemo_out is not None:
                    pmemo_out.build[pid] = delta
                heap.append((-delta, version, pid))
            heapq.heapify(heap)

            while heap:
                neg_delta, seen_version, pid = heapq.heappop(heap)
                if pid in advertised:
                    continue
                if seen_version != version:
                    key = (version, pid)
                    clean = intact and pid not in dirty
                    cached = (
                        pmemo_in.refresh.get(key)
                        if clean and pid not in vol_rows
                        else None
                    )
                    if cached is not None:
                        fresh = cached
                        detail = pmemo_in.detail.get(key)
                        reused_evals += 1
                    else:
                        repatched = (
                            patch_marginal(pid, key)
                            if clean and pid in vol_rows
                            else None
                        )
                        if repatched is not None:
                            fresh, detail = repatched
                            patched_evals += 1
                        else:
                            fresh, detail = marginal(pid)
                            fresh_evals += 1
                    if pmemo_out is not None:
                        pmemo_out.refresh[key] = fresh
                        if detail is not None:
                            pmemo_out.detail[key] = detail
                    # Lazy re-evaluation: the refreshed marginal is only
                    # re-enqueued when it has fallen below the current heap
                    # top — otherwise it is still the best candidate and is
                    # decided on right here, with no extra pop.
                    if heap and fresh < -heap[0][0] - EPSILON_BENEFIT:
                        repushes.add()
                        heapq.heappush(heap, (-fresh, version, pid))
                        continue
                    neg_delta = -fresh
                if -neg_delta <= EPSILON_BENEFIT:
                    break  # no peering offers positive benefit for this prefix
                # Accept: advertise this prefix via this peering.
                marginal_hist.observe(-neg_delta)
                advertised.add(pid)
                config.add(prefix, pid)
                if pmemo_out is not None:
                    pmemo_out.accepts.append(pid)
                if intact and (
                    version >= len(pmemo_in.accepts)
                    or pmemo_in.accepts[version] != pid
                ):
                    # Divergence: the replayed accept sequence departed
                    # from the memo's, so every later memoized value was
                    # computed against state we no longer share.
                    intact = False
                version += 1
                affected = self._affected.get(pid, ())
                scan.accept(pid, affected)
                for ug, row in zip(affected, self._aff_rows[pid]):
                    if row in learned_rows:
                        value = scan.current(ug)
                    else:
                        d0, ksum, kcnt, value = scan.kept_stats(ug)
                        d0_arr[row] = d0
                        csum_arr[row] = ksum
                        ccnt_arr[row] = kcnt
                    cur_p[row] = value
                    exp_np[row, prefix] = np.inf if value is None else value
                    base = base_list[row]
                    ob_arr[row] = (
                        base if value is None or base < value else value
                    )
                if not self._allow_reuse:
                    break  # one peering per prefix (ablation)

            # What a naive greedy (full re-evaluation each step) would have
            # spent on this prefix: one scan over the remaining peerings per
            # accept, plus the final scan that finds nothing.
            accepts = len(advertised)
            n_peerings = len(all_peering_ids)
            if self._allow_reuse:
                naive_evals.add(
                    (accepts + 1) * n_peerings - accepts * (accepts + 1) // 2
                )
            else:
                naive_evals.add(n_peerings)

            if intact and version != len(pmemo_in.accepts):
                # We stopped accepting earlier than the memo solve did (a
                # dirty marginal dropped below the cutoff): later prefixes
                # see a different base state, so no further reuse.
                intact = False
            scan_span.tag("accepted", accepts)
            scan_cm.__exit__(None, None, None)
            if not advertised:
                break  # nothing left anywhere: further prefixes also won't help
            logger.debug(
                "prefix %d advertised via %d peerings", prefix, len(advertised)
            )
            if record_curve:
                evaluation = evaluator.evaluate(config)
                self.budget_curve.append(
                    BudgetPoint(
                        prefixes_used=config.prefix_count,
                        pairs_used=config.pair_count,
                        estimated_benefit=evaluation.estimated,
                        upper_benefit=evaluation.upper,
                        lower_benefit=evaluation.lower,
                        mean_benefit=evaluation.mean,
                    )
                )
        self._last_reused = reused_evals
        self._last_fresh = fresh_evals
        self._last_patched = patched_evals
        self._last_diverged = memo_in is not None and not intact
        return config

    def estimated_iteration_duration_s(self) -> float:
        """How long one real-world learning iteration would take.

        Combines the paper's ~30 s/prefix computation with the
        flap-damping-safe advertisement pacing (§3.1: configurations are
        tested slowly "to avoid route flap damping").
        """
        from repro.bgp.flap_damping import learning_iteration_pacing_s

        return learning_iteration_pacing_s(prefix_count=self._budget)

    # -- Algorithm 1, outer loop -------------------------------------------

    def execute_and_observe(
        self,
        config: AdvertisementConfig,
        faults: Optional["ObservationFaultsLike"] = None,
        iteration: int = 0,
    ) -> ObservationReport:
        """Advertise ``config`` (against ground truth) and learn preferences.

        This is the ``RM <- execute_advertisement(CC)`` step.  ``faults``
        (an :class:`repro.faults.ObservationFaults`, or anything with its
        ``outcome(iteration, ug_id, prefix)`` signature) decides per sample
        whether the observation arrives, goes missing, or is served stale:

        * **missing** — the collector never saw the UG; the sample is
          skipped and counted, never guessed at;
        * **stale** — the collector reports what this UG did under a
          *previous* round's advertisement; the old (advertisement, ingress)
          pair is re-fed to the model softly (no outcome overwrite, no
          eviction of fresher pairs).  With no previous round to replay the
          sample degrades to missing.

        Returns an :class:`ObservationReport`; ``.learned`` is the number of
        new preference pairs (the old integer return value).
        """
        routing = self._scenario.routing
        learned = 0
        observed = 0
        missing = 0
        stale = 0
        touched_ugs: Set[int] = set()
        obs_cm = TRACER.span(
            "orchestrator.execute_and_observe", iteration=iteration
        )
        obs_span = obs_cm.__enter__()
        timer = PERF.timer("orchestrator.execute_and_observe")
        start = time.perf_counter()
        for ug in self._scenario.user_groups:
            for prefix in config.prefixes:
                advertised = config.peerings_for(prefix)
                if not self._scenario.catalog.compliant_subset(ug, advertised):
                    continue
                actual = routing.ingress_for(ug, advertised)
                if actual is None:
                    continue
                outcome = (
                    faults.outcome(iteration, ug.ug_id, prefix)
                    if faults is not None
                    else "ok"
                )
                cache_key = (ug.ug_id, prefix)
                if outcome == "missing":
                    missing += 1
                    continue
                if outcome == "stale":
                    previous = self._last_seen.get(cache_key)
                    if previous is None:
                        missing += 1  # nothing older to serve: a gap, not a lie
                        continue
                    old_advertised, old_actual = previous
                    learned += self._model.observe(
                        ug, old_advertised, old_actual, stale=True
                    )
                    touched_ugs.add(ug.ug_id)
                    stale += 1
                    continue
                learned += self._model.observe(ug, advertised, actual.peering_id)
                touched_ugs.add(ug.ug_id)
                self._last_seen[cache_key] = (advertised, actual.peering_id)
                observed += 1
        timer.add(time.perf_counter() - start)
        if touched_ugs:
            # Warm-start dirty tracking: learning changed the model's view
            # of these UGs, so every peering that can serve them must be
            # re-evaluated by the next warm solve.
            catalog = self._scenario.catalog
            for ug_id in touched_ugs:
                row = self._ug_index.get(ug_id)
                if row is not None:
                    self._dirty_pids.update(
                        catalog.ingress_ids(self._scenario.user_groups[row])
                    )
        if self._parallel is not None and touched_ugs:
            # Epoch invalidation: forked workers hold per-solve layouts
            # derived from a now-stale learned split; tell them to drop it
            # (the next solve's prep re-sends the authoritative set).
            if not self._parallel.invalidate(sorted(touched_ugs)):
                # A worker missed the bump: the pool can no longer be
                # trusted (or waited on).  Trip the breaker now so the
                # next solve falls back to serial immediately instead of
                # timing out against a wedged pool.
                logger.warning(
                    "parallel invalidate broadcast failed; "
                    "tearing the pool down"
                )
                PERF.counter("parallel.fallbacks").add()
                emit_event(
                    "parallel_fallback",
                    reason="invalidate broadcast failed",
                    workers=self._parallel.n_workers,
                )
                self._teardown_parallel(mark_broken=True)
        obs_span.tag("observed", observed)
        obs_span.tag("missing", missing)
        obs_span.tag("stale", stale)
        obs_cm.__exit__(None, None, None)
        emit_event(
            "measurement_round",
            iteration=iteration,
            learned=learned,
            observed=observed,
            missing=missing,
            stale=stale,
        )
        return ObservationReport(
            learned=learned, observed=observed, missing=missing, stale=stale
        )

    def learn(
        self,
        iterations: int = 4,
        stop_threshold: float = 0.0,
        record_curve: bool = False,
        faults: Optional["ObservationFaultsLike"] = None,
    ) -> LearningResult:
        """Run the outer learning loop for up to ``iterations`` rounds.

        ``stop_threshold`` terminates early when the marginal realized-benefit
        increase falls below the given fraction (the paper terminates "when
        little marginal benefit increase" remains).

        ``faults`` injects observation degradation (see
        :meth:`execute_and_observe`); the loop completes regardless of how
        many observations a round loses — missing rounds simply learn less
        and carry a wider uncertainty band.
        """
        if iterations < 1:
            raise ValueError("need at least one iteration")
        result = LearningResult()
        previous_benefit: Optional[float] = None
        learn_cm = TRACER.span("orchestrator.learn", iterations=iterations)
        learn_span = learn_cm.__enter__()
        for iteration in range(iterations):
            iter_cm = TRACER.span("orchestrator.iteration", iteration=iteration)
            iter_span = iter_cm.__enter__()
            config = self.solve(record_curve=record_curve)
            evaluation = self._evaluator.evaluate(config)
            expected = self._evaluator.expected_benefit(config)
            emit_event(
                "advertisement",
                iteration=iteration,
                prefixes=config.prefix_count,
                pairs=config.pair_count,
                expected_benefit=expected,
            )
            report = self.execute_and_observe(config, faults=faults, iteration=iteration)
            realized = realized_benefit(self._scenario, config)
            emit_event(
                "iteration_result",
                iteration=iteration,
                realized_benefit=realized,
                new_preferences=report.learned,
            )
            result.iterations.append(
                IterationRecord(
                    iteration=iteration,
                    config=config,
                    expected_benefit=expected,
                    realized_benefit=realized,
                    upper_benefit=evaluation.upper,
                    estimated_benefit=evaluation.estimated,
                    lower_benefit=evaluation.lower,
                    new_preferences=report.learned,
                    observations_observed=report.observed,
                    observations_missing=report.missing,
                    observations_stale=report.stale,
                )
            )
            logger.info(
                "learning iteration %d: %s, realized benefit %.3f, "
                "%d new preferences (%d observed, %d missing, %d stale)",
                iteration,
                config,
                realized,
                report.learned,
                report.observed,
                report.missing,
                report.stale,
            )
            iter_span.tag("realized_benefit", realized)
            iter_cm.__exit__(None, None, None)
            if previous_benefit is not None and stop_threshold > 0:
                gain = realized - previous_benefit
                if gain <= stop_threshold * max(previous_benefit, EPSILON_BENEFIT):
                    break
            previous_benefit = realized
        learn_span.tag("iterations_run", len(result.iterations))
        learn_cm.__exit__(None, None, None)
        return result
