"""The orchestrator's routing model: predicted ingresses per (UG, prefix).

"Since it is difficult to predict ingresses, we make assumptions about UG
ingresses and, in cases with uncertainty, assume all policy-compliant
ingresses are equally likely. We then learn from incorrect assumptions over
time" (§3.1).  Two exclusion rules refine the uniform assumption:

* **learned preferences** — if a past advertisement exposed peerings X and Y
  to a UG and the UG was observed entering at X, then Y is excluded from any
  future prediction in which X is also advertised;
* **reuse distance** — an ingress is excluded when its PoP is more than
  ``D_reuse`` km farther from the UG than the closest PoP advertising the
  prefix (large inflation is rare, so the UG is assumed not to land there).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.perf import PERF
from repro.topology.cloud import CloudDeployment, Peering
from repro.topology.geo import haversine_km
from repro.usergroups.ingresses import IngressCatalog
from repro.usergroups.usergroup import UserGroup

#: Paper's operating point for the minimum reuse distance.
DEFAULT_D_REUSE_KM = 3000.0

#: Current on-disk/in-memory snapshot format (see :meth:`snapshot_preferences`).
SNAPSHOT_VERSION = 2


class RoutingModel:
    """Beliefs about how UGs route, refined by observed advertisements."""

    def __init__(
        self,
        catalog: IngressCatalog,
        d_reuse_km: float = DEFAULT_D_REUSE_KM,
    ) -> None:
        if d_reuse_km < 0:
            raise ValueError("d_reuse_km must be non-negative")
        self._catalog = catalog
        self._deployment: CloudDeployment = catalog.topology.deployment
        self._d_reuse_km = d_reuse_km
        #: Per UG: (winner, loser) peering-id pairs learned from observations,
        #: each scoped to the peer-ASN *context* it was observed under.  The
        #: AS-level race depends on which ASes compete (announcing to a new
        #: AS can change intermediate propagation), so a preference is only
        #: trusted when the current competitor set is contained in the
        #: observed one — generalizing further caused configurations that
        #: looked perfect and routed terribly.
        self._preferences: Dict[int, Dict[Tuple[int, int], FrozenSet[int]]] = {}
        #: Exact outcome memory: (ug_id, compliant peering-id set) -> the
        #: ingress actually observed.  Routing is deterministic per set, so
        #: a remembered outcome is a probability-1 prediction.
        self._outcomes: Dict[Tuple[int, FrozenSet[int]], int] = {}
        #: Distance cache keyed by (ug_id, peering_id).
        self._distance_cache: Dict[Tuple[int, int], float] = {}
        self._pop_distance_cache: Dict[Tuple[int, str], float] = {}
        self._observation_count = 0
        self._stale_observation_count = 0
        #: Memoized candidate predictions, bucketed per UG so that one
        #: observation invalidates exactly that UG's entries in O(1):
        #: ug_id -> {compliant peering-id set -> predicted candidates}.
        self._candidate_cache: Dict[int, Dict[FrozenSet[int], FrozenSet[int]]] = {}
        #: Per-UG invalidation epoch; bumped whenever the UG's beliefs change
        #: so downstream caches (the evaluator's expected-latency memo) can
        #: cheaply detect staleness without a callback protocol.
        self._ug_epoch: Dict[int, int] = {}
        #: Bumped on wholesale state replacement (restore_preferences).
        self._global_epoch = 0
        #: UGs with any learned state (preferences or outcome memory).  For
        #: everyone else, candidate prediction is pure reuse-distance
        #: pruning, which the evaluator's prefix-scan fast path exploits.
        self._learned_ugs: Set[int] = set()
        self._cand_stats = PERF.cache("routing_model.candidates")

    @property
    def d_reuse_km(self) -> float:
        return self._d_reuse_km

    @property
    def catalog(self) -> IngressCatalog:
        return self._catalog

    @property
    def observation_count(self) -> int:
        return self._observation_count

    @property
    def stale_observation_count(self) -> int:
        return self._stale_observation_count

    def ug_epoch(self, ug_id: int) -> int:
        """Monotonic belief version for one UG.

        Any cache keyed on this model's predictions for a UG can store the
        epoch alongside its entries and discard them when it moves — the
        caching/invalidation contract used by
        :class:`repro.core.benefit.BenefitEvaluator`.
        """
        return self._global_epoch + self._ug_epoch.get(ug_id, 0)

    def _invalidate_ug(self, ug_id: int) -> None:
        self._candidate_cache.pop(ug_id, None)
        self._ug_epoch[ug_id] = self._ug_epoch.get(ug_id, 0) + 1
        self._cand_stats.invalidations += 1

    def preference_count(self, ug: Optional[UserGroup] = None) -> int:
        if ug is not None:
            return len(self._preferences.get(ug.ug_id, ()))
        return sum(len(pairs) for pairs in self._preferences.values())

    def _peer_asns(self, peering_ids: Iterable[int]) -> FrozenSet[int]:
        return frozenset(
            self._deployment.peering(pid).peer_asn for pid in peering_ids
        )

    def _applicable_pairs(
        self, ug: UserGroup, compliant: FrozenSet[int]
    ) -> Set[Tuple[int, int]]:
        """Preference pairs trustworthy for this candidate set.

        Two classes generalize differently:

        * **within-AS pairs** (both peerings belong to one AS) encode that
          AS's exit policy, which is deterministic whenever both exits are
          advertised — always applicable;
        * **cross-AS pairs** encode the outcome of an AS-level race, which
          shifts with the competitor set (announcing to another AS changes
          intermediate propagation) — applicable only when the current
          competitor-ASN set matches the one observed.
        """
        prefs = self._preferences.get(ug.ug_id)
        if not prefs:
            return set()
        current_asns = self._peer_asns(compliant)
        applicable: Set[Tuple[int, int]] = set()
        for pair, context in prefs.items():
            winner, loser = pair
            same_as = (
                self._deployment.peering(winner).peer_asn
                == self._deployment.peering(loser).peer_asn
            )
            if same_as or current_asns == context:
                applicable.add(pair)
        return applicable

    # -- distances -----------------------------------------------------------

    def _distance_km(self, ug: UserGroup, peering_id: int) -> float:
        key = (ug.ug_id, peering_id)
        cached = self._distance_cache.get(key)
        if cached is None:
            peering = self._deployment.peering(peering_id)
            # Peerings co-located at one PoP share the distance; keying the
            # haversine itself per (UG, PoP) makes the per-peering entry a
            # dict copy instead of a trig evaluation.
            pop_key = (ug.ug_id, peering.pop.name)
            cached = self._pop_distance_cache.get(pop_key)
            if cached is None:
                cached = haversine_km(ug.location, peering.pop.location)
                self._pop_distance_cache[pop_key] = cached
            self._distance_cache[key] = cached
        return cached

    def distance_km(self, ug: UserGroup, peering_id: int) -> float:
        """UG-to-ingress great-circle distance (cached)."""
        return self._distance_km(ug, peering_id)

    def clear_distance_caches(self) -> None:
        """Drop the distance memos (pure haversines — recompute is exact).

        The chunked dense-matrix fill calls this between chunks: at 100k
        UGs the per-(UG, peering) memo alone would hold tens of millions
        of dict entries that the dense distance matrix supersedes.
        """
        self._distance_cache.clear()
        self._pop_distance_cache.clear()

    def has_learned_state(self, ug_id: int) -> bool:
        """Whether any observation refined this UG's uniform assumption.

        ``False`` means :meth:`candidate_ingresses` reduces to pure
        reuse-distance pruning for this UG — the precondition for the
        evaluator's incremental prefix-scan fast path.
        """
        return ug_id in self._learned_ugs

    @property
    def learned_ug_ids(self) -> Set[int]:
        """Live read-only view of the UGs with learned state (do not mutate)."""
        return self._learned_ugs

    # -- candidate prediction -----------------------------------------------

    def candidate_ingresses(
        self, ug: UserGroup, advertised: FrozenSet[int]
    ) -> FrozenSet[int]:
        """Peering ids the model considers possible (and equally likely).

        Starts from the policy-compliant subset of the advertised peerings.
        Learned preferences apply first and *override* the reuse-distance
        heuristic: an ingress observed to win stays a candidate no matter how
        far away it is (the Miami-routed-through-Tokyo case is exactly what
        learning must be able to represent), while ingresses it beat are
        excluded.  The reuse-distance assumption then prunes only ingresses
        we have no observations about.  If everything would be excluded, the
        closest compliant ingress is kept (the UG must land somewhere).
        """
        compliant = self._catalog.compliant_subset(ug, advertised)
        if not compliant:
            return frozenset()

        bucket = self._candidate_cache.get(ug.ug_id)
        if bucket is None:
            bucket = self._candidate_cache[ug.ug_id] = {}
        cached = bucket.get(compliant)
        if cached is not None:
            self._cand_stats.hits += 1
            return cached
        self._cand_stats.misses += 1
        result = self._predict_candidates(ug, compliant)
        bucket[compliant] = result
        return result

    def _predict_candidates(
        self, ug: UserGroup, compliant: FrozenSet[int]
    ) -> FrozenSet[int]:
        remembered = self._outcomes.get((ug.ug_id, compliant))
        if remembered is not None and remembered in compliant:
            return frozenset({remembered})

        pairs = self._applicable_pairs(ug, compliant)
        winners: Set[int] = set()
        after_pref = set(compliant)
        if pairs:
            winners = {w for (w, loser) in pairs if w in compliant}
            if winners:
                losers = {
                    loser for (w, loser) in pairs if w in compliant and loser in compliant
                }
                survivors = after_pref - losers
                if survivors:
                    after_pref = survivors

        closest = min(self._distance_km(ug, pid) for pid in after_pref)
        kept = {
            pid
            for pid in after_pref
            if pid in winners
            or self._distance_km(ug, pid) - closest <= self._d_reuse_km
        }

        if not kept:
            kept = {min(compliant, key=lambda pid: self._distance_km(ug, pid))}
        return frozenset(kept)

    def expected_latency_ms(
        self,
        ug: UserGroup,
        advertised: FrozenSet[int],
        latency_of: "LatencySource",
    ) -> Optional[float]:
        """Eq. 2's inner expectation: mean latency over candidate ingresses.

        ``latency_of(ug, peering_id)`` supplies measured/estimated latency
        and may return ``None`` for unmeasurable ingresses, which are then
        skipped.  Returns ``None`` when nothing is measurable.
        """
        candidates = self.candidate_ingresses(ug, advertised)
        total = 0.0
        count = 0
        for pid in candidates:
            latency = latency_of(ug, pid)
            if latency is None:
                continue
            total += latency
            count += 1
        if count == 0:
            return None
        return total / count

    # -- learning --------------------------------------------------------------

    def observe(
        self,
        ug: UserGroup,
        advertised: FrozenSet[int],
        actual_peering_id: int,
        stale: bool = False,
    ) -> int:
        """Incorporate one observed routing outcome.

        The UG was seen entering at ``actual_peering_id`` while ``advertised``
        was live, so the actual ingress dominates every other compliant
        advertised ingress for this UG.  Returns how many new preference
        pairs were learned.

        A ``stale`` observation describes the world as it *was* (the
        collector pipeline lagged), so it is folded in softly: it never
        writes the probability-1 outcome memory, never evicts a fresher
        contradicting pair, and only adds preference pairs nothing fresh
        disputes — the model widens rather than narrows on stale data.
        """
        compliant = self._catalog.compliant_subset(ug, advertised)
        if actual_peering_id not in advertised:
            raise ValueError(
                f"observed peering {actual_peering_id} was not advertised"
            )
        context = self._peer_asns(compliant)
        prefs = self._preferences.setdefault(ug.ug_id, {})
        # Beliefs about this UG are about to change: drop its memoized
        # candidate sets and bump its epoch so downstream caches follow.
        self._invalidate_ug(ug.ug_id)
        self._learned_ugs.add(ug.ug_id)
        learned = 0
        if stale:
            for pid in compliant:
                if pid == actual_peering_id:
                    continue
                pair = (actual_peering_id, pid)
                if pair in prefs or (pid, actual_peering_id) in prefs:
                    continue  # fresh (or equally stale) data already speaks
                prefs[pair] = context
                learned += 1
            self._stale_observation_count += 1
            return learned
        self._outcomes[(ug.ug_id, compliant)] = actual_peering_id
        for pid in compliant:
            if pid == actual_peering_id:
                continue
            pair = (actual_peering_id, pid)
            if pair not in prefs:
                learned += 1
            # Observation supersedes any older, contradicting pair and
            # refreshes the pair's competitor context.
            prefs.pop((pid, actual_peering_id), None)
            prefs[pair] = context
        self._observation_count += 1
        return learned

    def is_excluded_by_preference(
        self, ug: UserGroup, peering_id: int, advertised: FrozenSet[int]
    ) -> bool:
        """Whether learned preferences exclude ``peering_id`` in this set."""
        compliant = self._catalog.compliant_subset(ug, advertised)
        pairs = self._applicable_pairs(ug, compliant)
        return any(
            loser == peering_id and winner in advertised and winner != peering_id
            for (winner, loser) in pairs
        )

    def snapshot_preferences(self) -> Dict[str, object]:
        """Full learned state as a versioned dict (format ``SNAPSHOT_VERSION``).

        Carries the preference pairs *and* the ``_outcomes`` probability-1
        memory plus observation counters — earlier formats dropped the
        outcomes, so persisting learning across runs silently lost the
        strongest (deterministic) predictions.  The keys:

        * ``"version"`` — the snapshot format, currently 2;
        * ``"preferences"`` — ``{ug_id: {(winner, loser): context}}``;
        * ``"outcomes"`` — ``{(ug_id, compliant set): observed ingress}``;
        * ``"observation_count"`` / ``"stale_observation_count"``.
        """
        return {
            "version": SNAPSHOT_VERSION,
            "preferences": {
                ug_id: dict(pairs) for ug_id, pairs in self._preferences.items()
            },
            "outcomes": dict(self._outcomes),
            "observation_count": self._observation_count,
            "stale_observation_count": self._stale_observation_count,
        }

    def restore_preferences(self, snapshot: Mapping) -> None:
        """Load a previously-saved state (replaces the current).

        Lets an operator persist learning across orchestrator runs — the
        paper's configurations "need not change often" (§5.1.3), so the
        expensive part worth keeping is the learned routing model.

        Accepts both the current versioned dict (see
        :meth:`snapshot_preferences`) and the legacy preferences-only
        mapping ``{ug_id: {(winner, loser): context}}``; legacy snapshots
        restore with empty outcome memory and zeroed counters (they never
        carried either).
        """
        if "version" in snapshot:
            version = snapshot["version"]
            if version != SNAPSHOT_VERSION:
                raise ValueError(f"unsupported snapshot version {version!r}")
            preferences = snapshot["preferences"]
            outcomes = snapshot.get("outcomes", {})
            observation_count = int(snapshot.get("observation_count", 0))
            stale_count = int(snapshot.get("stale_observation_count", 0))
        else:  # legacy: bare {ug_id: pairs} mapping
            preferences = snapshot
            outcomes = {}
            observation_count = 0
            stale_count = 0
        self._preferences = {
            int(ug_id): {
                (int(w), int(l)): frozenset(int(a) for a in context)
                for (w, l), context in pairs.items()
            }
            for ug_id, pairs in preferences.items()
        }
        self._outcomes = {
            (int(ug_id), frozenset(int(p) for p in compliant)): int(actual)
            for (ug_id, compliant), actual in outcomes.items()
        }
        self._observation_count = observation_count
        self._stale_observation_count = stale_count
        self._learned_ugs = {
            ug_id for ug_id, pairs in self._preferences.items() if pairs
        } | {ug_id for (ug_id, _compliant) in self._outcomes}
        # Every UG's beliefs may have changed wholesale.
        self._candidate_cache.clear()
        self._global_epoch += 1
        self._cand_stats.invalidations += 1


class LatencySource:
    """Protocol-ish callable: (UserGroup, peering_id) -> Optional[float]."""

    def __call__(self, ug: UserGroup, peering_id: int) -> Optional[float]:
        raise NotImplementedError
