"""Serialization: persist configurations and experiment artifacts as JSON.

An operator running the Advertisement Orchestrator wants to version its
outputs: the configuration that is live, the learning history that produced
it, and the experiment tables backing a rollout decision.  Everything here
round-trips through plain JSON — no pickle, no custom binary formats.

Every ``save_*`` function is **crash-safe**: the document is written to a
temporary file in the destination directory, flushed and fsync'd, and then
atomically renamed over the target (:func:`atomic_write_text`).  A process
killed mid-save leaves the previous file intact — the durability contract
the continuous controller (:mod:`repro.controller`) builds its checkpoint
store on.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.core.advertisement import AdvertisementConfig
from repro.core.orchestrator import IterationRecord, LearningResult
from repro.core.routing_model import RoutingModel
from repro.experiments.harness import ExperimentResult

PathLike = Union[str, Path]

_CONFIG_KIND = "painter-advertisement-config"
_MODEL_KIND = "painter-routing-model"
_LEARNING_KIND = "painter-learning-result"
_EXPERIMENT_KIND = "painter-experiment-result"
_FORMAT_VERSION = 1
#: Routing-model documents grew outcomes + counters in version 2; version 1
#: files (preferences only) still load.
_MODEL_FORMAT_VERSION = 2


class SerializationError(ValueError):
    """Raised for malformed or mismatched documents."""


def atomic_write_text(path: PathLike, text: str) -> None:
    """Durably replace ``path`` with ``text`` (write-temp, fsync, rename).

    The temporary file lives in the same directory as the target so the
    final :func:`os.replace` is an atomic rename on every POSIX filesystem;
    the file is fsync'd before the rename and the directory after it, so a
    crash at any instant leaves either the complete old file or the
    complete new one — never a torn mix.
    """
    target = Path(path)
    directory = target.parent
    fd, tmp_name = tempfile.mkstemp(
        dir=str(directory) or ".", prefix=f".{target.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    _fsync_directory(directory)


def _fsync_directory(directory: Path) -> None:
    """Persist a rename by fsyncing its directory (best-effort off POSIX)."""
    try:
        dir_fd = os.open(str(directory) or ".", os.O_RDONLY)
    except OSError:  # pragma: no cover - platforms without dir fds
        return
    try:
        os.fsync(dir_fd)
    except OSError:  # pragma: no cover - filesystems rejecting dir fsync
        pass
    finally:
        os.close(dir_fd)


def _check_header(
    document: Dict[str, Any], kind: str, versions: tuple = (_FORMAT_VERSION,)
) -> None:
    if not isinstance(document, dict):
        raise SerializationError("document must be a JSON object")
    if document.get("kind") != kind:
        raise SerializationError(
            f"expected kind {kind!r}, got {document.get('kind')!r}"
        )
    if document.get("version") not in versions:
        raise SerializationError(f"unsupported version {document.get('version')!r}")


# -- advertisement configurations ------------------------------------------


def config_to_dict(config: AdvertisementConfig) -> Dict[str, Any]:
    return {
        "kind": _CONFIG_KIND,
        "version": _FORMAT_VERSION,
        "prefixes": {
            str(prefix): sorted(config.peerings_for(prefix))
            for prefix in config.prefixes
        },
    }


def config_from_dict(document: Dict[str, Any]) -> AdvertisementConfig:
    _check_header(document, _CONFIG_KIND)
    prefixes = document.get("prefixes")
    if not isinstance(prefixes, dict):
        raise SerializationError("missing 'prefixes' mapping")
    config = AdvertisementConfig()
    for prefix_str, peering_ids in prefixes.items():
        try:
            prefix = int(prefix_str)
        except ValueError:
            raise SerializationError(f"bad prefix key {prefix_str!r}") from None
        if not isinstance(peering_ids, list):
            raise SerializationError(f"peerings of {prefix_str} must be a list")
        for pid in peering_ids:
            if not isinstance(pid, int):
                raise SerializationError(f"bad peering id {pid!r}")
            config.add(prefix, pid)
    return config


def save_config(config: AdvertisementConfig, path: PathLike) -> None:
    atomic_write_text(path, json.dumps(config_to_dict(config), indent=2))


def load_config(path: PathLike) -> AdvertisementConfig:
    return config_from_dict(json.loads(Path(path).read_text()))


# -- learning results ----------------------------------------------------------


def learning_result_to_dict(result: LearningResult) -> Dict[str, Any]:
    return {
        "kind": _LEARNING_KIND,
        "version": _FORMAT_VERSION,
        "iterations": [
            {
                "iteration": record.iteration,
                "config": config_to_dict(record.config),
                "expected_benefit": record.expected_benefit,
                "realized_benefit": record.realized_benefit,
                "upper_benefit": record.upper_benefit,
                "estimated_benefit": record.estimated_benefit,
                "lower_benefit": record.lower_benefit,
                "new_preferences": record.new_preferences,
            }
            for record in result.iterations
        ],
    }


def learning_result_from_dict(document: Dict[str, Any]) -> LearningResult:
    _check_header(document, _LEARNING_KIND)
    iterations = document.get("iterations")
    if not isinstance(iterations, list):
        raise SerializationError("missing 'iterations' list")
    result = LearningResult()
    for item in iterations:
        try:
            result.iterations.append(
                IterationRecord(
                    iteration=int(item["iteration"]),
                    config=config_from_dict(item["config"]),
                    expected_benefit=float(item["expected_benefit"]),
                    realized_benefit=float(item["realized_benefit"]),
                    upper_benefit=float(item["upper_benefit"]),
                    estimated_benefit=float(item["estimated_benefit"]),
                    lower_benefit=float(item["lower_benefit"]),
                    new_preferences=int(item["new_preferences"]),
                )
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SerializationError(f"bad iteration record: {exc}") from exc
    return result


def save_learning_result(result: LearningResult, path: PathLike) -> None:
    atomic_write_text(path, json.dumps(learning_result_to_dict(result), indent=2))


def load_learning_result(path: PathLike) -> LearningResult:
    return learning_result_from_dict(json.loads(Path(path).read_text()))


# -- experiment results ----------------------------------------------------------


def experiment_result_to_dict(result: ExperimentResult) -> Dict[str, Any]:
    return {
        "kind": _EXPERIMENT_KIND,
        "version": _FORMAT_VERSION,
        "experiment_id": result.experiment_id,
        "title": result.title,
        "columns": list(result.columns),
        "rows": [list(row) for row in result.rows],
        "notes": list(result.notes),
    }


def experiment_result_from_dict(document: Dict[str, Any]) -> ExperimentResult:
    _check_header(document, _EXPERIMENT_KIND)
    try:
        result = ExperimentResult(
            experiment_id=str(document["experiment_id"]),
            title=str(document["title"]),
            columns=[str(c) for c in document["columns"]],
        )
        for row in document["rows"]:
            result.add_row(*row)
        for note in document.get("notes", []):
            result.add_note(str(note))
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"bad experiment document: {exc}") from exc
    return result


def save_experiment_result(result: ExperimentResult, path: PathLike) -> None:
    atomic_write_text(path, json.dumps(experiment_result_to_dict(result), indent=2))


def load_experiment_result(path: PathLike) -> ExperimentResult:
    return experiment_result_from_dict(json.loads(Path(path).read_text()))


# -- routing-model preference state ------------------------------------------


def routing_model_to_dict(model: RoutingModel) -> Dict[str, Any]:
    snapshot = model.snapshot_preferences()
    return {
        "kind": _MODEL_KIND,
        "version": _MODEL_FORMAT_VERSION,
        "d_reuse_km": model.d_reuse_km,
        "preferences": {
            str(ug_id): sorted(
                [list(pair) + [sorted(context)] for pair, context in pairs.items()]
            )
            for ug_id, pairs in snapshot["preferences"].items()
        },
        "outcomes": sorted(
            [int(ug_id), sorted(int(p) for p in compliant), int(actual)]
            for (ug_id, compliant), actual in snapshot["outcomes"].items()
        ),
        "observation_count": snapshot["observation_count"],
        "stale_observation_count": snapshot["stale_observation_count"],
    }


def restore_routing_model(model: RoutingModel, document: Dict[str, Any]) -> None:
    """Load saved learned state into an existing model (catalog-bound).

    Accepts both version-2 documents (preferences + outcome memory +
    counters) and legacy version-1 documents (preferences only).
    """
    _check_header(document, _MODEL_KIND, versions=(1, _MODEL_FORMAT_VERSION))
    preferences = document.get("preferences")
    if not isinstance(preferences, dict):
        raise SerializationError("missing 'preferences' mapping")
    try:
        preference_state = {
            int(ug_id): {
                (int(w), int(l)): frozenset(int(a) for a in context)
                for w, l, context in pairs
            }
            for ug_id, pairs in preferences.items()
        }
    except (TypeError, ValueError) as exc:
        raise SerializationError(f"bad preference pairs: {exc}") from exc
    try:
        outcomes = {
            (int(ug_id), frozenset(int(p) for p in compliant)): int(actual)
            for ug_id, compliant, actual in document.get("outcomes", [])
        }
    except (TypeError, ValueError) as exc:
        raise SerializationError(f"bad outcome entries: {exc}") from exc
    model.restore_preferences(
        {
            "version": 2,
            "preferences": preference_state,
            "outcomes": outcomes,
            "observation_count": int(document.get("observation_count", 0)),
            "stale_observation_count": int(document.get("stale_observation_count", 0)),
        }
    )


def save_routing_model(model: RoutingModel, path: PathLike) -> None:
    atomic_write_text(path, json.dumps(routing_model_to_dict(model), indent=2))


def load_routing_model_into(model: RoutingModel, path: PathLike) -> None:
    restore_routing_model(model, json.loads(Path(path).read_text()))


# -- scenario manifests -------------------------------------------------------

_MANIFEST_KIND = "painter-scenario-manifest"


def scenario_manifest(scenario) -> Dict[str, Any]:
    """A rebuildable description of a scenario (configs + seeds).

    Worlds are fully determined by their configuration dataclasses, so the
    manifest is all anyone needs to regenerate the exact world behind a
    result — the reproducibility artifact to archive next to experiment
    outputs.
    """
    from dataclasses import asdict

    topo_cfg = asdict(scenario.topology.config)
    latency_cfg = asdict(scenario.latency_model.config)
    return {
        "kind": _MANIFEST_KIND,
        "version": _FORMAT_VERSION,
        "name": scenario.name,
        "topology": topo_cfg,
        "latency": latency_cfg,
        "n_user_groups": len(scenario.user_groups),
        "n_peerings": len(scenario.deployment),
    }


def rebuild_from_manifest(document: Dict[str, Any], ug_config=None):
    """Rebuild a scenario world from a manifest.

    ``ug_config`` must be supplied when the manifest's population should be
    regenerated with specific parameters; by default the UG count recorded
    in the manifest is used with the topology seed + 1 (the preset
    convention).
    """
    from repro.measurement.latency_model import LatencyModelConfig
    from repro.scenario import build_scenario
    from repro.topology.builder import TopologyConfig
    from repro.usergroups.generation import UserGroupConfig

    _check_header(document, _MANIFEST_KIND)
    try:
        topo_cfg = TopologyConfig(**document["topology"])
        latency_cfg = LatencyModelConfig(**document["latency"])
        if ug_config is None:
            ug_config = UserGroupConfig(
                seed=topo_cfg.seed + 1, n_ugs=int(document["n_user_groups"])
            )
        return build_scenario(
            name=str(document["name"]),
            topology_config=topo_cfg,
            ug_config=ug_config,
            latency_config=latency_cfg,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"bad manifest: {exc}") from exc


def save_scenario_manifest(scenario, path: PathLike) -> None:
    atomic_write_text(path, json.dumps(scenario_manifest(scenario), indent=2))


def load_scenario_from_manifest(path: PathLike, ug_config=None):
    return rebuild_from_manifest(json.loads(Path(path).read_text()), ug_config=ug_config)
