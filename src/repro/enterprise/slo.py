"""Per-service SLO analysis: can the enterprise's paths meet its needs?

The paper's motivation (§1, §2.1) is quantitative: AR needs 10 ms at 20
Mbps, 5G promises URLLC, and ingress paths decide whether those budgets
survive the trip to the cloud.  This analysis evaluates, per enterprise site
and service, whether the SLO is met under (a) default anycast routing and
(b) PAINTER's advertisement configuration with per-flow steering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.advertisement import AdvertisementConfig
from repro.enterprise.model import Enterprise, ServiceProfile, Site
from repro.scenario import Scenario


@dataclass(frozen=True)
class SloOutcome:
    """One (site, service) row of the analysis."""

    site_name: str
    service_name: str
    slo_ms: float
    anycast_latency_ms: float
    painter_latency_ms: float
    steerable: bool

    @property
    def met_under_anycast(self) -> bool:
        return self.anycast_latency_ms <= self.slo_ms

    @property
    def met_under_painter(self) -> bool:
        """PAINTER helps only where a TM-Edge controls the traffic (§3.3)."""
        effective = self.painter_latency_ms if self.steerable else self.anycast_latency_ms
        return effective <= self.slo_ms

    @property
    def improvement_ms(self) -> float:
        if not self.steerable:
            return 0.0
        return max(0.0, self.anycast_latency_ms - self.painter_latency_ms)


def painter_latency_for_site(
    scenario: Scenario, site: Site, config: AdvertisementConfig
) -> float:
    """Best ground-truth latency across the configuration's prefixes."""
    ug = site.user_group
    best = scenario.anycast_latency_ms(ug)
    for prefix in config.prefixes:
        latency = scenario.routing.latency_for(ug, config.peerings_for(prefix))
        if latency is not None and latency < best:
            best = latency
    return best


def analyze_slos(
    scenario: Scenario, enterprise: Enterprise, config: AdvertisementConfig
) -> List[SloOutcome]:
    """Evaluate every (site, service) pair of the enterprise."""
    outcomes: List[SloOutcome] = []
    for site in enterprise.sites:
        anycast = scenario.anycast_latency_ms(site.user_group)
        painter = painter_latency_for_site(scenario, site, config)
        for service in enterprise.services:
            outcomes.append(
                SloOutcome(
                    site_name=site.name,
                    service_name=service.name,
                    slo_ms=service.latency_slo_ms,
                    anycast_latency_ms=anycast,
                    painter_latency_ms=painter,
                    steerable=site.has_edge_stack,
                )
            )
    return outcomes


@dataclass(frozen=True)
class SloSummary:
    """Headcount-weighted SLO attainment for the whole enterprise."""

    anycast_met_fraction: float
    painter_met_fraction: float
    mean_improvement_ms: float

    @property
    def newly_met_fraction(self) -> float:
        return self.painter_met_fraction - self.anycast_met_fraction


def summarize_slos(
    enterprise: Enterprise, outcomes: Sequence[SloOutcome]
) -> SloSummary:
    """Aggregate outcomes weighted by site headcount and service share."""
    if not outcomes:
        raise ValueError("no outcomes to summarize")
    headcount = {site.name: site.headcount for site in enterprise.sites}
    share = {svc.name: svc.traffic_share for svc in enterprise.services}
    total = 0.0
    anycast_met = 0.0
    painter_met = 0.0
    improvement = 0.0
    for outcome in outcomes:
        weight = headcount[outcome.site_name] * share[outcome.service_name]
        total += weight
        if outcome.met_under_anycast:
            anycast_met += weight
        if outcome.met_under_painter:
            painter_met += weight
        improvement += weight * outcome.improvement_ms
    return SloSummary(
        anycast_met_fraction=anycast_met / total,
        painter_met_fraction=painter_met / total,
        mean_improvement_ms=improvement / total,
    )
