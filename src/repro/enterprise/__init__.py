"""Enterprise workloads: the Fig. 2 modern enterprise and its SLOs."""

from repro.enterprise.builder import EnterpriseConfig, build_enterprise
from repro.enterprise.model import (
    Enterprise,
    STANDARD_SERVICES,
    ServiceProfile,
    Site,
    SiteKind,
)
from repro.enterprise.slo import (
    SloOutcome,
    SloSummary,
    analyze_slos,
    painter_latency_for_site,
    summarize_slos,
)
from repro.enterprise.workload import (
    WorkloadFlow,
    diurnal_intensity,
    flows_by_service,
    generate_workload,
    peak_concurrent_demand_mbps,
)

__all__ = [
    "Enterprise",
    "EnterpriseConfig",
    "STANDARD_SERVICES",
    "ServiceProfile",
    "Site",
    "SiteKind",
    "SloOutcome",
    "SloSummary",
    "WorkloadFlow",
    "analyze_slos",
    "build_enterprise",
    "diurnal_intensity",
    "flows_by_service",
    "generate_workload",
    "painter_latency_for_site",
    "peak_concurrent_demand_mbps",
    "summarize_slos",
]
