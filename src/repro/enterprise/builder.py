"""Generate enterprises over a scenario's user-group population."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.enterprise.model import (
    Enterprise,
    STANDARD_SERVICES,
    ServiceProfile,
    Site,
    SiteKind,
)
from repro.scenario import Scenario
from repro.usergroups.usergroup import UserGroup


@dataclass(frozen=True)
class EnterpriseConfig:
    seed: int = 0
    n_branches: int = 4
    #: Probability a site lacks a cloud-edge stack (unmanaged traffic).
    unmanaged_site_prob: float = 0.15
    hq_headcount: int = 1200
    branch_headcount_mean: int = 150
    remote_headcount: int = 300

    def __post_init__(self) -> None:
        if self.n_branches < 0:
            raise ValueError("n_branches must be non-negative")
        if not 0.0 <= self.unmanaged_site_prob <= 1.0:
            raise ValueError("unmanaged_site_prob must be in [0,1]")


def build_enterprise(
    scenario: Scenario,
    config: Optional[EnterpriseConfig] = None,
    services: Optional[Sequence[ServiceProfile]] = None,
) -> Enterprise:
    """An enterprise whose sites sit in the scenario's UG population.

    HQ lands in the highest-volume UG (enterprises cluster where traffic
    is); branches are drawn from distinct other UGs; remote employees attach
    to a UG without an edge stack (their traffic is not TM-steerable,
    mirroring §3.3's limitation).
    """
    config = config or EnterpriseConfig()
    rng = random.Random(config.seed)
    ugs = sorted(scenario.user_groups, key=lambda ug: -ug.volume)
    needed = 2 + config.n_branches
    if len(ugs) < needed:
        raise ValueError(f"scenario has {len(ugs)} UGs; enterprise needs {needed}")

    enterprise = Enterprise(
        name=f"enterprise-{config.seed}",
        services=list(services if services is not None else STANDARD_SERVICES),
    )
    enterprise.add_site(
        Site(
            name="hq",
            kind=SiteKind.HEADQUARTERS,
            user_group=ugs[0],
            headcount=config.hq_headcount,
        )
    )
    branch_pool = ugs[1 : 1 + max(10, 3 * config.n_branches)]
    chosen = rng.sample(branch_pool, k=min(config.n_branches, len(branch_pool)))
    for index, ug in enumerate(chosen):
        enterprise.add_site(
            Site(
                name=f"branch-{index}",
                kind=SiteKind.BRANCH_OFFICE,
                user_group=ug,
                headcount=max(10, int(rng.gauss(config.branch_headcount_mean, 40))),
                has_edge_stack=rng.random() >= config.unmanaged_site_prob,
            )
        )
    remote_ug = ugs[1 + len(branch_pool)] if len(ugs) > 1 + len(branch_pool) else ugs[-1]
    enterprise.add_site(
        Site(
            name="remote",
            kind=SiteKind.REMOTE_EMPLOYEES,
            user_group=remote_ug,
            headcount=config.remote_headcount,
            has_edge_stack=False,  # laptops on home ISPs: no TM-Edge
        )
    )
    return enterprise
