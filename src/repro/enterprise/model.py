"""The modern enterprise of Figure 2: sites, services, cloud integration.

The paper motivates PAINTER with an enterprise whose corporate WAN is
*virtual* — branch offices, HQ, and remote employees connect to each other
and to services through the cloud, with cloud-edge network stacks (the
TM-Edge hosts) at each site's choke point.  This module models that
enterprise so workloads and SLO analyses can be expressed in its terms.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.usergroups.usergroup import UserGroup


class SiteKind(enum.Enum):
    HEADQUARTERS = "hq"
    BRANCH_OFFICE = "branch"
    REMOTE_EMPLOYEES = "remote"


@dataclass(frozen=True)
class ServiceProfile:
    """A cloud service the enterprise depends on, with its requirements.

    ``latency_slo_ms`` and ``loss_slo`` express the service's tolerance;
    the paper cites AR's 10 ms / 20 Mbps / 1e-5-loss requirement and 5G
    URLLC as the coming pressure on ingress paths.
    """

    name: str
    latency_slo_ms: float
    bandwidth_mbps: float
    loss_slo: float = 1e-3
    #: Relative share of the enterprise's traffic volume.
    traffic_share: float = 1.0

    def __post_init__(self) -> None:
        if self.latency_slo_ms <= 0:
            raise ValueError("latency SLO must be positive")
        if self.bandwidth_mbps <= 0:
            raise ValueError("bandwidth must be positive")
        if not 0 <= self.loss_slo < 1:
            raise ValueError("loss SLO must be in [0,1)")
        if self.traffic_share <= 0:
            raise ValueError("traffic share must be positive")


#: Service mix of the paper's motivating enterprise: teleconferencing and
#: management traffic now, AR/5G-edge class applications next.
STANDARD_SERVICES: Tuple[ServiceProfile, ...] = (
    ServiceProfile(
        name="teleconferencing", latency_slo_ms=100.0, bandwidth_mbps=4.0, traffic_share=0.45
    ),
    ServiceProfile(
        name="file-storage", latency_slo_ms=250.0, bandwidth_mbps=20.0, traffic_share=0.30
    ),
    ServiceProfile(
        name="sales-database", latency_slo_ms=60.0, bandwidth_mbps=2.0, traffic_share=0.15
    ),
    ServiceProfile(
        name="ar-offload", latency_slo_ms=10.0, bandwidth_mbps=20.0, loss_slo=1e-5,
        traffic_share=0.10,
    ),
)


@dataclass(frozen=True)
class Site:
    """One enterprise location, anchored to a user group.

    The UG supplies geography and routing identity (its AS and metro); the
    site adds enterprise semantics: kind, headcount, and whether a
    cloud-edge stack (TM-Edge host) is deployed there.
    """

    name: str
    kind: SiteKind
    user_group: UserGroup
    headcount: int
    has_edge_stack: bool = True

    def __post_init__(self) -> None:
        if self.headcount < 1:
            raise ValueError("headcount must be positive")


@dataclass
class Enterprise:
    """A cloud-integrated enterprise: sites plus the services they consume."""

    name: str
    sites: List[Site] = field(default_factory=list)
    services: List[ServiceProfile] = field(default_factory=list)

    def add_site(self, site: Site) -> None:
        if any(existing.name == site.name for existing in self.sites):
            raise ValueError(f"site {site.name!r} already exists")
        self.sites.append(site)

    def site(self, name: str) -> Site:
        for site in self.sites:
            if site.name == name:
                return site
        raise KeyError(f"no site {name!r}")

    def service(self, name: str) -> ServiceProfile:
        for service in self.services:
            if service.name == name:
                return service
        raise KeyError(f"no service {name!r}")

    @property
    def total_headcount(self) -> int:
        return sum(site.headcount for site in self.sites)

    def managed_sites(self) -> List[Site]:
        """Sites where a TM-Edge can steer traffic (§3.3: PAINTER 'only
        works for traffic controllable by a TM-Edge')."""
        return [site for site in self.sites if site.has_edge_stack]

    def steerable_fraction(self) -> float:
        """Headcount share behind a cloud-edge stack."""
        if not self.sites:
            return 0.0
        managed = sum(site.headcount for site in self.managed_sites())
        return managed / self.total_headcount
