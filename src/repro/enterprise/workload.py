"""Flow-level workload generation for an enterprise.

Produces the kind of traffic the paper's motivating enterprise sends to the
cloud: per-service flows from each site, with diurnal intensity and
service-specific durations — teleconferencing holds long flows (the DNS/TTL
problem of §2.2), databases issue short ones.  The flows are 5-tuples ready
to be fed through a TM-Edge.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.enterprise.model import Enterprise, ServiceProfile, Site
from repro.traffic_manager.flows import FiveTuple
from repro.util import stable_rng


@dataclass(frozen=True)
class WorkloadFlow:
    """One generated flow with its enterprise context."""

    five_tuple: FiveTuple
    site_name: str
    service_name: str
    start_s: float
    duration_s: float
    bandwidth_mbps: float

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s


#: Service-name -> mean flow duration (s); conferencing dominates long flows.
_SERVICE_DURATIONS_S = {
    "teleconferencing": 2400.0,
    "file-storage": 90.0,
    "sales-database": 4.0,
    "ar-offload": 600.0,
}
_DEFAULT_DURATION_S = 60.0


def diurnal_intensity(time_s: float, peak_s: float = 14 * 3600.0) -> float:
    """Office-hours activity multiplier in [0.05, 1], peaking mid-afternoon."""
    day_fraction = (time_s % 86400.0) / 86400.0
    peak_fraction = peak_s / 86400.0
    angle = 2.0 * math.pi * (day_fraction - peak_fraction)
    return max(0.05, 0.525 + 0.475 * math.cos(angle))


def generate_workload(
    enterprise: Enterprise,
    duration_s: float = 3600.0,
    start_s: float = 12 * 3600.0,
    flows_per_person_hour: float = 0.5,
    seed: int = 0,
) -> List[WorkloadFlow]:
    """Flows from every site over a window, honoring shares and diurnality."""
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    total_share = sum(s.traffic_share for s in enterprise.services)
    flows: List[WorkloadFlow] = []
    port_counter = 10_000
    for site in enterprise.sites:
        rng = stable_rng(seed, "workload", enterprise.name, site.name)
        expected = (
            site.headcount
            * flows_per_person_hour
            * (duration_s / 3600.0)
            * diurnal_intensity(start_s + duration_s / 2.0)
        )
        n_flows = max(1, int(round(expected)))
        for _ in range(n_flows):
            pick = rng.uniform(0.0, total_share)
            acc = 0.0
            service = enterprise.services[-1]
            for candidate in enterprise.services:
                acc += candidate.traffic_share
                if pick <= acc:
                    service = candidate
                    break
            mean_duration = _SERVICE_DURATIONS_S.get(service.name, _DEFAULT_DURATION_S)
            duration = rng.expovariate(1.0 / mean_duration)
            port_counter += 1
            flows.append(
                WorkloadFlow(
                    five_tuple=FiveTuple(
                        proto="tcp" if service.name != "teleconferencing" else "udp",
                        src_ip=f"10.{site.user_group.ug_id % 250}.0.{rng.randint(2, 250)}",
                        src_port=10_000 + (port_counter % 50_000),
                        dst_ip="1.1.1.1",
                        dst_port=443,
                    ),
                    site_name=site.name,
                    service_name=service.name,
                    start_s=start_s + rng.uniform(0.0, duration_s),
                    duration_s=max(0.5, duration),
                    bandwidth_mbps=service.bandwidth_mbps,
                )
            )
    flows.sort(key=lambda f: f.start_s)
    return flows


def peak_concurrent_demand_mbps(flows: Sequence[WorkloadFlow]) -> float:
    """Peak simultaneous bandwidth across the workload (sweep-line)."""
    events: List[Tuple[float, float]] = []
    for flow in flows:
        events.append((flow.start_s, flow.bandwidth_mbps))
        events.append((flow.end_s, -flow.bandwidth_mbps))
    events.sort()
    current = peak = 0.0
    for _time, delta in events:
        current += delta
        peak = max(peak, current)
    return peak


def flows_by_service(flows: Sequence[WorkloadFlow]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for flow in flows:
        counts[flow.service_name] = counts.get(flow.service_name, 0) + 1
    return counts
