"""Every example script runs to completion (slow; sized by the examples).

Examples are part of the public deliverable; a refactor that breaks one
should fail CI, not a user.  Heavy examples get generous timeouts.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))

#: Scripts that run the orchestrator at prototype scale.
SLOW = {
    "advertisement_strategies.py",
    "anycast_catchments.py",
    "budget_planning.py",
    "full_deployment.py",
    "learning_dynamics.py",
    "quickstart.py",
    "virtual_wan.py",
}


def test_every_example_is_listed():
    assert len(EXAMPLES) >= 10
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("name", [n for n in EXAMPLES if n not in SLOW])
def test_fast_examples_run(name):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()


@pytest.mark.parametrize("name", sorted(SLOW))
@pytest.mark.slow
def test_slow_examples_run(name):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()
