"""Geography primitives: distances, latency bounds, metro database."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.topology.geo import (
    EARTH_RADIUS_KM,
    FIBER_KM_PER_MS,
    GeoPoint,
    SPEED_OF_LIGHT_KM_PER_MS,
    WORLD_METROS,
    closest_distance_km,
    fiber_rtt_ms,
    haversine_km,
    metro_by_name,
    metros_in_region,
    nearest_metro,
    rtt_to_max_distance_km,
    speed_of_light_rtt_ms,
)

coords = st.builds(
    GeoPoint,
    lat=st.floats(min_value=-90, max_value=90, allow_nan=False),
    lon=st.floats(min_value=-180, max_value=180, allow_nan=False),
)


class TestGeoPoint:
    def test_rejects_bad_latitude(self):
        with pytest.raises(ValueError):
            GeoPoint(91.0, 0.0)

    def test_rejects_bad_longitude(self):
        with pytest.raises(ValueError):
            GeoPoint(0.0, 200.0)

    def test_distance_method_matches_function(self):
        a, b = GeoPoint(0, 0), GeoPoint(10, 10)
        assert a.distance_km(b) == haversine_km(a, b)


class TestHaversine:
    def test_zero_distance_to_self(self):
        p = GeoPoint(40.7, -74.0)
        assert haversine_km(p, p) == 0.0

    def test_known_distance_new_york_london(self):
        ny = metro_by_name("new-york").location
        ldn = metro_by_name("london").location
        # Great-circle NYC-London is ~5570 km.
        assert 5400 < haversine_km(ny, ldn) < 5750

    def test_equator_quarter_circumference(self):
        a, b = GeoPoint(0, 0), GeoPoint(0, 90)
        expected = math.pi * EARTH_RADIUS_KM / 2
        assert haversine_km(a, b) == pytest.approx(expected, rel=1e-6)

    @given(coords, coords)
    def test_symmetry(self, a, b):
        assert haversine_km(a, b) == pytest.approx(haversine_km(b, a), abs=1e-9)

    @given(coords, coords)
    def test_bounded_by_half_circumference(self, a, b):
        distance = haversine_km(a, b)
        assert 0.0 <= distance <= math.pi * EARTH_RADIUS_KM + 1e-6

    @given(coords, coords, coords)
    def test_triangle_inequality(self, a, b, c):
        direct = haversine_km(a, c)
        via = haversine_km(a, b) + haversine_km(b, c)
        assert direct <= via + 1e-6


class TestLatencyBounds:
    def test_speed_of_light_rtt_scaling(self):
        assert speed_of_light_rtt_ms(SPEED_OF_LIGHT_KM_PER_MS) == pytest.approx(2.0)

    def test_fiber_slower_than_vacuum(self):
        assert fiber_rtt_ms(1000) > speed_of_light_rtt_ms(1000)

    def test_fiber_stretch_applied(self):
        base = fiber_rtt_ms(1000, stretch=1.0)
        assert fiber_rtt_ms(1000, stretch=2.0) == pytest.approx(2.0 * base)

    def test_rtt_to_distance_roundtrip(self):
        rtt = speed_of_light_rtt_ms(1234.0)
        assert rtt_to_max_distance_km(rtt) == pytest.approx(1234.0)

    @pytest.mark.parametrize(
        "func", [speed_of_light_rtt_ms, fiber_rtt_ms, rtt_to_max_distance_km]
    )
    def test_negative_input_rejected(self, func):
        with pytest.raises(ValueError):
            func(-1.0)

    @given(st.floats(min_value=0, max_value=20000, allow_nan=False))
    def test_fiber_rtt_nonnegative_and_monotone(self, d):
        assert fiber_rtt_ms(d) >= 0
        assert fiber_rtt_ms(d + 100) > fiber_rtt_ms(d)


class TestMetros:
    def test_database_nonempty_and_unique(self):
        names = [m.name for m in WORLD_METROS]
        assert len(names) == len(set(names))
        assert len(names) >= 50

    def test_lookup_by_name(self):
        assert metro_by_name("tokyo").region == "asia-east"

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            metro_by_name("atlantis")

    def test_metros_in_region(self):
        eu = metros_in_region("eu-west")
        assert all(m.region == "eu-west" for m in eu)
        assert any(m.name == "london" for m in eu)

    def test_nearest_metro_is_itself(self):
        tokyo = metro_by_name("tokyo")
        assert nearest_metro(tokyo.location) == tokyo

    def test_nearest_metro_restricted_pool(self):
        tokyo = metro_by_name("tokyo")
        pool = [metro_by_name("london"), metro_by_name("sydney")]
        assert nearest_metro(tokyo.location, pool).name == "sydney"

    def test_nearest_metro_empty_pool_raises(self):
        with pytest.raises(ValueError):
            nearest_metro(GeoPoint(0, 0), [])

    def test_closest_distance(self):
        p = metro_by_name("paris").location
        points = [metro_by_name("london").location, metro_by_name("tokyo").location]
        assert closest_distance_km(p, points) == pytest.approx(
            haversine_km(p, points[0])
        )

    def test_closest_distance_empty_raises(self):
        with pytest.raises(ValueError):
            closest_distance_km(GeoPoint(0, 0), [])

    def test_metro_distance_method(self):
        a, b = metro_by_name("paris"), metro_by_name("london")
        assert 300 < a.distance_km(b) < 400
