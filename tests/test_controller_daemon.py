"""The controller daemon and its durability primitives, in process.

Covers the typed delta vocabulary (validation, JSON round-trips, seeded
synthesis, fault-schedule translation), the checkpoint store (atomic
save/load, hash verification, corrupt-file fallback, pruning), the durable
journal (fsync'd appends, torn-tail recovery, checkpoint-bounded
truncation), and the :class:`PainterController` loop itself: warm-start
re-solves under churn, stop/resume equivalence, the differential guard's
circuit breaker, graceful degradation to last-known-good, and the SIGALRM
watchdog.  Out-of-process SIGKILL recovery lives in
``test_controller_recovery.py``.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.controller import (
    Checkpoint,
    CheckpointError,
    CheckpointStore,
    ControllerConfig,
    ControllerError,
    DeltaError,
    DurableJournal,
    IterationTimeout,
    PainterController,
    PeeringDown,
    PeeringUp,
    PopDown,
    PopUp,
    VolumeShift,
    delta_from_dict,
    delta_to_dict,
    deltas_from_fault_schedule,
    group_deltas,
    load_deltas,
    save_deltas,
    synthetic_deltas,
)
from repro.controller.daemon import _watchdog
from repro.core.orchestrator import OrchestratorConfig
from repro.scenario import tiny_scenario


# ---------------------------------------------------------------------------
# deltas
# ---------------------------------------------------------------------------


class TestDeltas:
    def test_round_trip_every_type(self, tmp_path):
        deltas = [
            VolumeShift(at_s=0.0, ug_id=3, volume=12.5),
            PeeringDown(at_s=1.0, peering_id=7),
            PeeringUp(at_s=2.0, peering_id=7),
            PopDown(at_s=3.0, pop_name="pop-a"),
            PopUp(at_s=4.0, pop_name="pop-a"),
        ]
        path = tmp_path / "stream.json"
        save_deltas(deltas, path)
        assert load_deltas(path) == deltas

    def test_dict_round_trip(self):
        delta = VolumeShift(at_s=9.0, ug_id=1, volume=2.0)
        assert delta_from_dict(delta_to_dict(delta)) == delta

    def test_validation(self):
        with pytest.raises(ValueError):
            VolumeShift(at_s=0.0, ug_id=1, volume=-1.0)
        with pytest.raises(ValueError):
            VolumeShift(at_s=-1.0, ug_id=1, volume=1.0)
        with pytest.raises(ValueError):
            PopDown(at_s=0.0, pop_name="")
        with pytest.raises(DeltaError):
            delta_from_dict({"type": "no-such-delta", "at_s": 0.0})

    def test_load_rejects_foreign_documents(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"kind": "something-else"}))
        with pytest.raises(DeltaError):
            load_deltas(path)

    def test_group_deltas_buckets_and_sorts_by_timestamp(self):
        deltas = [
            PeeringDown(at_s=5.0, peering_id=1),
            VolumeShift(at_s=0.0, ug_id=1, volume=1.0),
            VolumeShift(at_s=5.0, ug_id=2, volume=2.0),
        ]
        groups = group_deltas(deltas)
        assert [at for at, _ in groups] == [0.0, 5.0]
        assert len(groups[1][1]) == 2

    def test_synthetic_deltas_are_seed_deterministic(self):
        scenario = tiny_scenario(seed=3)
        a = synthetic_deltas(scenario, iterations=6, seed=11)
        b = synthetic_deltas(tiny_scenario(seed=3), iterations=6, seed=11)
        c = synthetic_deltas(scenario, iterations=6, seed=12)
        assert a == b
        assert a != c
        assert any(isinstance(d, VolumeShift) for d in a)

    def test_fault_schedule_translation(self):
        from repro.faults.events import PopOutage
        from repro.faults.schedule import FaultSchedule

        schedule = FaultSchedule(
            [PopOutage(start_s=10.0, pop_name="pop-x", duration_s=5.0)]
        )
        deltas = deltas_from_fault_schedule(schedule)
        downs = [d for d in deltas if isinstance(d, PopDown)]
        ups = [d for d in deltas if isinstance(d, PopUp)]
        assert len(downs) == len(ups) == 1
        assert downs[0].at_s < ups[0].at_s
        assert downs[0].pop_name == ups[0].pop_name == "pop-x"


# ---------------------------------------------------------------------------
# checkpoint store
# ---------------------------------------------------------------------------


class TestCheckpointStore:
    def test_save_load_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        payload = {"cursor": 3, "journal_seq": 17, "nested": {"a": [1, 2]}}
        path = store.save(4, payload)
        loaded = store.load(path)
        assert loaded == Checkpoint(seq=4, payload=payload, path=path)

    def test_latest_returns_newest(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=10)
        for seq in range(5):
            store.save(seq, {"seq": seq})
        assert store.latest().seq == 4

    def test_latest_skips_corrupt_files(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=10)
        store.save(0, {"good": True})
        good = store.save(1, {"good": True})
        # Corrupt the newest file: flip a payload byte so the hash fails.
        newest = store.save(2, {"good": False})
        newest.write_text(newest.read_text().replace("false", "true "))
        latest = store.latest()
        assert latest.seq == 1
        assert latest.path == good

    def test_latest_none_when_everything_corrupt(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(0, {"x": 1}).write_text("not json")
        assert store.latest() is None

    def test_prune_keeps_newest_k(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=2)
        for seq in range(5):
            store.save(seq, {})
        names = [p.name for p in store.list_paths()]
        assert names == ["checkpoint-00000003.json", "checkpoint-00000004.json"]

    def test_load_rejects_foreign_and_versioned_files(self, tmp_path):
        store = CheckpointStore(tmp_path)
        path = store.save(0, {"x": 1})
        with pytest.raises(CheckpointError):
            store.load(tmp_path / "missing.json")
        foreign = tmp_path / "checkpoint-00000009.json"
        foreign.write_text(json.dumps({"kind": "other", "seq": 9}))
        with pytest.raises(CheckpointError):
            store.load(foreign)
        bumped = json.loads(path.read_text())
        bumped["version"] = 999
        path.write_text(json.dumps(bumped))
        with pytest.raises(CheckpointError):
            store.load(path)

    def test_keep_validation(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointStore(tmp_path, keep=0)


# ---------------------------------------------------------------------------
# durable journal
# ---------------------------------------------------------------------------


class TestDurableJournal:
    def test_start_sync_resume_round_trip(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = DurableJournal(path, run_name="test").start()
        journal.event("alpha", n=1)
        journal.event("beta", n=2)
        journal.sync()
        durable_seq = journal.last_seq
        journal.close()

        resumed = DurableJournal.resume(path, durable_seq)
        try:
            assert resumed.last_seq == durable_seq
            events = [r["event"] for r in resumed.journal.records]
            assert events == ["alpha", "beta"]
        finally:
            resumed.close()

    def test_resume_drops_torn_tail(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = DurableJournal(path).start()
        journal.event("alpha", n=1)
        journal.sync()
        durable_seq = journal.last_seq
        journal.event("beta", n=2)
        journal.tear()  # half of "beta" reaches the disk
        journal._fh.close()
        journal._fh = None

        resumed = DurableJournal.resume(path, durable_seq)
        try:
            assert [r["event"] for r in resumed.journal.records] == ["alpha"]
            # Appending after recovery continues the sequence seamlessly.
            resumed.event("gamma")
            resumed.sync()
        finally:
            resumed.close()
        lines = path.read_text().splitlines()
        records = [json.loads(line) for line in lines[1:]]
        assert [r["event"] for r in records] == ["alpha", "gamma"]
        assert [r["seq"] for r in records] == [0, 1]

    def test_resume_truncates_past_checkpointed_seq(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = DurableJournal(path).start()
        for name in ("alpha", "beta", "gamma"):
            journal.event(name)
        journal.sync()
        journal.close()

        # Pretend the checkpoint only vouches for seq 0: the durable-but-
        # unvouched-for tail is re-run, not replayed.
        resumed = DurableJournal.resume(path, 0)
        try:
            assert [r["event"] for r in resumed.journal.records] == ["alpha"]
        finally:
            resumed.close()

    def test_resume_rejects_missing_or_headerless_file(self, tmp_path):
        with pytest.raises(CheckpointError):
            DurableJournal.resume(tmp_path / "none.jsonl", 0)
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"kind":"event"}\n')
        with pytest.raises(CheckpointError):
            DurableJournal.resume(bad, 0)

    def test_event_before_start_raises(self, tmp_path):
        journal = DurableJournal(tmp_path / "j.jsonl")
        journal.event("x")  # recording is fine; persistence is not
        with pytest.raises(RuntimeError):
            journal.sync()


# ---------------------------------------------------------------------------
# the daemon loop
# ---------------------------------------------------------------------------


def run_controller(tmp_path, subdir="run", deltas=None, scenario=None, **cfg):
    scenario = scenario if scenario is not None else tiny_scenario(seed=3)
    if deltas is None:
        deltas = synthetic_deltas(scenario, iterations=4, seed=7)
    controller = PainterController(
        scenario,
        OrchestratorConfig(prefix_budget=4),
        ControllerConfig(checkpoint_dir=tmp_path / subdir, **cfg),
        deltas,
    )
    try:
        return controller.run(), controller
    finally:
        controller.close()


def journal_events(path):
    lines = path.read_text().splitlines()
    return [json.loads(line) for line in lines[1:]]


class TestControllerLoop:
    def test_full_run_shape(self, tmp_path):
        result, _ = run_controller(tmp_path, verify_every=2)
        # iteration 0 bootstraps, then one iteration per delta bucket
        assert result.iterations_run == 5
        assert result.final_config is not None
        assert result.deltas_applied > 0
        assert result.degradations == 0
        assert result.divergences == 0
        assert [e["iteration"] for e in result.timeline] == [0, 1, 2, 3, 4]
        assert result.timeline[0]["mode"] == "cold"
        assert all(e["mode"] == "warm" for e in result.timeline[1:])

        events = journal_events(result.journal_path)
        kinds = [e["event"] for e in events]
        assert kinds[0] == "controller_start"
        assert kinds.count("controller_checkpoint") == 5
        assert kinds.count("controller_iteration") == 5
        assert "delta_applied" in kinds

    def test_stop_and_resume_matches_uninterrupted(self, tmp_path):
        reference, _ = run_controller(tmp_path, "ref")
        run_controller(tmp_path, "stopped", max_iterations=2)
        resumed, _ = run_controller(tmp_path, "stopped")
        assert resumed.resumed_from == 1
        assert resumed.final_config == reference.final_config
        assert (tmp_path / "ref" / "journal.jsonl").read_bytes() == (
            tmp_path / "stopped" / "journal.jsonl"
        ).read_bytes()

    def test_resume_of_finished_run_is_idempotent(self, tmp_path):
        first, _ = run_controller(tmp_path, "done")
        before = (tmp_path / "done" / "journal.jsonl").read_bytes()
        again, _ = run_controller(tmp_path, "done")
        assert again.iterations_run == 0
        assert again.resumed_from == first.iterations_run - 1
        assert again.final_config == first.final_config
        assert (tmp_path / "done" / "journal.jsonl").read_bytes() == before

    def test_warm_start_disabled_is_all_cold_and_same_config(self, tmp_path):
        warm, _ = run_controller(tmp_path, "warm")
        cold, _ = run_controller(tmp_path, "cold", warm_start=False)
        assert all(e["mode"] == "cold" for e in cold.timeline)
        assert all(e["reused_evals"] == 0 for e in cold.timeline)
        assert cold.final_config == warm.final_config

    def test_divergence_trips_breaker(self, tmp_path, monkeypatch):
        scenario = tiny_scenario(seed=3)
        deltas = synthetic_deltas(scenario, iterations=4, seed=7)
        controller = PainterController(
            scenario,
            OrchestratorConfig(prefix_budget=4),
            ControllerConfig(
                checkpoint_dir=tmp_path / "breaker",
                verify_every=1,
                breaker_cooldown=2,
            ),
            deltas,
        )
        orch = controller.orchestrator
        real_solve_warm = orch.solve_warm

        def tampered_solve_warm(*args, **kwargs):
            config = real_solve_warm(*args, **kwargs)
            if orch.last_warm_stats.mode == "warm":
                # Drop one accepted pair: still plausible, provably wrong.
                prefix = config.prefixes[0]
                pid = sorted(config.peerings_for(prefix))[0]
                config.remove(prefix, pid)
            return config

        monkeypatch.setattr(orch, "solve_warm", tampered_solve_warm)
        try:
            result = controller.run()
        finally:
            controller.close()
        assert result.divergences >= 1
        kinds = [e["event"] for e in journal_events(result.journal_path)]
        assert "controller_breaker_open" in kinds
        # Breaker iterations run cold (and therefore verify clean).
        modes = [e["mode"] for e in result.timeline]
        assert "cold" in modes[1:]
        # The diverged iteration still installed the *trusted* cold config.
        assert result.final_config is not None

    def test_solve_failure_degrades_to_last_known_good(
        self, tmp_path, monkeypatch
    ):
        scenario = tiny_scenario(seed=3)
        deltas = synthetic_deltas(scenario, iterations=3, seed=7)
        controller = PainterController(
            scenario,
            OrchestratorConfig(prefix_budget=4),
            ControllerConfig(
                checkpoint_dir=tmp_path / "degrade",
                max_retries=1,
                backoff_s=0.0,
            ),
            deltas,
        )
        orch = controller.orchestrator
        real_solve_warm = orch.solve_warm
        calls = {"n": 0}

        def flaky_solve_warm(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] > 1:  # bootstrap succeeds, then every solve fails
                raise RuntimeError("solver down")
            return real_solve_warm(*args, **kwargs)

        monkeypatch.setattr(orch, "solve_warm", flaky_solve_warm)
        try:
            result = controller.run()
        finally:
            controller.close()
        assert result.degradations == len(result.timeline) - 1
        assert all(e["mode"] == "degraded" for e in result.timeline[1:])
        # The loop held the bootstrap config rather than crashing.
        assert result.final_config == result.last_known_good
        kinds = [e["event"] for e in journal_events(result.journal_path)]
        assert "controller_degraded" in kinds
        # retries: each failing iteration tried max_retries + 1 times
        assert calls["n"] == 1 + 2 * (len(result.timeline) - 1)

    def test_failure_with_no_fallback_raises(self, tmp_path, monkeypatch):
        scenario = tiny_scenario(seed=3)
        controller = PainterController(
            scenario,
            OrchestratorConfig(prefix_budget=4),
            ControllerConfig(
                checkpoint_dir=tmp_path / "nofall",
                max_retries=0,
                backoff_s=0.0,
            ),
            synthetic_deltas(scenario, iterations=2, seed=7),
        )

        def boom(*args, **kwargs):
            raise RuntimeError("solver down")

        monkeypatch.setattr(controller.orchestrator, "solve_warm", boom)
        try:
            with pytest.raises(ControllerError):
                controller.run()
        finally:
            controller.close()

    def test_config_validation(self, tmp_path):
        with pytest.raises(ValueError):
            ControllerConfig(checkpoint_dir=tmp_path, checkpoint_keep=0)
        with pytest.raises(ValueError):
            ControllerConfig(checkpoint_dir=tmp_path, verify_every=-1)
        with pytest.raises(ValueError):
            ControllerConfig(checkpoint_dir=tmp_path, backoff_factor=0.5)
        with pytest.raises(ValueError):
            ControllerConfig(checkpoint_dir=tmp_path, crash_point="nope")

    def test_journal_path_defaults_into_checkpoint_dir(self, tmp_path):
        cfg = ControllerConfig(checkpoint_dir=tmp_path / "cp")
        assert cfg.resolved_journal_path == tmp_path / "cp" / "journal.jsonl"
        custom = ControllerConfig(
            checkpoint_dir=tmp_path / "cp", journal_path=tmp_path / "j.jsonl"
        )
        assert custom.resolved_journal_path == tmp_path / "j.jsonl"


class TestWatchdog:
    def test_watchdog_interrupts_a_stuck_block(self):
        with pytest.raises(IterationTimeout):
            with _watchdog(0.05):
                time.sleep(5.0)

    def test_watchdog_noop_without_limit(self):
        with _watchdog(None):
            pass
        with _watchdog(0):
            pass
