"""The routing model: candidate prediction, D_reuse, preference learning."""

import pytest

from repro.core.routing_model import DEFAULT_D_REUSE_KM, RoutingModel


@pytest.fixture()
def model(scenario):
    return RoutingModel(scenario.catalog, d_reuse_km=DEFAULT_D_REUSE_KM)


def _compliant_sample(scenario, ug, k=6):
    return sorted(scenario.catalog.ingress_ids(ug))[:k]


class TestCandidatePrediction:
    def test_candidates_subset_of_advertised_and_compliant(self, scenario, model):
        for ug in scenario.user_groups[:20]:
            advertised = frozenset(_compliant_sample(scenario, ug))
            candidates = model.candidate_ingresses(ug, advertised)
            assert candidates <= advertised
            assert candidates <= scenario.catalog.ingress_ids(ug)
            assert candidates  # advertised set was compliant, so non-empty

    def test_empty_when_nothing_compliant(self, scenario, model):
        for ug in scenario.user_groups:
            non_compliant = [
                p.peering_id
                for p in scenario.deployment.peerings
                if p.peering_id not in scenario.catalog.ingress_ids(ug)
            ]
            if non_compliant:
                assert (
                    model.candidate_ingresses(ug, frozenset(non_compliant[:4]))
                    == frozenset()
                )
                return
        pytest.skip("all peerings compliant for all UGs in this seed")

    def test_d_reuse_excludes_far_ingresses(self, scenario):
        """With a small D_reuse, only near-closest candidates survive."""
        tight = RoutingModel(scenario.catalog, d_reuse_km=1.0)
        loose = RoutingModel(scenario.catalog, d_reuse_km=1e9)
        for ug in scenario.user_groups[:20]:
            advertised = frozenset(scenario.catalog.ingress_ids(ug))
            tight_candidates = tight.candidate_ingresses(ug, advertised)
            loose_candidates = loose.candidate_ingresses(ug, advertised)
            assert tight_candidates <= loose_candidates
            assert loose_candidates == advertised

    def test_negative_d_reuse_rejected(self, scenario):
        with pytest.raises(ValueError):
            RoutingModel(scenario.catalog, d_reuse_km=-5)


class TestExpectedLatency:
    def test_mean_over_candidates(self, scenario, model):
        ug = scenario.user_groups[0]
        advertised = frozenset(_compliant_sample(scenario, ug, k=4))
        candidates = model.candidate_ingresses(ug, advertised)
        latencies = {
            pid: scenario.latency_model.latency_ms(ug, scenario.deployment.peering(pid))
            for pid in candidates
        }
        expected = model.expected_latency_ms(
            ug, advertised, lambda u, pid: latencies.get(pid)
        )
        assert expected == pytest.approx(sum(latencies.values()) / len(latencies))

    def test_unmeasurable_ingresses_skipped(self, scenario, model):
        ug = scenario.user_groups[0]
        advertised = frozenset(_compliant_sample(scenario, ug, k=4))
        candidates = sorted(model.candidate_ingresses(ug, advertised))
        keep = candidates[0]
        expected = model.expected_latency_ms(
            ug, advertised, lambda u, pid: 10.0 if pid == keep else None
        )
        assert expected == pytest.approx(10.0)

    def test_none_when_nothing_measurable(self, scenario, model):
        ug = scenario.user_groups[0]
        advertised = frozenset(_compliant_sample(scenario, ug, k=4))
        assert model.expected_latency_ms(ug, advertised, lambda u, pid: None) is None


class TestLearning:
    def test_observation_requires_advertised_peering(self, scenario, model):
        ug = scenario.user_groups[0]
        advertised = frozenset(_compliant_sample(scenario, ug, k=3))
        with pytest.raises(ValueError):
            model.observe(ug, advertised, actual_peering_id=10_000)

    def test_observation_creates_preferences(self, scenario, model):
        ug = scenario.user_groups[0]
        advertised = frozenset(_compliant_sample(scenario, ug, k=4))
        winner = sorted(advertised)[0]
        learned = model.observe(ug, advertised, winner)
        assert learned == len(advertised) - 1
        assert model.preference_count(ug) == learned
        assert model.observation_count == 1

    def test_losers_excluded_when_winner_present(self, scenario, model):
        ug = scenario.user_groups[0]
        advertised = frozenset(_compliant_sample(scenario, ug, k=4))
        winner = sorted(advertised)[-1]
        model.observe(ug, advertised, winner)
        candidates = model.candidate_ingresses(ug, advertised)
        assert candidates == frozenset({winner})

    def test_winner_survives_d_reuse(self, scenario):
        """An observed far-away winner must remain a candidate (the
        Miami-routed-through-Tokyo lesson)."""
        model = RoutingModel(scenario.catalog, d_reuse_km=1.0)
        ug = scenario.user_groups[0]
        advertised = frozenset(scenario.catalog.ingress_ids(ug))
        # Pick the farthest compliant ingress as the observed winner.
        from repro.topology.geo import haversine_km

        winner = max(
            advertised,
            key=lambda pid: haversine_km(
                ug.location, scenario.deployment.peering(pid).pop.location
            ),
        )
        model.observe(ug, advertised, winner)
        assert winner in model.candidate_ingresses(ug, advertised)

    def test_contradiction_replaced_by_newer_observation(self, scenario, model):
        ug = scenario.user_groups[0]
        advertised = frozenset(_compliant_sample(scenario, ug, k=3))
        first, second = sorted(advertised)[:2]
        model.observe(ug, advertised, first)
        model.observe(ug, advertised, second)
        candidates = model.candidate_ingresses(ug, advertised)
        assert second in candidates
        assert first not in candidates

    def test_preferences_scoped_to_advertised_set(self, scenario, model):
        """A loser is only excluded when its winner is co-advertised."""
        ug = scenario.user_groups[0]
        sample = _compliant_sample(scenario, ug, k=4)
        advertised = frozenset(sample)
        winner = sample[0]
        loser = sample[1]
        model.observe(ug, advertised, winner)
        without_winner = frozenset(sample[1:])
        candidates = model.candidate_ingresses(ug, without_winner)
        assert loser in candidates

    def test_is_excluded_by_preference(self, scenario, model):
        ug = scenario.user_groups[0]
        sample = _compliant_sample(scenario, ug, k=3)
        advertised = frozenset(sample)
        model.observe(ug, advertised, sample[0])
        assert model.is_excluded_by_preference(ug, sample[1], advertised)
        assert not model.is_excluded_by_preference(ug, sample[0], advertised)

    def test_snapshot_preferences(self, scenario, model):
        ug = scenario.user_groups[0]
        advertised = frozenset(_compliant_sample(scenario, ug, k=3))
        model.observe(ug, advertised, sorted(advertised)[0])
        snapshot = model.snapshot_preferences()
        assert snapshot["version"] == 2
        assert ug.ug_id in snapshot["preferences"]
        assert len(snapshot["preferences"][ug.ug_id]) == model.preference_count(ug)
        assert snapshot["observation_count"] == 1
        assert snapshot["outcomes"]  # probability-1 memory carried along


class TestStaleObservations:
    def test_stale_never_overwrites_outcome_memory(self, scenario, model):
        ug = scenario.user_groups[0]
        advertised = frozenset(_compliant_sample(scenario, ug, k=3))
        first, second = sorted(advertised)[:2]
        model.observe(ug, advertised, first)
        model.observe(ug, advertised, second, stale=True)
        # The fresh probability-1 outcome still stands.
        assert model.candidate_ingresses(ug, advertised) == frozenset({first})
        assert model.stale_observation_count == 1
        assert model.observation_count == 1

    def test_stale_never_evicts_fresher_pair(self, scenario, model):
        ug = scenario.user_groups[0]
        advertised = frozenset(_compliant_sample(scenario, ug, k=3))
        first, second = sorted(advertised)[:2]
        model.observe(ug, advertised, first)
        before = model.snapshot_preferences()["preferences"][ug.ug_id]
        learned = model.observe(ug, advertised, second, stale=True)
        after = model.snapshot_preferences()["preferences"][ug.ug_id]
        # Every fresh pair survives; the stale winner only adds pairs that
        # no fresh (or reversed) pair already disputes.
        assert set(before) <= set(after)
        assert (first, second) in after
        assert (second, first) not in after
        assert learned == len(after) - len(before)

    def test_stale_alone_still_informs_an_empty_model(self, scenario, model):
        ug = scenario.user_groups[0]
        advertised = frozenset(_compliant_sample(scenario, ug, k=3))
        winner = sorted(advertised)[0]
        learned = model.observe(ug, advertised, winner, stale=True)
        assert learned == len(scenario.catalog.compliant_subset(ug, advertised)) - 1
        assert model.observation_count == 0
        assert model.stale_observation_count == 1


class TestSnapshotRoundTrip:
    """The versioned snapshot must carry the full learned state (§5.1.3)."""

    def _trained_model(self, scenario):
        model = RoutingModel(scenario.catalog)
        for ug in scenario.user_groups[:10]:
            ids = sorted(scenario.catalog.ingress_ids(ug))
            model.observe(ug, frozenset(ids[:4]), ids[1])
            model.observe(ug, frozenset(ids[:3]), ids[0], stale=True)
        return model

    def test_round_trip_preserves_candidate_ingresses(self, scenario):
        """The headline §5.1.3 property: predictions survive persistence,
        including the probability-1 outcome memory the old snapshot lost."""
        model = self._trained_model(scenario)
        fresh = RoutingModel(scenario.catalog)
        fresh.restore_preferences(model.snapshot_preferences())
        for ug in scenario.user_groups[:20]:
            ids = sorted(scenario.catalog.ingress_ids(ug))
            for advertised in (frozenset(ids[:4]), frozenset(ids[:3]), frozenset(ids)):
                assert fresh.candidate_ingresses(ug, advertised) == (
                    model.candidate_ingresses(ug, advertised)
                ), (ug.ug_id, advertised)

    def test_round_trip_preserves_counters_and_outcomes(self, scenario):
        model = self._trained_model(scenario)
        fresh = RoutingModel(scenario.catalog)
        fresh.restore_preferences(model.snapshot_preferences())
        assert fresh.observation_count == model.observation_count
        assert fresh.stale_observation_count == model.stale_observation_count
        assert fresh.snapshot_preferences() == model.snapshot_preferences()

    def test_outcome_memory_survives_where_old_format_lost_it(self, scenario):
        """A restored model keeps the probability-1 prediction; the legacy
        preferences-only snapshot degrades it to a preference-based one."""
        model = RoutingModel(scenario.catalog)
        ug = scenario.user_groups[0]
        ids = sorted(scenario.catalog.ingress_ids(ug))
        advertised = frozenset(ids[:4])
        winner = ids[2]
        model.observe(ug, advertised, winner)
        assert model.candidate_ingresses(ug, advertised) == frozenset({winner})

        restored = RoutingModel(scenario.catalog)
        restored.restore_preferences(model.snapshot_preferences())
        assert restored.candidate_ingresses(ug, advertised) == frozenset({winner})

    def test_legacy_snapshot_still_accepted(self, scenario):
        model = self._trained_model(scenario)
        legacy = model.snapshot_preferences()["preferences"]  # old bare shape
        fresh = RoutingModel(scenario.catalog)
        fresh.restore_preferences(legacy)
        assert fresh.preference_count() == model.preference_count()
        assert fresh.observation_count == 0  # legacy snapshots never had it
        assert fresh.snapshot_preferences()["outcomes"] == {}

    def test_unsupported_version_rejected(self, scenario):
        fresh = RoutingModel(scenario.catalog)
        with pytest.raises(ValueError):
            fresh.restore_preferences({"version": 99, "preferences": {}})


class TestCandidateMemoization:
    """candidate_ingresses memoizes per (UG, compliant set) and observe()
    invalidates exactly the observed UG's entries."""

    def test_memo_returns_identical_results(self, scenario, model):
        for ug in scenario.user_groups[:10]:
            advertised = frozenset(_compliant_sample(scenario, ug, k=5))
            first = model.candidate_ingresses(ug, advertised)
            second = model.candidate_ingresses(ug, advertised)
            assert first == second
            assert second is model.candidate_ingresses(ug, advertised)  # cached object

    def test_observe_invalidates_memoized_candidates(self, scenario, model):
        # Pick a UG whose pruned candidate set has several members, so the
        # observation visibly collapses it.
        for ug in scenario.user_groups:
            advertised = frozenset(_compliant_sample(scenario, ug, k=4))
            before = model.candidate_ingresses(ug, advertised)
            if len(before) > 1:
                break
        assert len(before) > 1  # uniform assumption: several candidates
        winner = sorted(before)[-1]
        epoch_before = model.ug_epoch(ug.ug_id)
        model.observe(ug, advertised, winner)
        assert model.ug_epoch(ug.ug_id) > epoch_before
        after = model.candidate_ingresses(ug, advertised)
        assert after == frozenset({winner})  # not the stale cached set

    def test_observe_leaves_other_ugs_cached(self, scenario, model):
        ug_a, ug_b = scenario.user_groups[0], scenario.user_groups[1]
        adv_b = frozenset(_compliant_sample(scenario, ug_b, k=4))
        cached_b = model.candidate_ingresses(ug_b, adv_b)
        epoch_b = model.ug_epoch(ug_b.ug_id)
        adv_a = frozenset(_compliant_sample(scenario, ug_a, k=4))
        model.observe(ug_a, adv_a, sorted(adv_a)[0])
        assert model.ug_epoch(ug_b.ug_id) == epoch_b
        assert model.candidate_ingresses(ug_b, adv_b) is cached_b

    def test_restore_invalidates_every_ug(self, scenario, model):
        ug = scenario.user_groups[0]
        advertised = frozenset(_compliant_sample(scenario, ug, k=4))
        model.candidate_ingresses(ug, advertised)
        epoch = model.ug_epoch(ug.ug_id)
        model.restore_preferences({"version": 2, "preferences": {}, "outcomes": {}})
        assert model.ug_epoch(ug.ug_id) > epoch
