"""Shared utilities: stable RNG and percentiles."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.util import percentile, stable_rng


class TestStableRng:
    def test_same_key_same_stream(self):
        a = stable_rng(1, "x", 2.5)
        b = stable_rng(1, "x", 2.5)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_keys_differ(self):
        assert stable_rng(1, "x").random() != stable_rng(1, "y").random()

    def test_order_matters(self):
        assert stable_rng("a", "b").random() != stable_rng("b", "a").random()


class TestPercentile:
    def test_median_odd(self):
        assert percentile([1, 2, 3], 0.5) == 2.0

    def test_median_even_interpolates(self):
        assert percentile([1, 2, 3, 4], 0.5) == pytest.approx(2.5)

    def test_extremes(self):
        values = [5, 7, 9]
        assert percentile(values, 0.0) == 5.0
        assert percentile(values, 1.0) == 9.0

    def test_single_value(self):
        assert percentile([42], 0.3) == 42.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_out_of_range_fraction(self):
        with pytest.raises(ValueError):
            percentile([1], 1.5)

    @given(
        st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=40),
        st.floats(min_value=0, max_value=1),
    )
    @settings(max_examples=60, deadline=None)
    def test_within_bounds_and_monotone(self, values, fraction):
        ordered = sorted(values)
        result = percentile(ordered, fraction)
        span = max(1.0, abs(ordered[0]), abs(ordered[-1]))
        assert ordered[0] - 1e-9 * span <= result <= ordered[-1] + 1e-9 * span
        if fraction <= 0.5:
            assert percentile(ordered, fraction) <= percentile(ordered, 0.5) + 1e-9
