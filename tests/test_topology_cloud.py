"""Cloud deployment: PoPs, peerings, prefix pool."""

import pytest

from repro.topology.asn import Relationship
from repro.topology.cloud import CloudDeployment, PrefixPool
from repro.topology.geo import metro_by_name


@pytest.fixture()
def deployment():
    d = CloudDeployment(name="test")
    pop_a = d.add_pop("pop-a", metro_by_name("new-york"))
    pop_b = d.add_pop("pop-b", metro_by_name("tokyo"))
    d.add_peering(pop_a, 100, Relationship.PROVIDER)
    d.add_peering(pop_a, 200, Relationship.PEER)
    d.add_peering(pop_b, 100, Relationship.PROVIDER)
    return d


class TestDeployment:
    def test_counts(self, deployment):
        assert len(deployment) == 3
        assert len(deployment.pops) == 2
        assert deployment.peer_asns() == [100, 200]

    def test_duplicate_pop_rejected(self, deployment):
        with pytest.raises(ValueError):
            deployment.add_pop("pop-a", metro_by_name("london"))

    def test_duplicate_peering_rejected(self, deployment):
        with pytest.raises(ValueError):
            deployment.add_peering(deployment.pop("pop-a"), 100, Relationship.PEER)

    def test_customer_relationship_rejected(self, deployment):
        with pytest.raises(ValueError):
            deployment.add_peering(
                deployment.pop("pop-b"), 300, Relationship.CUSTOMER
            )

    def test_peering_to_foreign_pop_rejected(self, deployment):
        other = CloudDeployment(name="other")
        foreign = other.add_pop("pop-x", metro_by_name("paris"))
        with pytest.raises(ValueError):
            deployment.add_peering(foreign, 300, Relationship.PEER)

    def test_peerings_at(self, deployment):
        at_a = deployment.peerings_at(deployment.pop("pop-a"))
        assert {p.peer_asn for p in at_a} == {100, 200}

    def test_peerings_with(self, deployment):
        with_100 = deployment.peerings_with(100)
        assert {p.pop.name for p in with_100} == {"pop-a", "pop-b"}

    def test_transit_peerings(self, deployment):
        transit = deployment.transit_peerings()
        assert all(p.is_transit for p in transit)
        assert len(transit) == 2

    def test_direct_peering_lookup(self, deployment):
        assert deployment.has_direct_peering_with(200)
        assert not deployment.has_direct_peering_with(999)

    def test_peering_ids_unique_and_resolvable(self, deployment):
        ids = [p.peering_id for p in deployment]
        assert len(ids) == len(set(ids))
        for pid in ids:
            assert deployment.peering(pid).peering_id == pid
        with pytest.raises(KeyError):
            deployment.peering(10_000)

    def test_unknown_pop_raises(self, deployment):
        with pytest.raises(KeyError):
            deployment.pop("nowhere")

    def test_nearest_pop(self, deployment):
        osaka = metro_by_name("osaka").location
        assert deployment.nearest_pop(osaka).name == "pop-b"

    def test_nearest_pop_empty_raises(self):
        with pytest.raises(ValueError):
            CloudDeployment().nearest_pop(metro_by_name("paris").location)

    def test_pops_within_km(self, deployment):
        ny = metro_by_name("new-york").location
        assert [p.name for p in deployment.pops_within_km(ny, 100)] == ["pop-a"]

    def test_describe_mentions_counts(self, deployment):
        text = deployment.describe()
        assert "2 PoPs" in text and "3 peerings" in text

    def test_pop_distance(self, deployment):
        a, b = deployment.pop("pop-a"), deployment.pop("pop-b")
        assert a.distance_km(b) > 9000  # NYC-Tokyo


class TestPrefixPool:
    def test_allocates_distinct_slash24s(self):
        pool = PrefixPool("10.0.0.0/22")
        prefixes = [pool.allocate() for _ in range(4)]
        assert len(set(prefixes)) == 4
        assert all(p.endswith("/24") for p in prefixes)

    def test_capacity_enforced(self):
        pool = PrefixPool("10.0.0.0/23")
        assert pool.capacity == 2
        pool.allocate()
        pool.allocate()
        with pytest.raises(RuntimeError):
            pool.allocate()

    def test_reset(self):
        pool = PrefixPool("10.0.0.0/23")
        first = pool.allocate()
        pool.reset()
        assert pool.allocate() == first
        assert pool.allocated == 1

    def test_supernet_smaller_than_24_rejected(self):
        with pytest.raises(ValueError):
            PrefixPool("10.0.0.0/30")
