"""Enterprise model, builder, workload, and SLO analysis."""

import pytest

from repro.core.orchestrator import PainterOrchestrator
from repro.enterprise.builder import EnterpriseConfig, build_enterprise
from repro.enterprise.model import (
    Enterprise,
    STANDARD_SERVICES,
    ServiceProfile,
    Site,
    SiteKind,
)
from repro.enterprise.slo import analyze_slos, summarize_slos
from repro.enterprise.workload import (
    diurnal_intensity,
    flows_by_service,
    generate_workload,
    peak_concurrent_demand_mbps,
)


@pytest.fixture(scope="module")
def world():
    from repro.scenario import tiny_scenario

    return tiny_scenario(seed=3)


@pytest.fixture(scope="module")
def enterprise(world):
    return build_enterprise(world, EnterpriseConfig(seed=1, n_branches=3))


class TestModel:
    def test_service_validation(self):
        with pytest.raises(ValueError):
            ServiceProfile(name="x", latency_slo_ms=0, bandwidth_mbps=1)
        with pytest.raises(ValueError):
            ServiceProfile(name="x", latency_slo_ms=10, bandwidth_mbps=-1)
        with pytest.raises(ValueError):
            ServiceProfile(name="x", latency_slo_ms=10, bandwidth_mbps=1, loss_slo=1.0)

    def test_standard_services_include_ar(self):
        ar = next(s for s in STANDARD_SERVICES if s.name == "ar-offload")
        assert ar.latency_slo_ms == 10.0  # the paper's AR requirement
        assert ar.bandwidth_mbps == 20.0
        assert ar.loss_slo == 1e-5

    def test_duplicate_site_rejected(self, world):
        enterprise = Enterprise(name="e")
        ug = world.user_groups[0]
        enterprise.add_site(Site(name="a", kind=SiteKind.HEADQUARTERS, user_group=ug, headcount=10))
        with pytest.raises(ValueError):
            enterprise.add_site(Site(name="a", kind=SiteKind.BRANCH_OFFICE, user_group=ug, headcount=5))

    def test_site_lookup(self, enterprise):
        assert enterprise.site("hq").kind is SiteKind.HEADQUARTERS
        with pytest.raises(KeyError):
            enterprise.site("nowhere")
        assert enterprise.service("teleconferencing").traffic_share > 0
        with pytest.raises(KeyError):
            enterprise.service("nothing")


class TestBuilder:
    def test_structure(self, enterprise):
        kinds = [site.kind for site in enterprise.sites]
        assert kinds.count(SiteKind.HEADQUARTERS) == 1
        assert kinds.count(SiteKind.BRANCH_OFFICE) == 3
        assert kinds.count(SiteKind.REMOTE_EMPLOYEES) == 1

    def test_remote_site_unmanaged(self, enterprise):
        assert not enterprise.site("remote").has_edge_stack
        assert enterprise.steerable_fraction() < 1.0

    def test_sites_in_distinct_ugs(self, enterprise):
        ug_ids = [site.user_group.ug_id for site in enterprise.sites]
        assert len(ug_ids) == len(set(ug_ids))

    def test_deterministic(self, world):
        a = build_enterprise(world, EnterpriseConfig(seed=7))
        b = build_enterprise(world, EnterpriseConfig(seed=7))
        assert [s.user_group.ug_id for s in a.sites] == [
            s.user_group.ug_id for s in b.sites
        ]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            EnterpriseConfig(n_branches=-1)
        with pytest.raises(ValueError):
            EnterpriseConfig(unmanaged_site_prob=2.0)


class TestWorkload:
    def test_diurnal_shape(self):
        assert diurnal_intensity(14 * 3600.0) == pytest.approx(1.0)
        assert diurnal_intensity(2 * 3600.0) < 0.3
        for hour in range(24):
            assert 0.05 <= diurnal_intensity(hour * 3600.0) <= 1.0

    def test_flows_cover_sites_and_services(self, enterprise):
        flows = generate_workload(enterprise, duration_s=3600.0, seed=3)
        sites = {flow.site_name for flow in flows}
        assert sites == {site.name for site in enterprise.sites}
        counts = flows_by_service(flows)
        # High-share services appear more often than low-share ones.
        assert counts.get("teleconferencing", 0) > counts.get("ar-offload", 0)

    def test_flows_within_window(self, enterprise):
        flows = generate_workload(enterprise, duration_s=600.0, start_s=1000.0, seed=3)
        for flow in flows:
            assert 1000.0 <= flow.start_s <= 1600.0
            assert flow.duration_s > 0

    def test_flows_sorted_and_deterministic(self, enterprise):
        a = generate_workload(enterprise, seed=4)
        b = generate_workload(enterprise, seed=4)
        assert [f.five_tuple for f in a] == [f.five_tuple for f in b]
        starts = [f.start_s for f in a]
        assert starts == sorted(starts)

    def test_peak_demand_positive(self, enterprise):
        flows = generate_workload(enterprise, seed=3)
        peak = peak_concurrent_demand_mbps(flows)
        assert peak > 0
        assert peak <= sum(f.bandwidth_mbps for f in flows)

    def test_invalid_duration(self, enterprise):
        with pytest.raises(ValueError):
            generate_workload(enterprise, duration_s=0.0)


class TestSlo:
    @pytest.fixture(scope="class")
    def outcomes(self, world, enterprise):
        orchestrator = PainterOrchestrator(world, prefix_budget=4)
        orchestrator.learn(iterations=2)
        config = orchestrator.solve()
        return analyze_slos(world, enterprise, config)

    def test_rows_cover_all_pairs(self, enterprise, outcomes):
        assert len(outcomes) == len(enterprise.sites) * len(enterprise.services)

    def test_painter_never_worse(self, outcomes):
        for outcome in outcomes:
            assert outcome.painter_latency_ms <= outcome.anycast_latency_ms + 1e-9
            if outcome.met_under_anycast:
                assert outcome.met_under_painter

    def test_unmanaged_sites_get_no_improvement(self, outcomes):
        for outcome in outcomes:
            if not outcome.steerable:
                assert outcome.improvement_ms == 0.0

    def test_summary_weighted(self, enterprise, outcomes):
        summary = summarize_slos(enterprise, outcomes)
        assert 0.0 <= summary.anycast_met_fraction <= 1.0
        assert summary.painter_met_fraction >= summary.anycast_met_fraction
        assert summary.mean_improvement_ms >= 0.0

    def test_empty_summary_rejected(self, enterprise):
        with pytest.raises(ValueError):
            summarize_slos(enterprise, [])
