"""Serialization round-trips and the command-line interface."""

import json

import pytest

from repro.core.advertisement import AdvertisementConfig
from repro.core.orchestrator import OrchestratorConfig, PainterOrchestrator
from repro.experiments.harness import ExperimentResult
from repro.io import (
    SerializationError,
    config_from_dict,
    config_to_dict,
    experiment_result_from_dict,
    experiment_result_to_dict,
    learning_result_from_dict,
    learning_result_to_dict,
    load_config,
    save_config,
)


class TestConfigSerialization:
    def test_roundtrip(self, tmp_path):
        config = AdvertisementConfig.from_pairs([(0, 1), (0, 2), (3, 9)])
        path = tmp_path / "config.json"
        save_config(config, path)
        assert load_config(path) == config

    def test_empty_config_roundtrip(self):
        config = AdvertisementConfig()
        assert config_from_dict(config_to_dict(config)) == config

    def test_json_is_plain(self, tmp_path):
        config = AdvertisementConfig.from_pairs([(0, 1)])
        path = tmp_path / "config.json"
        save_config(config, path)
        document = json.loads(path.read_text())
        assert document["kind"] == "painter-advertisement-config"
        assert document["prefixes"] == {"0": [1]}

    def test_wrong_kind_rejected(self):
        with pytest.raises(SerializationError):
            config_from_dict({"kind": "other", "version": 1, "prefixes": {}})

    def test_wrong_version_rejected(self):
        with pytest.raises(SerializationError):
            config_from_dict(
                {"kind": "painter-advertisement-config", "version": 99, "prefixes": {}}
            )

    @pytest.mark.parametrize(
        "prefixes",
        [None, {"x": [1]}, {"0": "not-a-list"}, {"0": ["str"]}],
    )
    def test_malformed_prefixes_rejected(self, prefixes):
        with pytest.raises(SerializationError):
            config_from_dict(
                {"kind": "painter-advertisement-config", "version": 1, "prefixes": prefixes}
            )


class TestLearningResultSerialization:
    def test_roundtrip(self, scenario):
        orchestrator = PainterOrchestrator(scenario, OrchestratorConfig(prefix_budget=3))
        result = orchestrator.learn(iterations=2)
        document = learning_result_to_dict(result)
        restored = learning_result_from_dict(document)
        assert len(restored.iterations) == len(result.iterations)
        assert restored.realized_benefits == result.realized_benefits
        assert restored.final_config == result.final_config

    def test_bad_record_rejected(self):
        with pytest.raises(SerializationError):
            learning_result_from_dict(
                {"kind": "painter-learning-result", "version": 1, "iterations": [{}]}
            )


class TestExperimentResultSerialization:
    def test_roundtrip(self):
        result = ExperimentResult("figX", "demo", columns=["a", "b"])
        result.add_row("x", 1.5)
        result.add_note("n")
        restored = experiment_result_from_dict(experiment_result_to_dict(result))
        assert restored.rows == [("x", 1.5)]
        assert restored.notes == ["n"]
        assert restored.render() == result.render()

    def test_missing_fields_rejected(self):
        with pytest.raises(SerializationError):
            experiment_result_from_dict(
                {"kind": "painter-experiment-result", "version": 1}
            )


class TestCli:
    def test_info(self, capsys):
        from repro.cli import main

        assert main(["info", "--preset", "tiny", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "total possible benefit" in out

    def test_solve_with_output(self, capsys, tmp_path):
        from repro.cli import main

        out_path = tmp_path / "cfg.json"
        code = main(
            [
                "solve", "--preset", "tiny", "--seed", "3",
                "--budget", "3", "--iterations", "1",
                "--output", str(out_path),
            ]
        )
        assert code == 0
        assert load_config(out_path).prefix_count >= 1
        assert "cost:" in capsys.readouterr().out

    def test_failover(self, capsys):
        from repro.cli import main

        assert main(["failover"]) == 0
        assert "PAINTER downtime" in capsys.readouterr().out

    def test_validate(self, capsys):
        from repro.cli import main

        assert main(["validate", "--preset", "tiny", "--seed", "3"]) == 0
        assert "violations" in capsys.readouterr().out

    def test_unknown_command_exits(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_tm_bench(self, capsys):
        from repro.cli import main

        code = main(
            [
                "tm-bench", "--preset", "tiny", "--seed", "3",
                "--flows", "30000", "--steps", "3", "--budget", "3",
                "--fail-step", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "kflows_per_s" in out
        assert "flows admitted" in out
        assert "re-mapped" in out

    def test_tm_bench_scalar_plane(self, capsys):
        from repro.cli import main

        code = main(
            [
                "tm-bench", "--preset", "tiny", "--seed", "3",
                "--flows", "2000", "--steps", "2", "--budget", "3",
                "--plane", "scalar",
            ]
        )
        assert code == 0
        assert "plane=scalar" in capsys.readouterr().out


class TestRoutingModelPersistence:
    def test_roundtrip_preserves_predictions(self, scenario):
        from repro.core.routing_model import RoutingModel
        from repro.io import routing_model_to_dict, restore_routing_model

        model = RoutingModel(scenario.catalog)
        ug = scenario.user_groups[0]
        advertised = frozenset(sorted(scenario.catalog.ingress_ids(ug))[:4])
        model.observe(ug, advertised, sorted(advertised)[0])

        fresh = RoutingModel(scenario.catalog)
        restore_routing_model(fresh, routing_model_to_dict(model))
        assert fresh.candidate_ingresses(ug, advertised) == model.candidate_ingresses(
            ug, advertised
        )

    def test_file_roundtrip(self, scenario, tmp_path):
        from repro.core.routing_model import RoutingModel
        from repro.io import load_routing_model_into, save_routing_model

        model = RoutingModel(scenario.catalog)
        ug = scenario.user_groups[1]
        advertised = frozenset(sorted(scenario.catalog.ingress_ids(ug))[:3])
        model.observe(ug, advertised, sorted(advertised)[-1])
        path = tmp_path / "model.json"
        save_routing_model(model, path)

        fresh = RoutingModel(scenario.catalog)
        load_routing_model_into(fresh, path)
        assert fresh.snapshot_preferences() == model.snapshot_preferences()

    def test_bad_document_rejected(self, scenario):
        from repro.core.routing_model import RoutingModel
        from repro.io import SerializationError, restore_routing_model

        model = RoutingModel(scenario.catalog)
        with pytest.raises(SerializationError):
            restore_routing_model(model, {"kind": "painter-routing-model", "version": 1})

    def test_orchestrator_resumes_with_restored_model(self, scenario):
        """Persisted learning state carries across orchestrator instances."""
        from repro.core.orchestrator import PainterOrchestrator
        from repro.core.routing_model import RoutingModel
        from repro.io import restore_routing_model, routing_model_to_dict

        first = PainterOrchestrator(scenario, OrchestratorConfig(prefix_budget=3))
        first.learn(iterations=2)
        document = routing_model_to_dict(first.model)

        model = RoutingModel(scenario.catalog)
        restore_routing_model(model, document)
        resumed = PainterOrchestrator(
            scenario, OrchestratorConfig(prefix_budget=3), model=model
        )
        assert resumed.solve() == first.solve()


class TestPacingEstimate:
    def test_iteration_duration_scales_with_budget(self, scenario):
        from repro.core.orchestrator import PainterOrchestrator

        small = PainterOrchestrator(scenario, OrchestratorConfig(prefix_budget=2))
        large = PainterOrchestrator(scenario, OrchestratorConfig(prefix_budget=50))
        assert large.estimated_iteration_duration_s() > small.estimated_iteration_duration_s()
        # Paper: ~30 s per prefix of computation dominates at scale.
        assert large.estimated_iteration_duration_s() >= 50 * 30.0


class TestScenarioManifest:
    def test_roundtrip_rebuilds_identical_world(self, tmp_path):
        from repro.io import load_scenario_from_manifest, save_scenario_manifest
        from repro.scenario import tiny_scenario

        original = tiny_scenario(seed=6, n_ugs=30)
        path = tmp_path / "manifest.json"
        save_scenario_manifest(original, path)
        rebuilt = load_scenario_from_manifest(path)
        assert rebuilt.name == original.name
        assert len(rebuilt.user_groups) == len(original.user_groups)
        assert rebuilt.anycast_latencies() == original.anycast_latencies()

    def test_manifest_contents(self):
        from repro.io import scenario_manifest
        from repro.scenario import tiny_scenario

        scenario = tiny_scenario(seed=6, n_ugs=30)
        document = scenario_manifest(scenario)
        assert document["kind"] == "painter-scenario-manifest"
        assert document["topology"]["seed"] == 6
        assert document["n_user_groups"] == 30

    def test_bad_manifest_rejected(self):
        from repro.io import SerializationError, rebuild_from_manifest

        with pytest.raises(SerializationError):
            rebuild_from_manifest(
                {"kind": "painter-scenario-manifest", "version": 1}
            )
