"""DNS records, caches, traces, resolvers."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.dns.records import ClientCache, DNSRecord, RecursiveResolver
from repro.dns.resolvers import ResolverAssignment, ResolverConfig
from repro.dns.trace import (
    CLOUD_PROFILES,
    bytes_yet_to_be_sent_curve,
    extant_vs_cached_ratio,
    generate_trace,
    stale_traffic_fraction,
)


class TestRecords:
    def test_validity_window(self):
        record = DNSRecord(hostname="x", address="1.2.3.4", ttl_s=60, issued_at_s=100)
        assert record.expires_at_s == 160
        assert not record.is_valid_at(99)
        assert record.is_valid_at(100)
        assert record.is_valid_at(159.9)
        assert not record.is_valid_at(160)

    def test_positive_ttl_required(self):
        with pytest.raises(ValueError):
            DNSRecord(hostname="x", address="1.2.3.4", ttl_s=0, issued_at_s=0)


class TestClientCache:
    def test_respecting_cache_expires(self):
        cache = ClientCache(respect_ttl=True)
        cache.insert(DNSRecord(hostname="x", address="1.2.3.4", ttl_s=60, issued_at_s=0))
        assert cache.lookup("x", 30) is not None
        assert cache.lookup("x", 61) is None

    def test_violating_cache_returns_stale(self):
        cache = ClientCache(respect_ttl=False)
        cache.insert(DNSRecord(hostname="x", address="1.2.3.4", ttl_s=60, issued_at_s=0))
        assert cache.lookup("x", 3600) is not None

    def test_lookup_before_issue_is_none(self):
        cache = ClientCache(respect_ttl=False)
        cache.insert(DNSRecord(hostname="x", address="1.2.3.4", ttl_s=60, issued_at_s=50))
        assert cache.lookup("x", 10) is None

    def test_evict_expired(self):
        cache = ClientCache()
        cache.insert(DNSRecord(hostname="x", address="1.2.3.4", ttl_s=60, issued_at_s=0))
        cache.insert(DNSRecord(hostname="y", address="1.2.3.5", ttl_s=600, issued_at_s=0))
        assert cache.evict_expired(120) == 1
        assert cache.lookup("y", 120) is not None


class TestTrace:
    def test_curve_monotone_decreasing(self):
        flows = generate_trace(CLOUD_PROFILES[0], n_flows=1500, seed=2)
        offsets = [-60, 0, 60, 300, 3600]
        curve = bytes_yet_to_be_sent_curve(flows, offsets)
        fractions = [fraction for _o, fraction in curve]
        assert fractions == sorted(fractions, reverse=True)
        assert all(0.0 <= fraction <= 1.0 for fraction in fractions)

    def test_cloud_a_mostly_stale_at_five_minutes(self):
        flows = generate_trace(CLOUD_PROFILES[0], n_flows=3000, seed=1)
        assert stale_traffic_fraction(flows, 300.0) > 0.6

    def test_other_clouds_less_stale(self):
        a = stale_traffic_fraction(generate_trace(CLOUD_PROFILES[0], 3000, seed=1), 300)
        b = stale_traffic_fraction(generate_trace(CLOUD_PROFILES[1], 3000, seed=1), 300)
        c = stale_traffic_fraction(generate_trace(CLOUD_PROFILES[2], 3000, seed=1), 300)
        assert a > b and a > c

    def test_extant_cached_ratio_near_two_for_cloud_a(self):
        flows = generate_trace(CLOUD_PROFILES[0], n_flows=4000, seed=1)
        assert 1.2 <= extant_vs_cached_ratio(flows) <= 3.5

    def test_flow_bytes_after(self):
        from repro.dns.trace import TraceFlow

        record = DNSRecord(hostname="x", address="1.2.3.4", ttl_s=60, issued_at_s=0)
        flow = TraceFlow(cloud="c", record=record, start_s=30, duration_s=90, bytes_total=900)
        # Record expires at 60; flow runs 30..120 at 10 bytes/s.
        assert flow.bytes_after(0) == pytest.approx(600)
        assert flow.bytes_after(-100) == pytest.approx(900)
        assert flow.bytes_after(1000) == 0.0

    def test_trace_deterministic(self):
        a = generate_trace(CLOUD_PROFILES[1], 200, seed=5)
        b = generate_trace(CLOUD_PROFILES[1], 200, seed=5)
        assert [(f.start_s, f.bytes_total) for f in a] == [
            (f.start_s, f.bytes_total) for f in b
        ]

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            generate_trace(CLOUD_PROFILES[0], n_flows=0)

    @given(st.floats(min_value=-600, max_value=7200, allow_nan=False))
    @settings(max_examples=30, deadline=None)
    def test_fraction_always_valid(self, offset):
        flows = generate_trace(CLOUD_PROFILES[2], 300, seed=9)
        fraction = stale_traffic_fraction(flows, offset)
        assert 0.0 <= fraction <= 1.0


class TestResolvers:
    def test_every_ug_assigned(self, scenario):
        assignment = ResolverAssignment(scenario, ResolverConfig(seed=1))
        for ug in scenario.user_groups:
            resolver = assignment.resolver_for(ug)
            assert resolver.serves(ug.ug_id)

    def test_partition(self, scenario):
        assignment = ResolverAssignment(scenario, ResolverConfig(seed=1))
        seen = []
        for resolver in assignment.resolvers:
            seen.extend(resolver.ug_ids)
        assert sorted(seen) == sorted(ug.ug_id for ug in scenario.user_groups)

    def test_ecs_resolver_present(self, scenario):
        assignment = ResolverAssignment(scenario, ResolverConfig(seed=1))
        ecs = [r for r in assignment.resolvers if r.supports_ecs]
        assert len(ecs) == 1
        assert ecs[0].population > 0

    def test_volume_accounting(self, scenario):
        assignment = ResolverAssignment(scenario, ResolverConfig(seed=1))
        total = sum(assignment.volume_of(r) for r in assignment.resolvers)
        assert total == pytest.approx(sum(ug.volume for ug in scenario.user_groups))

    def test_deterministic(self, scenario):
        a = ResolverAssignment(scenario, ResolverConfig(seed=4))
        b = ResolverAssignment(scenario, ResolverConfig(seed=4))
        for ug in scenario.user_groups:
            assert a.resolver_for(ug).name == b.resolver_for(ug).name

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ResolverConfig(public_resolver_fraction=2.0)
        with pytest.raises(ValueError):
            ResolverConfig(disparate_assignment_prob=-0.1)
