"""Unit tests for the repro.perf instrumentation layer.

The registry's contracts matter more than its arithmetic: hot code holds
direct references to stat objects, so ``reset()`` must zero in place, and
parallel experiment workers ship ``snapshot()`` dicts back to the parent,
so ``merge()`` must sum every stat kind.
"""

import json

import pytest

from repro.perf import PERF, CacheStats, Counter, PerfRegistry, TimerStats


class TestCounter:
    def test_add_and_reset(self):
        c = Counter("x")
        assert c.value == 0
        c.add()
        c.add(41)
        assert c.value == 42
        c.reset()
        assert c.value == 0


class TestCacheStats:
    def test_hit_rate(self):
        s = CacheStats("c")
        assert s.hit_rate == 0.0  # no lookups: defined as zero, not NaN
        s.hits += 3
        s.misses += 1
        assert s.lookups == 4
        assert s.hit_rate == pytest.approx(0.75)

    def test_reset(self):
        s = CacheStats("c")
        s.hits, s.misses, s.invalidations = 5, 2, 1
        s.reset()
        assert (s.hits, s.misses, s.invalidations) == (0, 0, 0)


class TestTimerStats:
    def test_mean(self):
        t = TimerStats("t")
        assert t.mean_s == 0.0
        t.add(1.0)
        t.add(3.0)
        assert t.calls == 2
        assert t.mean_s == pytest.approx(2.0)


class TestPerfRegistry:
    def test_acquisition_is_idempotent(self):
        reg = PerfRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.cache("b") is reg.cache("b")
        assert reg.timer("c") is reg.timer("c")

    def test_reset_zeroes_in_place(self):
        """Hot paths hold references across resets — identity must survive."""
        reg = PerfRegistry()
        counter = reg.counter("evals")
        cache = reg.cache("memo")
        timer = reg.timer("solve")
        counter.add(10)
        cache.hits += 2
        timer.add(0.5)
        reg.reset()
        assert counter.value == 0
        assert cache.hits == 0
        assert timer.calls == 0
        assert reg.counter("evals") is counter  # same object, zeroed

    def test_timed_contextmanager(self):
        reg = PerfRegistry()
        with reg.timed("region"):
            pass
        with reg.timed("region"):
            pass
        stat = reg.timer("region")
        assert stat.calls == 2
        assert stat.total_s >= 0.0

    def test_timed_records_on_exception(self):
        reg = PerfRegistry()
        with pytest.raises(RuntimeError):
            with reg.timed("region"):
                raise RuntimeError("boom")
        assert reg.timer("region").calls == 1

    def test_snapshot_is_json_serializable(self):
        reg = PerfRegistry()
        reg.counter("a").add(3)
        reg.cache("b").hits += 1
        reg.timer("c").add(0.25)
        snap = json.loads(json.dumps(reg.snapshot()))
        assert snap["counters"]["a"] == 3
        assert snap["caches"]["b"]["hits"] == 1
        assert snap["timers"]["c"]["calls"] == 1

    def test_merge_sums_worker_snapshot(self):
        """Parallel workers return snapshots; the parent folds them in."""
        worker = PerfRegistry()
        worker.counter("evals").add(7)
        worker.cache("memo").hits += 4
        worker.cache("memo").misses += 1
        worker.timer("solve").add(1.5)

        parent = PerfRegistry()
        parent.counter("evals").add(3)
        parent.merge(worker.snapshot())
        parent.merge(worker.snapshot())

        assert parent.counter("evals").value == 3 + 7 + 7
        assert parent.cache("memo").hits == 8
        assert parent.cache("memo").misses == 2
        assert parent.timer("solve").calls == 2
        assert parent.timer("solve").total_s == pytest.approx(3.0)

    def test_merge_creates_worker_only_stats(self):
        """Metrics only a worker ever touched must appear after the merge.

        Regression guard for the solve-pool path: forked workers bump
        counters/caches/timers/histograms the parent has never requested
        (e.g. scan counters inside worker-side PrefixScans), and the merge
        must materialize them rather than drop or mangle them.
        """
        worker = PerfRegistry()
        worker.counter("worker.only_counter").add(2)
        worker.gauge("worker.only_gauge").set(7.5)
        worker.cache("worker.only_cache").hits += 3
        worker.cache("worker.only_cache").invalidations += 1
        worker.timer("worker.only_timer").add(0.5)
        worker.histogram("worker.only_hist", (1.0, 10.0)).observe(4.0)

        parent = PerfRegistry()
        parent.merge(worker.snapshot())

        assert parent.counter("worker.only_counter").value == 2
        assert parent.gauge("worker.only_gauge").value == 7.5
        assert parent.cache("worker.only_cache").hits == 3
        assert parent.cache("worker.only_cache").invalidations == 1
        assert parent.timer("worker.only_timer").calls == 1
        hist = parent.histogram("worker.only_hist")
        assert hist.bounds == (1.0, 10.0)
        assert hist.count == 1
        assert hist.counts == [0, 1, 0]
        assert hist.min == 4.0
        assert hist.max == 4.0

    def test_merge_histograms_sum_counts_and_extremes(self):
        worker = PerfRegistry()
        for value in (0.5, 3.0, 99.0):
            worker.histogram("h", (1.0, 10.0)).observe(value)
        parent = PerfRegistry()
        parent.histogram("h", (1.0, 10.0)).observe(5.0)
        parent.merge(worker.snapshot())
        hist = parent.histogram("h")
        assert hist.count == 4
        assert hist.counts == [1, 2, 1]
        assert hist.min == 0.5
        assert hist.max == 99.0

    def test_merge_rejects_bounds_mismatch_atomically(self):
        """An incompatible snapshot must leave the registry untouched.

        The old merge raised on the histogram *after* counters, caches, and
        timers had already been folded in, so a rejected worker snapshot
        half-applied — every later report silently double-counted.  The
        merge now validates first and mutates only if everything fits.
        """
        worker = PerfRegistry()
        worker.counter("evals").add(7)
        worker.timer("solve").add(1.0)
        worker.histogram("lat", (1.0, 2.0)).observe(1.5)

        parent = PerfRegistry()
        parent.counter("evals").add(3)
        parent.histogram("lat", (5.0, 10.0)).observe(6.0)

        with pytest.raises(ValueError, match="different bounds"):
            parent.merge(worker.snapshot())

        # Nothing moved: not the counter, not the timer, not the histogram.
        assert parent.counter("evals").value == 3
        assert parent.timer("solve").calls == 0
        assert parent.histogram("lat").count == 1
        assert parent.histogram("lat").counts == [0, 1, 0]

    def test_merge_rejects_malformed_bucket_counts_atomically(self):
        worker = PerfRegistry()
        worker.counter("evals").add(7)
        snapshot = worker.snapshot()
        snapshot["histograms"] = {
            "lat": {"bounds": [1.0, 2.0], "counts": [1, 2], "count": 3, "sum": 4.0}
        }
        parent = PerfRegistry()
        with pytest.raises(ValueError, match="buckets"):
            parent.merge(snapshot)
        assert parent.counter("evals").value == 0
        assert "lat" not in parent.snapshot()["histograms"]

    def test_render_empty(self):
        reg = PerfRegistry()
        assert "no activity" in reg.render()

    def test_render_and_markdown_show_live_stats(self):
        reg = PerfRegistry()
        reg.counter("orchestrator.marginal_evals").add(12)
        reg.cache("evaluator.expected_latency").hits += 9
        reg.cache("evaluator.expected_latency").misses += 3
        reg.timer("orchestrator.solve").add(0.125)

        text = reg.render()
        assert "orchestrator.marginal_evals" in text
        assert "hit-rate 75.0%" in text
        assert "orchestrator.solve" in text

        md = reg.to_markdown()
        assert "| orchestrator.marginal_evals | 12 |" in md
        assert "75.0%" in md

    def test_module_singleton_exists(self):
        assert isinstance(PERF, PerfRegistry)


class TestPerfCli:
    def test_repro_perf_smoke_on_tiny_preset(self, capsys):
        """`repro perf` runs an instrumented solve and prints the report."""
        from repro.cli import main

        rc = main(
            ["perf", "--preset", "tiny", "--seed", "0", "--budget", "3",
             "--iterations", "0"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "performance counters" in out
        assert "orchestrator.marginal_evals" in out
        assert "laziness:" in out

    def test_repro_perf_learn_iterations(self, capsys):
        from repro.cli import main

        rc = main(
            ["perf", "--preset", "tiny", "--seed", "1", "--budget", "2",
             "--iterations", "1"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "orchestrator.solve" in out
