"""Extension experiments: congestion spreading and multipath failover."""

import pytest

from repro.experiments.extensions import run_ext_congestion, run_ext_multipath


@pytest.fixture(scope="module")
def world():
    from repro.scenario import tiny_scenario

    return tiny_scenario(seed=3)


class TestCongestion:
    def test_spread_delivers_past_single_path_saturation(self, world):
        result = run_ext_congestion(
            scenario=world, capacity_per_destination=100.0, demand_levels=(50, 200, 400)
        )
        rows = {row[0]: row[1:] for row in result.rows}
        # Past single-path capacity, single delivery collapses while the
        # spread keeps delivering everything.
        assert rows[200][1] == pytest.approx(0.5)
        assert rows[200][3] == pytest.approx(1.0)
        assert rows[400][1] == pytest.approx(0.25)
        assert rows[400][3] == pytest.approx(1.0)

    def test_single_path_saturates(self, world):
        result = run_ext_congestion(
            scenario=world, capacity_per_destination=100.0, demand_levels=(200,)
        )
        row = result.rows[0]
        assert row[1] == -1.0  # saturated marker

    def test_spread_latency_grows_with_demand(self, world):
        result = run_ext_congestion(
            scenario=world, capacity_per_destination=100.0, demand_levels=(50, 400)
        )
        low = result.rows[0][3]
        high = result.rows[1][3]
        assert high > low > 0


class TestMultipath:
    def test_delivery_maintained_through_failure(self, world):
        result = run_ext_multipath(scenario=world, demand_mbps=60.0)
        for row in result.rows:
            assert row[3] >= 0.99  # surviving subflows carry the demand

    def test_outages_bounded_by_subflow_rtts(self, world):
        result = run_ext_multipath(scenario=world)
        for row in result.rows:
            assert 0 < row[1] < 1000.0
            assert row[2] > 0


class TestIpv6Experiment:
    def test_table_shape(self, world):
        from repro.experiments.extensions import run_ext_ipv6

        result = run_ext_ipv6(scenario=world)
        assert len(result.rows) == 3
        exposable = result.column("exposable_path_frac")
        # More v6 peering exposes more paths; full dual-stack exposes all.
        assert exposable == sorted(exposable)
        assert exposable[-1] == pytest.approx(1.0)
        assert all(f == 8.0 for f in result.column("fib_cost_factor"))


class TestEgressExperiment:
    def test_combinations_ordered(self, world):
        from repro.experiments.extensions import run_ext_egress

        result = run_ext_egress(scenario=world)
        rows = {row[0]: row[1] for row in result.rows}
        assert rows["both"] <= rows["painter_only"] + 1e-9
        assert rows["both"] <= rows["egress_only"] + 1e-9
        assert rows["painter_only"] <= rows["neither"] + 1e-9
        gains = {row[0]: row[2] for row in result.rows}
        assert gains["both"] >= max(gains["painter_only"], gains["egress_only"]) - 1e-9


class TestFailoverSweep:
    def test_painter_scales_with_rtt_others_do_not(self):
        from repro.experiments.extensions import run_ext_failover_sweep

        result = run_ext_failover_sweep(rtt_scale_ms=(10.0, 40.0))
        painter = result.column("painter_downtime_ms")
        dns = result.column("dns_downtime_s")
        assert painter[1] > painter[0]  # detection is RTT-proportional
        assert dns[0] == dns[1]  # TTL-bound regardless of RTT
        for p_ms, loss_ms in zip(painter, result.column("anycast_loss_ms")):
            assert p_ms < loss_ms  # PAINTER beats anycast at every RTT
