"""The ``mega`` preset: extended metro pools, capped presence, inverted
catalog build, and the 100k-UG smoke at the slow tier.

The fast tests pin down the machinery mega relies on (synthetic metros,
``TopologyConfig.metros``/``big_as_presence_cap``, the ASN-grouped
:class:`IngressCatalog` build) at small scale; the slow tier builds the real
500-PoP/100k-UG world, solves it through the dense-matrix path, and gates
peak RSS.
"""

from __future__ import annotations

import resource

import pytest

from repro.scenario import (
    MEGA_N_POPS,
    build_scenario,
    mega_scenario,
    tiny_scenario,
)
from repro.topology.builder import TopologyConfig, build_topology
from repro.topology.geo import WORLD_METROS, synthetic_metros
from repro.usergroups.generation import UserGroupConfig
from repro.usergroups.ingresses import IngressCatalog, policy_compliant_peerings

# ---------------------------------------------------------------------------
# synthetic metro pool
# ---------------------------------------------------------------------------


def test_synthetic_metros_deterministic_and_distinct() -> None:
    a = synthetic_metros(40, seed=3)
    b = synthetic_metros(40, seed=3)
    assert a == b  # same seed, bit-identical pool (stable across processes)
    assert synthetic_metros(40, seed=4) != a
    names = {m.name for m in a}
    assert len(names) == 40
    assert not names & {m.name for m in WORLD_METROS}  # syn- prefix never collides
    for metro in a:
        assert -90.0 <= metro.location.lat <= 90.0
        assert metro.region.startswith("syn-")


def test_synthetic_metros_validation() -> None:
    assert synthetic_metros(0) == ()
    with pytest.raises(ValueError, match="non-negative"):
        synthetic_metros(-1)


# ---------------------------------------------------------------------------
# TopologyConfig pool & presence cap
# ---------------------------------------------------------------------------


def test_metro_pool_allows_more_pops_than_world_metros() -> None:
    pool = WORLD_METROS + synthetic_metros(16, seed=0)
    config = TopologyConfig(seed=0, n_pops=len(pool), metros=pool)
    topology = build_topology(config)
    assert len(topology.deployment.pops) == len(pool)


def test_metro_pool_validation() -> None:
    with pytest.raises(ValueError, match="at most"):
        TopologyConfig(n_pops=len(WORLD_METROS) + 1)
    with pytest.raises(ValueError, match="duplicate metro names"):
        TopologyConfig(n_pops=2, metros=WORLD_METROS + (WORLD_METROS[0],))
    with pytest.raises(ValueError, match="big_as_presence_cap"):
        TopologyConfig(big_as_presence_cap=1)


def test_presence_cap_bounds_big_as_peerings_without_shifting_rng() -> None:
    uncapped = build_topology(TopologyConfig(seed=2, n_pops=20))
    capped = build_topology(TopologyConfig(seed=2, n_pops=20, big_as_presence_cap=3))
    big = set(capped.tier1_asns) | set(capped.transit_asns)
    for asn in big:
        assert len(capped.deployment.peerings_with(asn)) <= 3
    # The cap applies after the presence draw, so the rest of the world —
    # which consumes the same RNG stream — is unchanged.
    assert capped.tier1_asns == uncapped.tier1_asns
    assert capped.stub_asns == uncapped.stub_asns
    assert [a.home_metro.name for a in map(capped.graph.get_as, capped.regional_asns)] == [
        a.home_metro.name for a in map(uncapped.graph.get_as, uncapped.regional_asns)
    ]


# ---------------------------------------------------------------------------
# inverted IngressCatalog build == the per-UG reference rules
# ---------------------------------------------------------------------------


def _assert_catalog_matches_reference(scenario) -> None:
    for ug in scenario.user_groups:
        reference = frozenset(
            p.peering_id for p in policy_compliant_peerings(ug, scenario.topology)
        )
        assert scenario.catalog.ingress_ids(ug) == reference, ug


def test_catalog_matches_reference_tiny() -> None:
    _assert_catalog_matches_reference(tiny_scenario(seed=9))


def test_catalog_matches_reference_with_extended_pool() -> None:
    pool = WORLD_METROS + synthetic_metros(36, seed=1)
    scenario = build_scenario(
        name="mini-mega",
        topology_config=TopologyConfig(
            seed=1,
            n_pops=len(pool),
            n_tier1=3,
            n_transit=6,
            n_regional=30,
            n_stub=150,
            metros=pool,
            big_as_presence_cap=4,
        ),
        ug_config=UserGroupConfig(seed=2, n_ugs=150, metros=pool),
    )
    _assert_catalog_matches_reference(scenario)
    # Interning: UGs of the same AS share one frozenset object.
    by_asn = {}
    for ug in scenario.user_groups:
        ids = scenario.catalog.ingress_ids(ug)
        if ug.asn in by_asn:
            assert by_asn[ug.asn] is ids
        by_asn[ug.asn] = ids


def test_catalog_handles_out_of_graph_direct_peer(micro_deployment) -> None:
    # A peering whose peer ASN is not in the AS graph must still count as a
    # direct (rule 1) ingress for UGs of that ASN — and nothing else.
    from repro.topology.asn import ASRole, AutonomousSystem, Relationship
    from repro.topology.builder import Topology, TopologyConfig as TC
    from repro.topology.graph import ASGraph
    from repro.usergroups.usergroup import UserGroup

    graph = ASGraph()
    graph.add_as(AutonomousSystem(asn=1, role=ASRole.CLOUD))
    pop = micro_deployment.pops[0]
    foreign = micro_deployment.add_peering(pop, 999, Relationship.PEER)
    topology = Topology(
        config=TC(seed=0, n_pops=2),
        graph=graph,
        deployment=micro_deployment,
        tier1_asns=[],
        transit_asns=[],
        regional_asns=[],
        stub_asns=[],
    )
    metro = pop.metro
    ug_foreign = UserGroup(ug_id=0, asn=999, metro=metro, volume=0.5)
    ug_other = UserGroup(ug_id=1, asn=998, metro=metro, volume=0.5)
    catalog = IngressCatalog(topology, [ug_foreign, ug_other])
    transit_ids = {p.peering_id for p in micro_deployment.transit_peerings()}
    assert catalog.ingress_ids(ug_foreign) == transit_ids | {foreign.peering_id}
    assert catalog.ingress_ids(ug_other) == transit_ids
    for ug in (ug_foreign, ug_other):
        assert catalog.ingress_ids(ug) == frozenset(
            p.peering_id for p in policy_compliant_peerings(ug, topology)
        )


# ---------------------------------------------------------------------------
# the real thing (slow tier)
# ---------------------------------------------------------------------------

#: Peak-RSS budget for building + solving mega.  Measured ~5.0 GB peak on
#: the reference runner (the two 100k x 2010 float64 latency/distance
#: matrices account for ~3.2 GB; scan scratch and the gain buffer make up
#: the rest); the headroom guards against layout regressions such as
#: falling back to per-UG python dict rows (which would be tens of GB).
MEGA_PEAK_RSS_BYTES = 8 * 1024**3


@pytest.mark.slow
def test_mega_smoke_builds_and_solves_within_memory_budget() -> None:
    scenario = mega_scenario()
    assert len(scenario.deployment.pops) == MEGA_N_POPS >= 500
    assert len(scenario.user_groups) >= 100_000
    assert len(scenario.deployment.peerings) >= 1_500

    from repro.core.orchestrator import OrchestratorConfig, PainterOrchestrator

    orch = PainterOrchestrator(scenario, OrchestratorConfig(prefix_budget=2))
    assert orch._use_dense_matrices()  # 100k x ~2000 slots >> the auto floor
    config = orch.solve()
    assert config.prefix_count <= 2
    assert config.pair_count > 0

    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    assert peak <= MEGA_PEAK_RSS_BYTES, f"peak RSS {peak / 1e9:.2f} GB over budget"
