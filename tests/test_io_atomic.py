"""Crash-safety of ``repro.io``: every save is atomic write-then-rename.

The controller's checkpoint store leans on ``atomic_write_text`` for its
durability guarantee, so this suite simulates the failure modes directly:
a crash while writing the temp file, a crash at the rename itself, and a
plain overwrite — in every case the previous file must survive intact and
no temp litter may remain.
"""

from __future__ import annotations

import json
import os

import pytest

import repro.io as rio
from repro.core.advertisement import AdvertisementConfig
from repro.io import atomic_write_text, load_config, save_config


def _listdir(path):
    return sorted(p.name for p in path.iterdir())


class TestAtomicWriteText:
    def test_creates_file(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "hello")
        assert target.read_text() == "hello"
        assert _listdir(tmp_path) == ["out.txt"]

    def test_overwrites_existing(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("old")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"
        assert _listdir(tmp_path) == ["out.txt"]

    def test_failure_during_write_leaves_previous_intact(
        self, tmp_path, monkeypatch
    ):
        target = tmp_path / "out.txt"
        target.write_text("previous contents")

        real_fsync = os.fsync

        def exploding_fsync(fd):
            raise OSError("disk fell over mid-write")

        monkeypatch.setattr(rio.os, "fsync", exploding_fsync)
        with pytest.raises(OSError, match="mid-write"):
            atomic_write_text(target, "half-finished replacement")
        monkeypatch.setattr(rio.os, "fsync", real_fsync)

        # The old file is untouched and the aborted temp file was removed.
        assert target.read_text() == "previous contents"
        assert _listdir(tmp_path) == ["out.txt"]

    def test_failure_at_rename_leaves_previous_intact(
        self, tmp_path, monkeypatch
    ):
        target = tmp_path / "out.txt"
        target.write_text("previous contents")

        def exploding_replace(src, dst):
            raise OSError("crash at the rename boundary")

        monkeypatch.setattr(rio.os, "replace", exploding_replace)
        with pytest.raises(OSError, match="rename boundary"):
            atomic_write_text(target, "never lands")
        monkeypatch.undo()

        assert target.read_text() == "previous contents"
        assert _listdir(tmp_path) == ["out.txt"]

    def test_temp_file_lives_in_destination_directory(
        self, tmp_path, monkeypatch
    ):
        """The rename must be same-filesystem, so the temp file must be
        created next to the target — never in the global tmpdir."""
        seen = {}
        real_mkstemp = rio.tempfile.mkstemp

        def spying_mkstemp(*args, **kwargs):
            seen["dir"] = kwargs.get("dir")
            return real_mkstemp(*args, **kwargs)

        monkeypatch.setattr(rio.tempfile, "mkstemp", spying_mkstemp)
        atomic_write_text(tmp_path / "out.txt", "x")
        assert seen["dir"] == str(tmp_path)


class TestSaveFunctionsAreAtomic:
    def test_save_config_survives_midwrite_crash(self, tmp_path, monkeypatch):
        path = tmp_path / "config.json"
        first = AdvertisementConfig.from_pairs([(0, 1), (2, 5)])
        save_config(first, path)

        monkeypatch.setattr(
            rio.os, "fsync", lambda fd: (_ for _ in ()).throw(OSError("boom"))
        )
        with pytest.raises(OSError):
            save_config(AdvertisementConfig.from_pairs([(9, 9)]), path)
        monkeypatch.undo()

        # Still parseable, still the first config, no temp litter.
        assert load_config(path) == first
        assert json.loads(path.read_text())["kind"] == rio._CONFIG_KIND
        assert _listdir(tmp_path) == ["config.json"]

    def test_all_savers_route_through_atomic_write(self, monkeypatch):
        """Every ``save_*`` in the module must use the atomic path."""
        calls = []

        def recording_write(path, text):
            calls.append(str(path))

        monkeypatch.setattr(rio, "atomic_write_text", recording_write)

        config = AdvertisementConfig.from_pairs([(0, 1)])
        rio.save_config(config, "a.json")
        assert calls == ["a.json"]
