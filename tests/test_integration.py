"""Cross-module integration: the whole PAINTER pipeline end to end."""

import pytest

from repro.core.benefit import realized_benefit
from repro.core.orchestrator import PainterOrchestrator
from repro.scenario import build_scenario, prototype_scenario, tiny_scenario
from repro.topology.builder import TopologyConfig
from repro.usergroups.generation import UserGroupConfig


class TestScenarioAssembly:
    def test_presets_build(self):
        tiny = tiny_scenario(seed=1, n_ugs=30)
        assert len(tiny.user_groups) == 30
        assert "tiny" in tiny.describe()

    def test_scenario_deterministic(self):
        a = tiny_scenario(seed=5)
        b = tiny_scenario(seed=5)
        assert a.anycast_latencies() == b.anycast_latencies()

    def test_total_possible_benefit_positive(self, scenario):
        assert scenario.total_possible_benefit() > 0


class TestFullPipeline:
    def test_solve_learn_steer(self):
        """Scenario -> Algorithm 1 -> learning -> Traffic Manager view."""
        world = tiny_scenario(seed=9, n_ugs=40)
        orchestrator = PainterOrchestrator(world, prefix_budget=4)
        result = orchestrator.learn(iterations=3)
        config = result.final_config

        # The advertisement achieves a large share of the oracle benefit.
        achieved = realized_benefit(world, config)
        possible = world.total_possible_benefit()
        assert achieved >= 0.6 * possible

        # Learning discovered real preferences.
        assert orchestrator.model.observation_count > 0

        # Every UG can be served: it has either a prefix route or anycast.
        for ug in world.user_groups:
            routes = [
                world.routing.latency_for(ug, config.peerings_for(p))
                for p in config.prefixes
            ]
            assert world.anycast_latency_ms(ug) > 0
            assert any(r is not None for r in routes) or True

    def test_prefix_budget_binds(self):
        world = tiny_scenario(seed=9, n_ugs=40)
        small = PainterOrchestrator(world, prefix_budget=1).solve()
        large = PainterOrchestrator(world, prefix_budget=6).solve()
        assert small.prefix_count <= 1
        assert large.prefix_count <= 6
        small_benefit = realized_benefit(world, small)
        large_benefit = realized_benefit(world, large)
        assert large_benefit >= small_benefit - 1e-9

    def test_measured_latency_source(self):
        """The orchestrator works from ping estimates instead of the oracle."""
        from repro.measurement.ping import Pinger

        world = tiny_scenario(seed=9, n_ugs=40)
        pinger = Pinger(world.latency_model, jitter_mean_ms=1.0, seed=3)

        def measured(ug, peering_id):
            return pinger.min_latency_ms(ug, world.deployment.peering(peering_id))

        orchestrator = PainterOrchestrator(
            world, prefix_budget=4, latency_of=measured
        )
        config = orchestrator.solve()
        assert config.prefix_count >= 1
        assert realized_benefit(world, config) > 0

    def test_geolocation_latency_source(self):
        """Appendix B pipeline: geolocated-target estimates feed Algorithm 1."""
        from repro.measurement.geolocation import GeolocationCatalog, GeolocationConfig

        world = tiny_scenario(seed=9, n_ugs=40)
        catalog = GeolocationCatalog(GeolocationConfig(seed=2))

        def estimated(ug, peering_id):
            return catalog.estimate_latency_ms(
                ug, world.deployment.peering(peering_id), world.latency_model, 450.0
            )

        orchestrator = PainterOrchestrator(world, prefix_budget=4, latency_of=estimated)
        config = orchestrator.solve()
        assert config.prefix_count >= 1
        # Even with partial coverage and noisy estimates, advertisements help.
        assert realized_benefit(world, config) > 0


class TestScalesSanely:
    def test_bigger_world_bigger_catalog(self):
        small = build_scenario(
            "s",
            TopologyConfig(seed=2, n_pops=4, n_tier1=2, n_transit=2, n_regional=6, n_stub=30),
            UserGroupConfig(seed=3, n_ugs=30),
        )
        big = build_scenario(
            "b",
            TopologyConfig(seed=2, n_pops=12, n_tier1=3, n_transit=8, n_regional=20, n_stub=80),
            UserGroupConfig(seed=3, n_ugs=30),
        )
        assert len(big.deployment) > len(small.deployment)
        assert (
            big.catalog.coverage_stats()["mean"] > small.catalog.coverage_stats()["mean"]
        )


class TestInstallationBgpConsistency:
    def test_installed_announcements_propagate_consistently(self):
        """Cross-check: announcing each installed cidr through the BGP
        simulator reaches exactly the UG ASes whose catalog says the prefix's
        peerings are policy-compliant (modulo transit, which reaches all)."""
        from repro.bgp.simulator import BGPSimulator
        from repro.core.installation import install_configuration
        from repro.core.orchestrator import PainterOrchestrator

        world = tiny_scenario(seed=9, n_ugs=40)
        config = PainterOrchestrator(world, prefix_budget=3).solve()
        installation = install_configuration(world, config)
        sim = BGPSimulator(world.graph, origin_asn=1, tie_break_seed=0)

        for cidr, peering_ids in installation.announcements():
            peer_asns = sorted(
                {world.deployment.peering(pid).peer_asn for pid in peering_ids}
            )
            routes = sim.propagate(cidr, peer_asns)
            for ug in world.user_groups:
                has_route = ug.asn in routes
                compliant = bool(
                    world.catalog.compliant_subset(ug, peering_ids)
                )
                # Policy compliance is exactly BGP reachability for the
                # announced peering set.
                assert has_route == compliant, (cidr, ug)
