"""Properties of the soak load generator (:mod:`repro.soak.load`).

The soak harness's determinism contract rests on the load model being a
pure function of (seed, window): flow keys must regenerate bit-identically
so expired windows can be ended without storing a key, and the VolumeShift
stream must put exactly one timestamp bucket on every window boundary so
controller iteration *k* always simulates window *k*.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.soak.load import _MIN_MULTIPLIER, DiurnalLoad

pytestmark = pytest.mark.soak

seeds = st.integers(min_value=0, max_value=2**31 - 1)


def make_load(scenario, **kwargs):
    defaults = dict(
        seed=0,
        windows=8,
        window_s=600.0,
        base_arrivals=1_000,
        amplitude=0.5,
        flash_crowds=1,
    )
    defaults.update(kwargs)
    return DiurnalLoad(scenario, **defaults)


class TestDemandCurve:
    @given(seed=seeds, window=st.integers(0, 23))
    @settings(max_examples=30)
    def test_multipliers_pure_and_bounded(self, scenario, seed, window):
        a = make_load(scenario, seed=seed, windows=24)
        b = make_load(scenario, seed=seed, windows=24)
        mult = a.multipliers(window)
        np.testing.assert_array_equal(mult, b.multipliers(window))
        assert np.all(mult >= _MIN_MULTIPLIER)
        # Diurnal swing is 1 ± amplitude; crowds multiply on top of that.
        ceiling = (1.0 + a.amplitude) * max(
            [c.multiplier for c in a.crowds], default=1.0
        )
        assert np.all(mult <= ceiling + 1e-9)

    def test_diurnal_phase_follows_longitude(self, scenario):
        load = make_load(scenario, flash_crowds=0, windows=24, window_s=3600.0)
        hours = load.local_hours(0)
        assert hours.shape == (load.n_ugs,)
        assert np.all((hours >= 0) & (hours < 24))
        # One window of 3600s advances every UG's local clock by one hour.
        np.testing.assert_allclose(
            load.local_hours(1), (hours + 1.0) % 24.0
        )

    def test_flash_crowd_scales_only_its_metro(self, scenario):
        calm = make_load(scenario, seed=5, flash_crowds=0)
        stormy = make_load(scenario, seed=5, flash_crowds=1)
        assert len(stormy.crowds) == 1
        crowd = stormy.crowds[0]
        mask = np.array(
            [ug.metro.name == crowd.metro for ug in scenario.user_groups]
        )
        assert mask.any()
        window = crowd.start_window
        ratio = stormy.multipliers(window) / calm.multipliers(window)
        np.testing.assert_allclose(ratio[mask], crowd.multiplier)
        np.testing.assert_allclose(ratio[~mask], 1.0)
        # Outside the crowd's span the two loads are identical.
        np.testing.assert_array_equal(
            stormy.multipliers(crowd.end_window),
            calm.multipliers(crowd.end_window),
        )

    def test_arrivals_track_the_weighted_curve(self, scenario):
        load = make_load(scenario, seed=1, base_arrivals=10_000)
        for window in range(load.windows):
            weights = np.array([ug.volume for ug in scenario.user_groups])
            mean = float(
                (weights * load.multipliers(window)).sum() / weights.sum()
            )
            assert load.arrivals(window) == int(round(10_000 * mean))
        assert make_load(scenario, base_arrivals=0).arrivals(0) == 0


class TestBatchRegeneration:
    @given(seed=seeds, window=st.integers(0, 7))
    @settings(max_examples=20)
    def test_batch_regenerates_bit_identically(self, scenario, seed, window):
        load = make_load(scenario, seed=seed)
        first = load.batch(window)
        again = make_load(scenario, seed=seed).batch(window)
        np.testing.assert_array_equal(first.keys, again.keys)
        np.testing.assert_array_equal(first.service_ids, again.service_ids)
        np.testing.assert_array_equal(
            first.payload_bytes, again.payload_bytes
        )

    def test_windows_draw_distinct_flow_keys(self, scenario):
        load = make_load(scenario, seed=2)
        keys = [load.batch(w).keys for w in range(4)]
        for w in range(1, 4):
            assert load.batch_seed(w) != load.batch_seed(w - 1)
            assert not np.array_equal(keys[w], keys[w - 1])

    def test_batch_sizes_follow_arrivals(self, scenario):
        load = make_load(scenario, seed=4)
        for window in range(load.windows):
            assert len(load.batch(window)) == load.arrivals(window)


class TestVolumeDeltaAlignment:
    @given(
        seed=seeds,
        windows=st.integers(2, 10),
        shifts=st.integers(1, 12),
    )
    @settings(max_examples=25)
    def test_exactly_one_bucket_per_boundary(
        self, scenario, seed, windows, shifts
    ):
        load = make_load(scenario, seed=seed, windows=windows)
        deltas = load.volume_deltas(shifts_per_window=shifts)
        expected_per_boundary = min(shifts, load.n_ugs)
        by_boundary = {}
        for delta in deltas:
            by_boundary.setdefault(delta.at_s, []).append(delta)
        assert sorted(by_boundary) == [
            w * load.window_s for w in range(1, windows)
        ]
        for bucket in by_boundary.values():
            assert len(bucket) == expected_per_boundary

    def test_shift_volumes_match_the_curve(self, scenario):
        load = make_load(scenario, seed=7, windows=4)
        id_to_index = {
            int(ug.ug_id): i for i, ug in enumerate(scenario.user_groups)
        }
        for delta in load.volume_deltas(shifts_per_window=4):
            window = int(delta.at_s // load.window_s)
            expected = load.volumes(window)[id_to_index[delta.ug_id]]
            assert delta.volume == pytest.approx(float(expected))

    def test_rejects_zero_shifts(self, scenario):
        with pytest.raises(ValueError):
            make_load(scenario).volume_deltas(shifts_per_window=0)
