"""Failover simulation: the Fig. 10 timescale separation."""

import math

import pytest

from repro.bgp.convergence import ConvergenceConfig
from repro.traffic_manager.failover import (
    FailoverConfig,
    PathSpec,
    default_fig10_paths,
    run_failover,
)


@pytest.fixture(scope="module")
def result():
    return run_failover(default_fig10_paths())


class TestPathSpec:
    def test_anycast_needs_backup(self):
        with pytest.raises(ValueError):
            PathSpec(prefix="1.1.1.0/24", pop_name="pop-a", base_rtt_ms=20.0, is_anycast=True)

    def test_positive_rtt(self):
        with pytest.raises(ValueError):
            PathSpec(prefix="2.2.2.0/24", pop_name="pop-a", base_rtt_ms=0.0)


class TestSetupValidation:
    def test_needs_paths(self):
        with pytest.raises(ValueError):
            run_failover([])

    def test_failed_pop_must_be_used(self):
        paths = [PathSpec(prefix="3.3.3.0/24", pop_name="pop-b", base_rtt_ms=30.0)]
        with pytest.raises(ValueError):
            run_failover(paths, FailoverConfig(failed_pop="pop-a"))


class TestTimescales:
    def test_selects_lowest_latency_before_failure(self, result):
        assert result.active_prefix_at(59.0) == "2.2.2.0/24"

    def test_switches_to_next_best_unicast(self, result):
        assert result.active_prefix_at(70.0) == "3.3.3.0/24"

    def test_painter_downtime_rtt_scale(self, result):
        """Detection + switch within tens of ms (paper: ~30 ms, 1.3 RTT)."""
        assert result.detection_time_s is not None
        detection_ms = (result.detection_time_s - result.config.failure_time_s) * 1000
        assert detection_ms <= 2.0 * 20.0 + result.config.packet_interval_ms
        assert result.painter_downtime_ms < 100.0

    def test_anycast_loss_second_scale(self, result):
        assert 0.3 <= result.anycast_loss_s <= 3.0

    def test_anycast_reconvergence_tens_of_seconds(self, result):
        assert 5.0 <= result.anycast_reconvergence_s <= 30.0

    def test_dns_downtime_minute_scale(self, result):
        assert result.dns_downtime_s == 60.0

    def test_ordering_painter_anycast_dns(self, result):
        assert (
            result.painter_downtime_ms / 1000.0
            < result.anycast_loss_s
            < result.dns_downtime_s
        )


class TestSeries:
    def test_timeline_times_monotone(self, result):
        times = [t for t, _p, _r in result.timeline]
        assert times == sorted(times)

    def test_latency_series_shapes(self, result):
        series = result.path_latency_series(step_s=1.0)
        assert set(series) == {p.prefix for p in result.paths}
        # The failed unicast prefix is unreachable after the failure.
        dead = series["2.2.2.0/24"]
        assert all(math.isinf(rtt) for t, rtt in dead if t > 60.0)
        assert all(not math.isinf(rtt) for t, rtt in dead if t < 60.0)

    def test_anycast_transient_inflation(self, result):
        series = dict(result.path_latency_series(step_s=0.5)["1.1.1.0/24"])
        post_loss = [
            rtt
            for t, rtt in series.items()
            if result.config.failure_time_s + 2 < t < result.config.failure_time_s + 8
            and not math.isinf(rtt)
        ]
        final = series[max(series)]
        assert post_loss, "anycast should be back up within seconds"
        assert max(post_loss) > final  # transient inflation fades

    def test_bgp_updates_spike_at_failure(self, result):
        series = dict(result.bgp_update_series(bin_s=1.0))
        before = sum(count for t, count in series.items() if t < 59)
        after = sum(count for t, count in series.items() if 59 <= t <= 80)
        assert before == 0
        assert after > 10


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        a = run_failover(default_fig10_paths(), FailoverConfig(seed=3))
        b = run_failover(default_fig10_paths(), FailoverConfig(seed=3))
        assert a.painter_downtime_ms == b.painter_downtime_ms
        assert a.anycast_loss_s == b.anycast_loss_s

    def test_convergence_config_respected(self):
        slow = FailoverConfig(
            convergence=ConvergenceConfig(reachability_gap_s=2.5), seed=1
        )
        result = run_failover(default_fig10_paths(), slow)
        assert result.anycast_loss_s >= 1.8


class TestLogging:
    def test_failure_detection_logged(self, caplog):
        import logging

        with caplog.at_level(logging.INFO, logger="repro.traffic_manager.failover"):
            run_failover(default_fig10_paths())
        assert any("declared down" in record.message for record in caplog.records)


class TestFaultSchedules:
    """run_failover() under arbitrary FaultSchedules (chaos tentpole)."""

    def test_default_schedule_reproduces_fig10_exactly(self, result):
        """The legacy single-PoP outage and its explicit schedule are identical."""
        from repro.faults import FaultSchedule

        explicit = run_failover(
            default_fig10_paths(),
            FailoverConfig(schedule=FaultSchedule.single_pop_outage("pop-a", 60.0)),
        )
        assert explicit.detection_time_s == result.detection_time_s
        assert explicit.recovery_time_s == result.recovery_time_s
        assert explicit.painter_downtime_ms == result.painter_downtime_ms
        assert explicit.anycast_loss_s == result.anycast_loss_s
        assert explicit.anycast_reconvergence_s == result.anycast_reconvergence_s
        assert explicit.timeline == result.timeline

    def test_fig10_numbers_pinned(self, result):
        """Regression pin: the original Fig. 10 trace, bit-for-bit."""
        assert result.detection_time_s == pytest.approx(60.041000000012254, abs=1e-9)
        assert result.recovery_time_s == pytest.approx(60.045000000012266, abs=1e-9)

    def test_two_pop_sequential_outage(self):
        """TM-Edge survives back-to-back failures of both PoPs."""
        from repro.faults import FaultSchedule, PopOutage

        schedule = FaultSchedule(
            events=(
                PopOutage(start_s=60.0, pop_name="pop-a"),
                PopOutage(start_s=80.0, pop_name="pop-b", duration_s=20.0),
            )
        )
        result = run_failover(default_fig10_paths(), FailoverConfig(schedule=schedule))
        assert len(result.downtime_events) == 2
        assert result.recovery_count == 2
        assert result.active_prefix_at(59.0) == "2.2.2.0/24"
        assert result.active_prefix_at(75.0) == "3.3.3.0/24"
        # With both PoPs' unicast prefixes dark, the reconverged anycast
        # path (via the surviving announcement) is the only way out.
        assert result.active_prefix_at(95.0) == "1.1.1.0/24"
        # pop-b heals at t=100: the TM-Edge moves back to the better unicast.
        assert result.active_prefix_at(129.0) == "3.3.3.0/24"
        assert result.total_downtime_ms < 500.0

    def test_flapping_link_recovery(self):
        """Each down-phase costs ~1.3 RTT; the TM returns after each heal."""
        from repro.faults import FaultSchedule, LinkFlap

        schedule = FaultSchedule(
            events=(
                LinkFlap(
                    start_s=30.0, prefix="2.2.2.0/24",
                    down_s=1.0, up_s=5.0, cycles=3,
                ),
            )
        )
        result = run_failover(default_fig10_paths(), FailoverConfig(schedule=schedule))
        assert len(result.downtime_events) == 3
        assert result.recovery_count == 3
        for event in result.downtime_events:
            assert event.prefix == "2.2.2.0/24"
            assert event.duration_ms < 100.0
        # Between flaps and at the end the TM is back on the best prefix.
        assert result.active_prefix_at(129.0) == "2.2.2.0/24"

    def test_latency_spike_steers_away_and_back(self):
        from repro.faults import FaultSchedule, LatencySpike

        schedule = FaultSchedule(
            events=(
                LatencySpike(
                    start_s=30.0, duration_s=30.0, magnitude_ms=50.0, pop_name="pop-a"
                ),
            )
        )
        result = run_failover(default_fig10_paths(), FailoverConfig(schedule=schedule))
        # No packets are lost, so no downtime — only a latency-driven move.
        assert result.downtime_events == []
        assert result.active_prefix_at(45.0) == "3.3.3.0/24"
        assert result.active_prefix_at(129.0) == "2.2.2.0/24"

    def test_storm_deterministic_given_seed(self):
        from repro.faults import FaultSchedule

        storm = FaultSchedule.random_storm(
            ["pop-a", "pop-b"], duration_s=110.0, seed=7,
            prefixes=("2.2.2.0/24", "3.3.3.0/24"),
        )
        a = run_failover(default_fig10_paths(), FailoverConfig(schedule=storm, seed=7))
        b = run_failover(default_fig10_paths(), FailoverConfig(schedule=storm, seed=7))
        assert a.timeline == b.timeline
        assert a.total_downtime_ms == b.total_downtime_ms


class TestDataPlaneFailover:
    def test_concurrent_flows_remapped_on_switch(self):
        config = FailoverConfig(duration_s=80.0, concurrent_flows=10_000, seed=3)
        result = run_failover(default_fig10_paths(), config)
        # The PoP failure forces at least one selector switch, and every
        # flow pinned to the abandoned prefix moves in one batched call.
        assert result.flows_remapped > 0
        assert result.remap_events
        t, from_prefix, to_prefix, moved = result.remap_events[0]
        assert from_prefix != to_prefix
        assert moved > 0
        assert t >= config.failure_time_s

    def test_no_flows_means_no_remap_events(self):
        result = run_failover(
            default_fig10_paths(), FailoverConfig(duration_s=80.0)
        )
        assert result.flows_remapped == 0
        assert result.remap_events == []

    def test_supplied_plane_is_used(self):
        from repro.traffic_manager.dataplane import VectorFlowTable

        plane = VectorFlowTable()
        config = FailoverConfig(duration_s=80.0, concurrent_flows=5_000, seed=1)
        result = run_failover(default_fig10_paths(), config, data_plane=plane)
        # All seeded flows live in the supplied plane, on live prefixes.
        assert plane.flow_count() == 5_000
        live = set(plane.destinations())
        assert result.flows_remapped > 0
        assert "2.2.2.0/24" not in live  # the dead PoP's best prefix
