"""Algorithm 1: greedy structure, budgets, learning loop."""

import pytest

from repro.core.benefit import realized_benefit
from repro.core.orchestrator import PainterOrchestrator
from repro.experiments.harness import config_prefix_subset


@pytest.fixture(scope="module")
def solved(scenario_module):
    orchestrator = PainterOrchestrator(scenario_module, prefix_budget=5)
    config = orchestrator.solve(record_curve=True)
    return orchestrator, config


@pytest.fixture(scope="module")
def scenario_module():
    from repro.scenario import tiny_scenario

    return tiny_scenario(seed=3)


class TestSolve:
    def test_budget_respected(self, solved):
        _orchestrator, config = solved
        assert config.prefix_count <= 5

    def test_pairs_are_real_peerings(self, scenario_module, solved):
        _orchestrator, config = solved
        valid = {p.peering_id for p in scenario_module.deployment.peerings}
        for _prefix, pid in config.pairs():
            assert pid in valid

    def test_solve_deterministic(self, scenario_module):
        a = PainterOrchestrator(scenario_module, prefix_budget=4).solve()
        b = PainterOrchestrator(scenario_module, prefix_budget=4).solve()
        assert a == b

    def test_positive_benefit_requirement(self, scenario_module, solved):
        """Every greedy addition must have had positive marginal benefit, so
        the final config beats the empty one and each truncation beats the
        previous truncation."""
        orchestrator, config = solved
        evaluator = orchestrator.evaluator
        previous = 0.0
        for k in range(1, config.prefix_count + 1):
            benefit = evaluator.expected_benefit(config_prefix_subset(config, k))
            assert benefit >= previous - 1e-9
            previous = benefit
        assert previous > 0.0

    def test_budget_curve_recorded(self, solved):
        orchestrator, config = solved
        assert len(orchestrator.budget_curve) == config.prefix_count
        prefixes = [point.prefixes_used for point in orchestrator.budget_curve]
        assert prefixes == sorted(prefixes)
        for point in orchestrator.budget_curve:
            assert point.lower_benefit <= point.estimated_benefit <= point.upper_benefit + 1e-9

    def test_estimated_benefit_close_to_possible(self, scenario_module, solved):
        orchestrator, config = solved
        evaluation = orchestrator.evaluator.evaluate(config)
        total = scenario_module.total_possible_benefit()
        assert evaluation.estimated >= 0.5 * total

    def test_prefix_reuse_happens(self, solved):
        _orchestrator, config = solved
        assert config.reuse_factor() > 1.0

    def test_invalid_budget(self, scenario_module):
        with pytest.raises(ValueError):
            PainterOrchestrator(scenario_module, prefix_budget=0)


class TestLearning:
    def test_learning_never_loses_deployed_benefit(self, scenario_module):
        """Exploratory iterations may regress, but the deployed (best
        measured) configuration never does."""
        orchestrator = PainterOrchestrator(scenario_module, prefix_budget=5)
        result = orchestrator.learn(iterations=3)
        benefits = result.realized_benefits
        assert len(benefits) == 3
        deployed = realized_benefit(scenario_module, result.final_config)
        assert deployed >= benefits[0] - 1e-9
        assert deployed == max(benefits)

    def test_uncertainty_stays_bounded(self, scenario_module):
        """Pre-test uncertainty stays a small fraction of the total possible
        benefit throughout learning (the narrowing claim is asserted on the
        prototype-scale world in the Fig. 6c benchmark, where the initial
        model actually starts uncertain)."""
        orchestrator = PainterOrchestrator(scenario_module, prefix_budget=5)
        result = orchestrator.learn(iterations=3)
        possible = scenario_module.total_possible_benefit()
        for uncertainty in result.uncertainties:
            assert 0.0 <= uncertainty <= 0.25 * possible

    def test_observations_accumulate(self, scenario_module):
        orchestrator = PainterOrchestrator(scenario_module, prefix_budget=4)
        result = orchestrator.learn(iterations=2)
        assert result.iterations[0].new_preferences > 0
        assert orchestrator.model.observation_count > 0

    def test_config_accessors(self, scenario_module):
        orchestrator = PainterOrchestrator(scenario_module, prefix_budget=3)
        result = orchestrator.learn(iterations=2)
        assert result.last_config == result.iterations[-1].config
        best = max(result.iterations, key=lambda r: r.realized_benefit)
        assert result.final_config == best.config

    def test_early_stop_threshold(self, scenario_module):
        orchestrator = PainterOrchestrator(scenario_module, prefix_budget=3)
        result = orchestrator.learn(iterations=6, stop_threshold=1.0)
        # A 100% required gain stops after the second iteration.
        assert len(result.iterations) <= 3

    def test_invalid_iterations(self, scenario_module):
        orchestrator = PainterOrchestrator(scenario_module, prefix_budget=3)
        with pytest.raises(ValueError):
            orchestrator.learn(iterations=0)

    def test_empty_learning_result_raises(self):
        from repro.core.orchestrator import LearningResult

        with pytest.raises(ValueError):
            LearningResult().final_config


class TestAgainstBaselines:
    def test_painter_beats_baselines_at_same_budget(self, scenario_module):
        from repro.core.baselines import one_per_peering, one_per_pop

        budget = 4
        orchestrator = PainterOrchestrator(scenario_module, prefix_budget=budget)
        result = orchestrator.learn(iterations=3)
        painter = result.final_config  # deploy the best measured config
        painter_benefit = realized_benefit(scenario_module, painter)
        for baseline in (one_per_peering, one_per_pop):
            other = realized_benefit(scenario_module, baseline(scenario_module, budget))
            # The baseline builders rank candidates with *oracle* latencies
            # (maximally generous); PAINTER works from its routing model, so
            # allow a small oracle advantage on this tiny world.  At
            # realistic scales PAINTER dominates outright (Fig. 6 benches).
            assert painter_benefit >= 0.95 * other


class TestLogging:
    def test_learning_iterations_logged(self, scenario_module, caplog):
        import logging

        with caplog.at_level(logging.INFO, logger="repro.core.orchestrator"):
            PainterOrchestrator(scenario_module, prefix_budget=2).learn(iterations=1)
        assert any("learning iteration" in r.message for r in caplog.records)
