"""Algorithm 1: greedy structure, budgets, learning loop."""

import pytest

from repro.core.benefit import realized_benefit
from repro.core.orchestrator import PainterOrchestrator
from repro.experiments.harness import config_prefix_subset


@pytest.fixture(scope="module")
def solved(scenario_module):
    orchestrator = PainterOrchestrator(scenario_module, prefix_budget=5)
    config = orchestrator.solve(record_curve=True)
    return orchestrator, config


@pytest.fixture(scope="module")
def scenario_module():
    from repro.scenario import tiny_scenario

    return tiny_scenario(seed=3)


class TestSolve:
    def test_budget_respected(self, solved):
        _orchestrator, config = solved
        assert config.prefix_count <= 5

    def test_pairs_are_real_peerings(self, scenario_module, solved):
        _orchestrator, config = solved
        valid = {p.peering_id for p in scenario_module.deployment.peerings}
        for _prefix, pid in config.pairs():
            assert pid in valid

    def test_solve_deterministic(self, scenario_module):
        a = PainterOrchestrator(scenario_module, prefix_budget=4).solve()
        b = PainterOrchestrator(scenario_module, prefix_budget=4).solve()
        assert a == b

    def test_positive_benefit_requirement(self, scenario_module, solved):
        """Every greedy addition must have had positive marginal benefit, so
        the final config beats the empty one and each truncation beats the
        previous truncation."""
        orchestrator, config = solved
        evaluator = orchestrator.evaluator
        previous = 0.0
        for k in range(1, config.prefix_count + 1):
            benefit = evaluator.expected_benefit(config_prefix_subset(config, k))
            assert benefit >= previous - 1e-9
            previous = benefit
        assert previous > 0.0

    def test_budget_curve_recorded(self, solved):
        orchestrator, config = solved
        assert len(orchestrator.budget_curve) == config.prefix_count
        prefixes = [point.prefixes_used for point in orchestrator.budget_curve]
        assert prefixes == sorted(prefixes)
        for point in orchestrator.budget_curve:
            assert point.lower_benefit <= point.estimated_benefit <= point.upper_benefit + 1e-9

    def test_estimated_benefit_close_to_possible(self, scenario_module, solved):
        orchestrator, config = solved
        evaluation = orchestrator.evaluator.evaluate(config)
        total = scenario_module.total_possible_benefit()
        assert evaluation.estimated >= 0.5 * total

    def test_prefix_reuse_happens(self, solved):
        _orchestrator, config = solved
        assert config.reuse_factor() > 1.0

    def test_invalid_budget(self, scenario_module):
        with pytest.raises(ValueError):
            PainterOrchestrator(scenario_module, prefix_budget=0)


class TestLearning:
    def test_learning_never_loses_deployed_benefit(self, scenario_module):
        """Exploratory iterations may regress, but the deployed (best
        measured) configuration never does."""
        orchestrator = PainterOrchestrator(scenario_module, prefix_budget=5)
        result = orchestrator.learn(iterations=3)
        benefits = result.realized_benefits
        assert len(benefits) == 3
        deployed = realized_benefit(scenario_module, result.final_config)
        assert deployed >= benefits[0] - 1e-9
        assert deployed == max(benefits)

    def test_uncertainty_stays_bounded(self, scenario_module):
        """Pre-test uncertainty stays a small fraction of the total possible
        benefit throughout learning (the narrowing claim is asserted on the
        prototype-scale world in the Fig. 6c benchmark, where the initial
        model actually starts uncertain)."""
        orchestrator = PainterOrchestrator(scenario_module, prefix_budget=5)
        result = orchestrator.learn(iterations=3)
        possible = scenario_module.total_possible_benefit()
        for uncertainty in result.uncertainties:
            assert 0.0 <= uncertainty <= 0.25 * possible

    def test_observations_accumulate(self, scenario_module):
        orchestrator = PainterOrchestrator(scenario_module, prefix_budget=4)
        result = orchestrator.learn(iterations=2)
        assert result.iterations[0].new_preferences > 0
        assert orchestrator.model.observation_count > 0

    def test_config_accessors(self, scenario_module):
        orchestrator = PainterOrchestrator(scenario_module, prefix_budget=3)
        result = orchestrator.learn(iterations=2)
        assert result.last_config == result.iterations[-1].config
        best = max(result.iterations, key=lambda r: r.realized_benefit)
        assert result.final_config == best.config

    def test_early_stop_threshold(self, scenario_module):
        orchestrator = PainterOrchestrator(scenario_module, prefix_budget=3)
        result = orchestrator.learn(iterations=6, stop_threshold=1.0)
        # A 100% required gain stops after the second iteration.
        assert len(result.iterations) <= 3

    def test_invalid_iterations(self, scenario_module):
        orchestrator = PainterOrchestrator(scenario_module, prefix_budget=3)
        with pytest.raises(ValueError):
            orchestrator.learn(iterations=0)

    def test_empty_learning_result_raises(self):
        from repro.core.orchestrator import LearningResult

        with pytest.raises(ValueError):
            LearningResult().final_config


class TestAgainstBaselines:
    def test_painter_beats_baselines_at_same_budget(self, scenario_module):
        from repro.core.baselines import one_per_peering, one_per_pop

        budget = 4
        orchestrator = PainterOrchestrator(scenario_module, prefix_budget=budget)
        result = orchestrator.learn(iterations=5)
        painter = result.final_config  # deploy the best measured config
        painter_benefit = realized_benefit(scenario_module, painter)
        for baseline in (one_per_peering, one_per_pop):
            other = realized_benefit(scenario_module, baseline(scenario_module, budget))
            # The baseline builders rank candidates with *oracle* latencies
            # (maximally generous); PAINTER works from its routing model and
            # needs a few observation rounds to pin down ground-truth
            # preferences among the denser configs the exact greedy picks, so
            # allow a small oracle advantage on this tiny world.  At
            # realistic scales PAINTER dominates outright (Fig. 6 benches).
            assert painter_benefit >= 0.95 * other


class TestLogging:
    def test_learning_iterations_logged(self, scenario_module, caplog):
        import logging

        with caplog.at_level(logging.INFO, logger="repro.core.orchestrator"):
            PainterOrchestrator(scenario_module, prefix_budget=2).learn(iterations=1)
        assert any("learning iteration" in r.message for r in caplog.records)


class TestObservationDegradation:
    """learn() under fault-injected missing/stale observations."""

    def test_learn_completes_with_a_third_withheld(self, scenario_module):
        from repro.faults import ObservationFaults

        faults = ObservationFaults(missing_rate=0.4, seed=5)
        orchestrator = PainterOrchestrator(scenario_module, prefix_budget=3)
        result = orchestrator.learn(iterations=3, faults=faults)
        assert len(result.iterations) == 3
        observed = sum(r.observations_observed for r in result.iterations)
        missing = sum(r.observations_missing for r in result.iterations)
        total = observed + missing + sum(r.observations_stale for r in result.iterations)
        assert total > 0
        assert missing / total >= 0.30  # the acceptance bar: ≥30% withheld
        for record in result.iterations:
            assert record.realized_benefit >= 0.0

    def test_uncertainty_widened_by_degradation(self, scenario_module):
        from repro.faults import ObservationFaults

        orchestrator = PainterOrchestrator(scenario_module, prefix_budget=3)
        faults = ObservationFaults(missing_rate=0.4, seed=5)
        result = orchestrator.learn(iterations=2, faults=faults)
        for record in result.iterations:
            clean_band = record.upper_benefit - record.estimated_benefit
            assert record.degraded_fraction > 0.0
            assert record.uncertainty == pytest.approx(
                clean_band * (1.0 + record.degraded_fraction)
            )
            assert record.uncertainty > clean_band

    def test_degraded_learning_deterministic_given_seed(self, scenario_module):
        from repro.faults import ObservationFaults

        def run():
            faults = ObservationFaults(missing_rate=0.35, stale_rate=0.1, seed=11)
            orchestrator = PainterOrchestrator(scenario_module, prefix_budget=3)
            return orchestrator.learn(iterations=3, faults=faults)

        a, b = run(), run()
        assert a.realized_benefits == b.realized_benefits
        for ra, rb in zip(a.iterations, b.iterations):
            assert ra.observations_missing == rb.observations_missing
            assert ra.observations_stale == rb.observations_stale
            assert ra.config == rb.config

    def test_stale_observations_replay_previous_round(self, scenario_module):
        from repro.faults import ObservationFaults

        faults = ObservationFaults(stale_rate=0.5, seed=2)
        orchestrator = PainterOrchestrator(scenario_module, prefix_budget=3)
        result = orchestrator.learn(iterations=3, faults=faults)
        # Round 0 has no previous epoch: its stale draws degrade to missing.
        assert result.iterations[0].observations_stale == 0
        assert result.iterations[0].observations_missing > 0
        # Later rounds serve genuinely stale data from the last-seen cache.
        assert any(r.observations_stale > 0 for r in result.iterations[1:])
        assert orchestrator.model.stale_observation_count > 0

    def test_clean_run_reports_no_degradation(self, scenario_module):
        orchestrator = PainterOrchestrator(scenario_module, prefix_budget=2)
        result = orchestrator.learn(iterations=1)
        record = result.iterations[0]
        assert record.observations_missing == 0
        assert record.observations_stale == 0
        assert record.degraded_fraction == 0.0
        assert record.uncertainty == pytest.approx(
            record.upper_benefit - record.estimated_benefit
        )

    def test_observation_report_accounting(self, scenario_module):
        from repro.core import ObservationReport

        empty = ObservationReport()
        assert empty.total == 0
        assert empty.degraded_fraction == 0.0
        report = ObservationReport(learned=4, observed=6, missing=3, stale=1)
        assert report.total == 10
        assert report.degraded_fraction == pytest.approx(0.4)


class TestOrchestratorConfigAPI:
    def test_config_object_constructor(self, scenario_module):
        from repro.core.orchestrator import OrchestratorConfig

        config = OrchestratorConfig(prefix_budget=3, d_reuse_km=2000.0)
        orchestrator = PainterOrchestrator(scenario_module, config)
        assert orchestrator.config is config
        assert orchestrator.prefix_budget == 3

    def test_legacy_keyword_form_warns_but_works(self, scenario_module):
        import warnings

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            orchestrator = PainterOrchestrator(scenario_module, prefix_budget=3)
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )
        assert orchestrator.prefix_budget == 3

    def test_legacy_positional_budget_warns(self, scenario_module):
        import warnings

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            orchestrator = PainterOrchestrator(scenario_module, 3)
        assert any(issubclass(w.category, DeprecationWarning) for w in caught)
        assert orchestrator.prefix_budget == 3

    def test_legacy_and_config_together_rejected(self, scenario_module):
        from repro.core.orchestrator import OrchestratorConfig

        with pytest.raises(TypeError):
            PainterOrchestrator(
                scenario_module, OrchestratorConfig(prefix_budget=3), prefix_budget=4
            )

    def test_missing_budget_rejected(self, scenario_module):
        with pytest.raises(TypeError):
            PainterOrchestrator(scenario_module)

    def test_config_validates_budget(self):
        from repro.core.orchestrator import OrchestratorConfig

        with pytest.raises(ValueError):
            OrchestratorConfig(prefix_budget=0)

    def test_legacy_positional_budget_with_extra_kwargs_coerced(
        self, scenario_module
    ):
        import warnings

        from repro.core.orchestrator import OrchestratorConfig

        def fixed_latency(ug, pid):
            return 42.0

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            orchestrator = PainterOrchestrator(
                scenario_module,
                3,
                d_reuse_km=1234.0,
                latency_of=fixed_latency,
                allow_reuse=False,
            )
        assert any(issubclass(w.category, DeprecationWarning) for w in caught)
        # Every legacy kwarg must land in the resolved config, and the
        # coerced form must equal the explicit modern construction.
        assert orchestrator.config == OrchestratorConfig(
            prefix_budget=3,
            d_reuse_km=1234.0,
            latency_of=fixed_latency,
            allow_reuse=False,
        )
        assert orchestrator.config.d_reuse_km == 1234.0
        assert orchestrator.config.latency_of is fixed_latency
        assert orchestrator.config.allow_reuse is False

    def test_budget_given_positionally_and_by_keyword_rejected(
        self, scenario_module
    ):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(TypeError, match="both positionally and by keyword"):
                PainterOrchestrator(scenario_module, 3, prefix_budget=4)

    def test_non_config_positional_rejected(self, scenario_module):
        with pytest.raises(TypeError, match="must be an OrchestratorConfig"):
            PainterOrchestrator(scenario_module, "4")

    def test_legacy_kwargs_reach_model_and_evaluator(self, scenario_module):
        """Coerced legacy kwargs must configure the same collaborators."""
        import warnings

        from repro.core.orchestrator import OrchestratorConfig

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = PainterOrchestrator(
                scenario_module, prefix_budget=3, d_reuse_km=500.0
            )
        modern = PainterOrchestrator(
            scenario_module, OrchestratorConfig(prefix_budget=3, d_reuse_km=500.0)
        )
        assert legacy.model.d_reuse_km == modern.model.d_reuse_km == 500.0
        assert legacy.config == modern.config

    def test_legacy_solution_identical_to_config_solution(self, scenario_module):
        import warnings

        from repro.core.orchestrator import OrchestratorConfig

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = PainterOrchestrator(scenario_module, prefix_budget=4).solve()
        modern = PainterOrchestrator(
            scenario_module, OrchestratorConfig(prefix_budget=4)
        ).solve()
        assert legacy == modern
