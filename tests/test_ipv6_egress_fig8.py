"""IPv6 feasibility (§2.4), egress coexistence (§6), and Fig. 8."""

import pytest

from repro.core.orchestrator import PainterOrchestrator
from repro.egress.coexistence import (
    DirectionalModel,
    EgressOptimizer,
    evaluate_coexistence,
)
from repro.topology.ipv6 import (
    DualStackCatalog,
    DualStackConfig,
    IPV6_FIB_COST_FACTOR,
    analyze_ipv6_feasibility,
)


class TestIpv6:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            DualStackConfig(transit_v6_prob=1.5)

    def test_dual_stack_deterministic(self, scenario):
        a = DualStackCatalog(scenario.deployment, DualStackConfig(seed=4))
        b = DualStackCatalog(scenario.deployment, DualStackConfig(seed=4))
        assert a.v6_peering_ids() == b.v6_peering_ids()

    def test_v6_fraction_between_probs(self, small_scenario):
        catalog = DualStackCatalog(
            small_scenario.deployment, DualStackConfig(seed=1)
        )
        # Mixture of transit (0.85) and peer (0.55) probabilities.
        assert 0.4 <= catalog.v6_fraction() <= 0.95

    def test_feasibility_loses_paths(self, small_scenario):
        dual = DualStackCatalog(small_scenario.deployment, DualStackConfig(seed=1))
        feasibility = analyze_ipv6_feasibility(small_scenario.catalog, dual)
        assert 0.0 < feasibility.exposable_path_fraction < 1.0
        assert feasibility.paths_lost_fraction > 0.0
        assert feasibility.fib_cost_factor == IPV6_FIB_COST_FACTOR

    def test_full_v6_exposes_everything(self, scenario):
        dual = DualStackCatalog(
            scenario.deployment,
            DualStackConfig(seed=1, transit_v6_prob=1.0, peer_v6_prob=1.0),
        )
        feasibility = analyze_ipv6_feasibility(scenario.catalog, dual)
        assert feasibility.exposable_path_fraction == pytest.approx(1.0)
        assert feasibility.v6_peering_fraction == pytest.approx(1.0)


class TestEgressCoexistence:
    @pytest.fixture(scope="class")
    def setup(self, scenario):
        orchestrator = PainterOrchestrator(scenario, prefix_budget=4)
        orchestrator.learn(iterations=2)
        config = orchestrator.solve()
        return scenario, config

    def test_split_preserves_rtt(self, scenario):
        model = DirectionalModel(scenario, seed=1)
        ug = scenario.user_groups[0]
        for peering in scenario.deployment.peerings[:10]:
            split = model.split(ug, peering)
            rtt = scenario.latency_model.latency_ms(ug, peering)
            assert split.rtt_ms == pytest.approx(rtt)
            assert split.ingress_ms > 0 and split.egress_ms > 0

    def test_asymmetry_bounds(self, scenario):
        with pytest.raises(ValueError):
            DirectionalModel(scenario, asymmetry=0.6)

    def test_egress_optimizer_never_worse_than_default(self, scenario):
        model = DirectionalModel(scenario, seed=1)
        optimizer = EgressOptimizer(scenario, model)
        for ug in scenario.user_groups[:15]:
            assert optimizer.best_egress_ms(ug) <= optimizer.default_egress_ms(ug) + 1e-9

    def test_combinations_ordered(self, setup):
        scenario, config = setup
        result = evaluate_coexistence(scenario, config)
        # Each system alone helps; both together is best.
        assert result.painter_only <= result.neither + 1e-9
        assert result.egress_only <= result.neither + 1e-9
        assert result.both <= min(result.painter_only, result.egress_only) + 1e-9

    def test_gains_approximately_additive(self, setup):
        """The §6 coexistence claim: the systems act independently."""
        scenario, config = setup
        result = evaluate_coexistence(scenario, config)
        assert result.painter_gain > 0
        assert result.egress_gain > 0
        assert 0.7 <= result.additivity <= 1.1


class TestFig8:
    def test_table_shape(self, scenario):
        from repro.experiments.fig8 import run_fig8

        result = run_fig8(scenario=scenario)
        mechanisms = result.column("mechanism")
        assert mechanisms == ["anycast", "dns", "bgp_tuning", "sdwan", "painter"]
        rows = {row[0]: row for row in result.rows}
        # PAINTER: most paths, RTT-scale failover, finest control.
        assert rows["painter"][3] >= rows["sdwan"][3]
        assert rows["painter"][4] < rows["dns"][4]
        assert rows["painter"][2] >= rows["bgp_tuning"][2]
