"""The compute-backend registry, kernels, and the bit-exactness contract.

Three layers of assurance:

* unit tests over the registry/selection policy (fallbacks must degrade,
  count, and warn — never crash);
* hypothesis differential properties: every *installed* backend must match
  the numpy reference bit-for-bit on adversarial inputs (NaN latencies,
  infinite baselines, shrinking reuse windows);
* end-to-end solve differentials: explicit backend / dense-matrix / parallel
  configurations must reproduce the serial numpy solver's configs and
  benefit curves exactly.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.orchestrator import OrchestratorConfig, PainterOrchestrator
from repro.kernels import (
    AUTO_ORDER,
    BackendUnavailable,
    ComputeBackend,
    MemoryBudgetExceeded,
    NumpyBackend,
    ScanContext,
    available_backends,
    coerce_backend,
    get_backend,
    plan_matrix_layout,
    registered_backends,
    resolve_backend,
)
from repro.kernels.numpy_backend import initial_gains, refresh_contrib
from repro.perf import PERF
from repro.scenario import tiny_scenario
from repro.telemetry import telemetry_session

# ---------------------------------------------------------------------------
# registry & selection policy
# ---------------------------------------------------------------------------


def test_registry_lists_all_known_backends() -> None:
    assert registered_backends() == ("cupy", "numba", "numpy")
    # numpy is the reference: always available, everywhere.
    assert "numpy" in available_backends()
    assert set(available_backends()) <= set(registered_backends())


def test_get_backend_returns_fresh_instances() -> None:
    a, b = get_backend("numpy"), get_backend("numpy")
    assert a is not b  # instances carry per-evaluator matrix state
    a.bind_latency_matrix(np.zeros((2, 2)))
    assert b.latency_matrix is None


def test_get_backend_unknown_name_raises() -> None:
    with pytest.raises(ValueError, match="unknown compute backend"):
        get_backend("fortran")
    with pytest.raises(ValueError, match="unknown compute backend"):
        resolve_backend("fortran")


def test_auto_resolves_to_an_available_backend_silently() -> None:
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # auto must never warn
        backend = resolve_backend("auto")
    assert backend.name in AUTO_ORDER
    assert backend.name in available_backends()


def test_explicit_unavailable_backend_degrades_to_numpy() -> None:
    missing = [n for n in registered_backends() if n not in available_backends()]
    if not missing:
        pytest.skip("every registered backend is installed here")
    PERF.reset()
    with telemetry_session("fallback") as journal:
        with pytest.warns(RuntimeWarning, match="falling back to the numpy"):
            backend = resolve_backend(missing[0])
    assert backend.name == "numpy"
    assert PERF.counter("kernels.fallbacks").value == 1
    events = journal.events("backend_fallback")
    assert len(events) == 1 and events[0]["backend"] == missing[0]


def test_coerce_backend_forms() -> None:
    assert coerce_backend(None).name == "numpy"
    assert coerce_backend("numpy").name == "numpy"
    instance = NumpyBackend()
    assert coerce_backend(instance) is instance
    with pytest.raises(TypeError, match="backend must be"):
        coerce_backend(3.14)


def test_warmup_time_lands_in_compile_timer() -> None:
    PERF.reset()
    resolve_backend("numpy")
    assert PERF.timer("kernels.compile_s").calls == 1


def test_bind_rejects_mismatched_distance_shape() -> None:
    backend = NumpyBackend()
    with pytest.raises(ValueError, match="distance matrix shape"):
        backend.bind_latency_matrix(np.zeros((3, 2)), np.zeros((2, 3)))


# ---------------------------------------------------------------------------
# matrix layout planning
# ---------------------------------------------------------------------------


def test_layout_plan_geometry_and_budget() -> None:
    plan = plan_matrix_layout(100_000, 1_970)
    assert plan.value_dtype == np.float64
    assert plan.index_dtype == np.int32  # rows fit in 31 bits
    assert plan.matrix_bytes == 100_000 * 1_970 * 8
    assert plan.total_bytes == 2 * plan.matrix_bytes
    assert plan.chunk_rows >= 1
    assert plan.n_chunks * plan.chunk_rows >= 100_000
    assert plan.fits_budget

    with pytest.raises(MemoryBudgetExceeded):
        plan_matrix_layout(100_000, 1_970, budget_bytes=plan.total_bytes - 1)
    capped = plan_matrix_layout(100_000, 1_970, budget_bytes=plan.total_bytes)
    capped.require_within_budget()


def test_layout_plan_tiny_world_is_single_chunk() -> None:
    plan = plan_matrix_layout(60, 30)
    assert plan.n_chunks == 1
    assert plan.chunk_rows == 60


# ---------------------------------------------------------------------------
# kernel reference semantics (numpy backend == the documented expression)
# ---------------------------------------------------------------------------


def test_initial_gains_nan_and_clamp_semantics() -> None:
    base = np.array([10.0, 10.0, 10.0, np.inf])
    lat = np.array([4.0, 25.0, np.nan, 3.0])
    out = initial_gains(base, lat)
    np.testing.assert_array_equal(out, [6.0, 0.0, 0.0, np.inf])


def test_refresh_contrib_shrink_and_kept_semantics() -> None:
    # Row 0: dist < d0 (window shrinks) -> contrib forced to 0, mask set.
    # Row 1: within the reuse window, measurable -> joins the kept set.
    # Row 2: beyond the window -> kept set unchanged, contrib from old best.
    dist = np.array([100.0, 500.0, 5000.0])
    lat = np.array([3.0, 5.0, 2.0])
    vol = np.array([1.0, 2.0, 4.0])
    d0 = np.array([200.0, 400.0, 400.0])
    csum = np.array([0.0, 10.0, 10.0])
    ccnt = np.array([0.0, 1.0, 1.0])
    ob = np.array([20.0, 20.0, 20.0])
    base = np.array([30.0, 30.0, 30.0])
    contrib, shrink = refresh_contrib(dist, lat, vol, d0, csum, ccnt, ob, base, 1000.0)
    assert shrink.tolist() == [True, False, False]
    assert contrib[0] == 0.0
    # Row 1: kept mean (10+5)/2 = 7.5, new best 7.5, gain 2*(20-7.5).
    assert contrib[1] == 2.0 * (20.0 - 7.5)
    # Row 2: not added; kept mean 10, best min(30,10)=10, gain 4*(20-10).
    assert contrib[2] == 4.0 * (20.0 - 10.0)


# ---------------------------------------------------------------------------
# hypothesis differential: every installed backend vs the numpy reference
# ---------------------------------------------------------------------------

_OTHER_BACKENDS = [n for n in available_backends() if n != "numpy"]

_finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
_lat_elems = st.one_of(_finite, st.just(float("nan")))
_rows = st.integers(min_value=1, max_value=64)


def _arr(draw, n, elems):
    return draw(
        hnp.arrays(dtype=np.float64, shape=(n,), elements=elems)
    )


@pytest.mark.parametrize("backend_name", _OTHER_BACKENDS or ["numpy"])
@settings(max_examples=60)
@given(data=st.data())
def test_backends_match_numpy_bit_for_bit(backend_name: str, data) -> None:
    backend = resolve_backend(backend_name)
    n = data.draw(_rows)
    dist = _arr(data.draw, n, st.floats(min_value=0.0, max_value=25_000.0))
    lat = _arr(data.draw, n, _lat_elems)
    vol = _arr(data.draw, n, st.floats(min_value=0.0, max_value=1.0))
    d0 = _arr(
        data.draw,
        n,
        st.one_of(
            st.floats(min_value=0.0, max_value=25_000.0), st.just(float("inf"))
        ),
    )
    csum = _arr(data.draw, n, st.floats(min_value=0.0, max_value=1e6))
    ccnt = _arr(data.draw, n, st.integers(min_value=0, max_value=12).map(float))
    ob = _arr(data.draw, n, _finite)
    base = _arr(data.draw, n, st.one_of(_finite, st.just(float("inf"))))
    d_reuse = data.draw(st.floats(min_value=0.0, max_value=10_000.0))

    ref_c, ref_s = refresh_contrib(dist, lat, vol, d0, csum, ccnt, ob, base, d_reuse)
    got_c, got_s = backend.refresh_contrib(
        dist, lat, vol, d0, csum, ccnt, ob, base, d_reuse
    )
    # Bit-for-bit: compare raw representations, not values (NaN-safe too).
    np.testing.assert_array_equal(
        got_c.view(np.uint64), ref_c.view(np.uint64), strict=True
    )
    np.testing.assert_array_equal(got_s, ref_s, strict=True)

    ref_g = initial_gains(base, lat)
    got_g = backend.initial_gains(base, lat)
    np.testing.assert_array_equal(
        got_g.view(np.uint64), ref_g.view(np.uint64), strict=True
    )


# ---------------------------------------------------------------------------
# deprecated surfaces keep working (with warnings)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def world():
    return tiny_scenario(seed=11)


def test_adopt_drop_latency_matrix_shims_warn_and_work(world) -> None:
    orch = PainterOrchestrator(world, OrchestratorConfig(prefix_budget=1))
    evaluator = orch._evaluator
    matrix = np.full(
        (len(world.user_groups), len(world.deployment.peerings)), np.nan
    )
    with pytest.warns(DeprecationWarning, match="bind_latency_matrix"):
        evaluator.adopt_latency_matrix(matrix)
    assert evaluator.backend.latency_matrix is matrix
    with pytest.warns(DeprecationWarning, match="release_latency_matrix"):
        evaluator.drop_latency_matrix()
    assert evaluator.backend.latency_matrix is None


def test_begin_prefix_scan_legacy_kwargs_warn(world) -> None:
    orch = PainterOrchestrator(world, OrchestratorConfig(prefix_budget=1))
    evaluator = orch._evaluator
    with pytest.warns(DeprecationWarning, match="ScanContext"):
        evaluator.begin_prefix_scan(learned_ug_ids=frozenset())
    # The consolidated form is warning-free.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        evaluator.begin_prefix_scan(ScanContext(learned_ug_ids=frozenset()))
    evaluator.begin_prefix_scan()  # bare form stays supported, no warning


def test_begin_prefix_scan_rejects_mixed_forms(world) -> None:
    orch = PainterOrchestrator(world, OrchestratorConfig(prefix_budget=1))
    with pytest.raises(TypeError, match="either a ScanContext or the legacy"):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            orch._evaluator.begin_prefix_scan(
                ScanContext(), learned_ug_ids=frozenset()
            )


def test_solve_workers_kwarg_deprecated(world) -> None:
    orch = PainterOrchestrator(world, OrchestratorConfig(prefix_budget=1))
    with pytest.warns(DeprecationWarning, match="workers"):
        config = orch.solve(workers=0)
    assert config.pair_count > 0


# ---------------------------------------------------------------------------
# end-to-end differentials: configs/benefits identical across configurations
# ---------------------------------------------------------------------------


def _solve_signature(scenario, **config_kwargs):
    orch = PainterOrchestrator(
        scenario, OrchestratorConfig(prefix_budget=4, **config_kwargs)
    )
    try:
        config = orch.solve(record_curve=True)
        curve = [
            (p.prefixes_used, p.pairs_used, p.estimated_benefit)
            for p in orch.budget_curve
        ]
    finally:
        orch.close()
    return sorted(config.pairs()), curve


def test_every_installed_backend_solves_identically() -> None:
    scenario = tiny_scenario(seed=5)
    reference = _solve_signature(scenario, backend="numpy")
    for name in available_backends():
        assert _solve_signature(scenario, backend=name) == reference, name
    assert _solve_signature(scenario, backend="auto") == reference


def test_dense_matrix_mode_solves_identically() -> None:
    scenario = tiny_scenario(seed=5)
    reference = _solve_signature(scenario, backend="numpy")
    dense = _solve_signature(scenario, backend="numpy", dense_matrices=True)
    assert dense == reference


def test_parallel_pool_composes_with_explicit_backend() -> None:
    scenario = tiny_scenario(seed=5)
    reference = _solve_signature(scenario, backend="numpy")
    sharded = _solve_signature(scenario, backend="auto", workers=2)
    assert sharded == reference


def test_backend_instance_is_accepted_by_config() -> None:
    scenario = tiny_scenario(seed=5)
    backend = NumpyBackend()
    assert isinstance(backend, ComputeBackend)
    reference = _solve_signature(scenario, backend="numpy")
    assert _solve_signature(scenario, backend=backend) == reference


def test_orchestrator_config_validates_backend_type() -> None:
    with pytest.raises((TypeError, ValueError)):
        OrchestratorConfig(prefix_budget=1, backend=42)


def test_backend_unavailable_is_runtime_error() -> None:
    assert issubclass(BackendUnavailable, RuntimeError)
