"""ChaosHarness → controller wiring: storms drive the daemon directly.

The regression the soak PR pins down: translating a chaos storm through
``deltas_from_fault_schedule`` and feeding it to the controller must
produce *exactly* the installs a hand-fed copy of the same delta list
produces — the storm path adds weather, not nondeterminism.  Plus the
safety guard: a storm may never darken the deployment's last healthy PoP.
"""

from __future__ import annotations

import json

import pytest

from repro.controller import PopDown, PopUp
from repro.experiments.chaos import ChaosConfig, ChaosHarness

pytestmark = pytest.mark.soak


@pytest.fixture()
def harness():
    return ChaosHarness(ChaosConfig(storms=1, duration_s=900.0, seed=5))


def journal_bytes(checkpoint_dir):
    return (checkpoint_dir / "journal.jsonl").read_bytes()


def install_events(checkpoint_dir):
    lines = journal_bytes(checkpoint_dir).decode().splitlines()
    return [
        event
        for event in (json.loads(line) for line in lines[1:])
        if event["event"] == "controller_install"
    ]


class TestStormDrivenController:
    def test_storm_deltas_match_hand_fed_deltas(
        self, harness, scenario, tmp_path
    ):
        deltas = harness.controller_deltas(scenario, storm=0)
        assert deltas, "storm produced no controller deltas"

        stormy = harness.drive_controller(scenario, 0, tmp_path / "storm")
        hand_fed = harness.drive_controller(
            scenario, 0, tmp_path / "hand", deltas=list(deltas)
        )

        assert stormy.final_config == hand_fed.final_config
        assert stormy.iterations_run == hand_fed.iterations_run
        assert stormy.deltas_applied == hand_fed.deltas_applied
        assert install_events(tmp_path / "storm") == install_events(
            tmp_path / "hand"
        )
        assert journal_bytes(tmp_path / "storm") == journal_bytes(
            tmp_path / "hand"
        )

    def test_run_shape(self, harness, scenario, tmp_path):
        deltas = harness.controller_deltas(scenario, storm=0)
        result = harness.drive_controller(scenario, 0, tmp_path / "cp")
        assert result.final_config is not None
        assert result.deltas_applied == len(deltas)
        assert result.degradations == 0

    def test_storm_is_deterministic_per_index(self, harness, scenario):
        first = harness.controller_deltas(scenario, storm=0)
        again = harness.controller_deltas(scenario, storm=0)
        other = harness.controller_storm(scenario, storm=1)
        assert first == again
        assert other != harness.controller_storm(scenario, storm=0)


class TestLastPopGuard:
    def test_storm_never_darkens_every_pop(self, scenario):
        total = {p.name for p in scenario.deployment.pops}
        # A violent storm: far more outages than PoPs.
        harness = ChaosHarness(
            ChaosConfig(storms=1, duration_s=900.0, seed=1, intensity=10.0)
        )
        deltas = harness.controller_deltas(scenario, storm=0)
        raw = harness.controller_storm(scenario, storm=0)
        assert len(raw.events) >= len(total), "storm not violent enough"
        down = set()
        for delta in deltas:
            if isinstance(delta, PopDown):
                down.add(delta.pop_name)
            elif isinstance(delta, PopUp):
                down.discard(delta.pop_name)
            assert len(down) < len(total)

    def test_guard_drops_the_paired_heal_too(self, scenario):
        harness = ChaosHarness(
            ChaosConfig(storms=1, duration_s=900.0, seed=1, intensity=10.0)
        )
        deltas = harness.controller_deltas(scenario, storm=0)
        # A PopUp only survives the filter if some PopDown for the same
        # PoP did — a guard-dropped outage loses its heal as well.
        downed = {
            d.pop_name for d in deltas if isinstance(d, PopDown)
        }
        healed = {d.pop_name for d in deltas if isinstance(d, PopUp)}
        assert healed <= downed
