"""Loose wall-clock guards on the hot paths.

Not benchmarks — regression tripwires: if one of these suddenly takes 10x
longer, an accidental quadratic slipped in somewhere.  Bounds are generous
(CI machines vary); the point is catching order-of-magnitude regressions.
"""

import time

import pytest

from repro.core.orchestrator import PainterOrchestrator
from repro.scenario import tiny_scenario


def _timed(callable_, limit_s):
    start = time.perf_counter()
    result = callable_()
    elapsed = time.perf_counter() - start
    assert elapsed < limit_s, f"took {elapsed:.2f}s (limit {limit_s}s)"
    return result


class TestPerformanceGuards:
    def test_tiny_scenario_builds_fast(self):
        _timed(lambda: tiny_scenario(seed=9), limit_s=5.0)

    def test_tiny_solve_fast(self):
        world = tiny_scenario(seed=9)
        _timed(
            lambda: PainterOrchestrator(world, prefix_budget=5).solve(), limit_s=10.0
        )

    def test_anycast_latencies_fast(self):
        world = tiny_scenario(seed=9)
        _timed(world.anycast_latencies, limit_s=5.0)

    def test_bgp_propagation_scales(self):
        """Propagation over the tiny graph completes in milliseconds and its
        cache makes repeats nearly free."""
        from repro.bgp.simulator import BGPSimulator

        world = tiny_scenario(seed=9)
        sim = BGPSimulator(world.graph, origin_asn=1)
        targets = sorted({p.peer_asn for p in world.deployment.peerings})

        def run_many():
            for _ in range(50):
                sim.propagate("10.0.0.0/24", targets)

        _timed(run_many, limit_s=5.0)

    def test_failover_simulation_fast(self):
        from repro.traffic_manager.failover import default_fig10_paths, run_failover

        _timed(lambda: run_failover(default_fig10_paths()), limit_s=5.0)

    def test_full_experiment_on_tiny_world_fast(self):
        from repro.experiments.fig11 import run_fig11a, run_fig11b

        world = tiny_scenario(seed=9)
        _timed(lambda: (run_fig11a(scenario=world), run_fig11b(scenario=world)), limit_s=20.0)
