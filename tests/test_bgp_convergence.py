"""Convergence dynamics: loss windows, churn decay, latency penalties."""

import math

import pytest

from repro.bgp.convergence import (
    ConvergenceConfig,
    churn_series,
    simulate_withdrawal,
)


@pytest.fixture()
def trace():
    return simulate_withdrawal(60.0, seed=1)


class TestConfigValidation:
    def test_bad_mrai(self):
        with pytest.raises(ValueError):
            ConvergenceConfig(mrai_s=0)

    def test_bad_depth(self):
        with pytest.raises(ValueError):
            ConvergenceConfig(exploration_depth=0)

    def test_bad_decay(self):
        with pytest.raises(ValueError):
            ConvergenceConfig(update_decay=1.0)


class TestTrace:
    def test_times_monotone(self, trace):
        times = [e.time_s for e in trace.events]
        assert times == sorted(times)
        assert times[0] == trace.withdrawal_time_s

    def test_loss_window_around_a_second(self, trace):
        assert 0.5 <= trace.loss_duration_s <= 2.0

    def test_reconvergence_seconds_scale(self, trace):
        elapsed = trace.reconvergence_time_s - trace.withdrawal_time_s
        assert 5.0 <= elapsed <= 30.0

    def test_updates_decay_over_rounds(self, trace):
        reachable_updates = [e.updates for e in trace.events if e.reachable]
        assert reachable_updates[0] > reachable_updates[-1]

    def test_unreachable_before_withdrawal_is_fine(self, trace):
        assert trace.latency_penalty_at(0.0) == 0.0
        assert trace.is_reachable_at(0.0)

    def test_unreachable_during_gap(self, trace):
        just_after = trace.withdrawal_time_s + 0.01
        assert math.isinf(trace.latency_penalty_at(just_after))
        assert not trace.is_reachable_at(just_after)

    def test_penalty_fades_to_zero(self, trace):
        assert trace.latency_penalty_at(trace.reconvergence_time_s + 1) == 0.0

    def test_penalty_monotone_decreasing_once_reachable(self, trace):
        reachable_events = [e for e in trace.events if e.reachable]
        penalties = [e.latency_penalty_ms for e in reachable_events]
        assert penalties == sorted(penalties, reverse=True)

    def test_total_updates_positive(self, trace):
        assert trace.total_updates > 0
        window = trace.updates_in_window(59.0, 90.0)
        assert window == trace.total_updates  # everything falls in the window

    def test_deterministic_for_seed(self):
        a = simulate_withdrawal(10.0, seed=7)
        b = simulate_withdrawal(10.0, seed=7)
        assert [(e.time_s, e.updates) for e in a.events] == [
            (e.time_s, e.updates) for e in b.events
        ]


class TestChurnSeries:
    def test_bins_cover_updates(self, trace):
        series = churn_series(trace, 0.0, 130.0, bin_s=1.0)
        assert sum(count for _t, count in series) == trace.total_updates

    def test_quiet_before_withdrawal(self, trace):
        series = churn_series(trace, 0.0, 59.0, bin_s=1.0)
        assert all(count == 0 for _t, count in series)

    def test_bad_bin_rejected(self, trace):
        with pytest.raises(ValueError):
            churn_series(trace, 0.0, 10.0, bin_s=0.0)
