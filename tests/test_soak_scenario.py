"""End-to-end soak differentials and SLO edge cases.

The soak harness's headline claims, proven rather than asserted:

* **Determinism** — identical seeds produce byte-identical journals and
  bit-identical SLO-ledger fingerprints, across reruns, across a
  stop/resume cycle, and (in the ``slow`` tier) across a real
  SIGKILL/resume through the CLI.
* **Oracle agreement** — the scalar reference data plane and the
  production :class:`VectorFlowTable` yield bit-identical ledgers.
* **SLO edge cases** — flows spanning an outage boundary fail over
  without breaking flow conservation, zero-flow windows and flash-crowd
  admit bursts account cleanly, and a breaker trip mid-soak degrades the
  controller without corrupting the ledger.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys

import pytest

from repro.controller import ControllerConfig, PainterController
from repro.core.orchestrator import OrchestratorConfig
from repro.scenario import tiny_scenario
from repro.soak import (
    SLOLedger,
    SoakConfig,
    SoakDriver,
    SoakError,
    build_soak_deltas,
    make_load,
    regional_storm,
    run_soak,
)

pytestmark = pytest.mark.soak

#: Small-but-complete soak: storms, flash crowds, flow expiry all active.
BASE = dict(
    preset="tiny",
    seed=3,
    windows=6,
    window_s=600.0,
    arrivals_per_window=1_500,
    flow_lifetime_windows=2,
    shifts_per_window=4,
    storm_regions=1,
    flash_crowds=1,
)


def soak_config(**overrides) -> SoakConfig:
    params = dict(BASE)
    params.update(overrides)
    return SoakConfig(**params)


def journal_events(path, kind=None):
    events = [json.loads(line) for line in path.read_text().splitlines()[1:]]
    if kind is not None:
        events = [e for e in events if e.get("event") == kind]
    return events


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """One uninterrupted run: ground truth for every differential."""
    root = tmp_path_factory.mktemp("soak-reference")
    result = run_soak(soak_config(), root / "cp")
    return {
        "result": result,
        "journal": result.controller.journal_path.read_bytes(),
        "fingerprint": result.ledger.fingerprint(),
    }


class TestSeedDifferential:
    def test_identical_seeds_identical_journals_and_ledgers(
        self, tmp_path, reference
    ):
        rerun = run_soak(soak_config(), tmp_path / "cp")
        assert (
            rerun.controller.journal_path.read_bytes()
            == reference["journal"]
        )
        assert rerun.ledger.fingerprint() == reference["fingerprint"]
        rerun.ledger.check_invariants()

    def test_different_seed_diverges(self, tmp_path, reference):
        other = run_soak(soak_config(seed=4), tmp_path / "cp")
        assert other.ledger.fingerprint() != reference["fingerprint"]

    def test_scalar_oracle_matches_vector_plane(self, tmp_path, reference):
        oracle = run_soak(soak_config(plane="scalar"), tmp_path / "cp")
        assert oracle.ledger.fingerprint() == reference["fingerprint"]
        # Throughput figures are wall-clock and excluded from the
        # fingerprint, but both planes steered the same flow count.
        assert (
            oracle.flows_forwarded
            == reference["result"].flows_forwarded
        )

    def test_stop_and_resume_matches_uninterrupted(
        self, tmp_path, reference
    ):
        checkpoint = tmp_path / "cp"
        first = run_soak(soak_config(stop_after=3), checkpoint)
        assert first.controller.iterations_run == 3
        resumed = run_soak(soak_config(), checkpoint)
        assert resumed.controller.resumed_from == 2
        assert (
            resumed.controller.journal_path.read_bytes()
            == reference["journal"]
        )
        assert resumed.ledger.fingerprint() == reference["fingerprint"]

    def test_summary_and_report_round_trip(self, tmp_path, reference):
        result = reference["result"]
        summary = result.summary()
        assert summary["accounting_errors"] == 0
        assert summary["fingerprint"] == reference["fingerprint"]
        out = tmp_path / "slo.json"
        result.write_slo_report(out)
        document = json.loads(out.read_text())
        assert document["kind"] == "painter-soak-slo"
        restored = SLOLedger.from_state(document["ledger"])
        assert restored.fingerprint() == reference["fingerprint"]


class TestFlowConservation:
    def test_flows_spanning_outages_move_instead_of_vanishing(
        self, reference
    ):
        """Across remaps and expiries, the live-flow count balances."""
        result = reference["result"]
        events = journal_events(
            result.controller.journal_path, "soak_window"
        )
        assert len(events) == BASE["windows"]
        live = 0
        for event in events:
            live += event["served"] - event["ended"]
            assert event["live_flows"] == live
            assert (
                event["offered"]
                == event["served"] + event["unroutable"] + event["shed"]
            )
        # The storm + config churn actually exercised failover: admitted
        # flows crossed a dead-destination boundary and were moved.
        assert sum(e["remapped"] for e in events) > 0
        assert result.flows_moved == sum(e["remapped"] for e in events)
        assert events[-1]["accounting_errors"] == 0


class TestSLOEdgeCases:
    def test_zero_flow_soak_accounts_cleanly(self, tmp_path):
        result = run_soak(
            soak_config(arrivals_per_window=0, flash_crowds=0),
            tmp_path / "cp",
        )
        result.ledger.check_invariants()
        assert int(result.ledger.offered.sum()) == 0
        assert result.ledger.p99_ms() is None
        assert result.ledger.windows_accounted == BASE["windows"]

    def test_flash_crowd_burst_is_shed_not_miscounted(self, tmp_path):
        scenario = tiny_scenario(seed=BASE["seed"])
        cfg = soak_config(admit_cap=None)
        load = make_load(scenario, cfg)
        # Cap below the flash-crowd peak but above the calm windows, so
        # only the burst sheds.
        arrivals = [load.arrivals(w) for w in range(cfg.windows)]
        cap = max(min(arrivals), 1)
        assert max(arrivals) > cap
        result = run_soak(soak_config(admit_cap=cap), tmp_path / "cp")
        result.ledger.check_invariants()
        assert int(result.ledger.shed.sum()) > 0
        assert result.summary()["accounting_errors"] == 0

    def test_breaker_trip_mid_soak_keeps_the_ledger_clean(
        self, tmp_path, monkeypatch
    ):
        """A diverging warm solver trips the breaker; the soak rides on."""
        scenario = tiny_scenario(seed=BASE["seed"])
        cfg = soak_config(verify_every=1)
        load = make_load(scenario, cfg)
        deltas, _storm = build_soak_deltas(scenario, cfg, load)
        driver = SoakDriver(scenario, cfg, load)
        controller = PainterController(
            scenario,
            OrchestratorConfig(prefix_budget=cfg.prefix_budget),
            ControllerConfig(
                checkpoint_dir=tmp_path / "cp",
                verify_every=1,
                breaker_cooldown=2,
                run_name="soak",
            ),
            deltas,
            extension=driver,
        )
        orch = controller.orchestrator
        real_solve_warm = orch.solve_warm

        def tampered_solve_warm(*args, **kwargs):
            config = real_solve_warm(*args, **kwargs)
            if orch.last_warm_stats.mode == "warm":
                prefix = config.prefixes[0]
                pid = sorted(config.peerings_for(prefix))[0]
                config.remove(prefix, pid)
            return config

        monkeypatch.setattr(orch, "solve_warm", tampered_solve_warm)
        try:
            result = controller.run()
        finally:
            controller.close()
        assert result.divergences >= 1
        kinds = {
            e["event"] for e in journal_events(result.journal_path)
        }
        assert "controller_breaker_open" in kinds
        # Every window was still simulated and accounted, error-free.
        driver.ledger.check_invariants()
        assert driver.ledger.windows_accounted == cfg.windows


class TestAlignmentAndStorm:
    def test_misaligned_delta_stream_is_rejected(self):
        scenario = tiny_scenario(seed=BASE["seed"])
        cfg = soak_config(windows=8)
        short_load = make_load(scenario, soak_config(windows=4))
        with pytest.raises(SoakError, match="window-aligned"):
            build_soak_deltas(scenario, cfg, short_load)

    def test_storm_snaps_to_window_boundaries(self):
        scenario = tiny_scenario(seed=BASE["seed"])
        windows, window_s = 8, 450.0
        storm = regional_storm(
            scenario, seed=11, windows=windows, window_s=window_s
        )
        assert storm.events
        all_regions = {p.metro.region for p in scenario.deployment.pops}
        stormed = set()
        for event in storm.events:
            assert event.start_s % window_s == 0
            assert event.duration_s % window_s == 0
            assert event.start_s >= window_s
            end = event.start_s + event.duration_s
            assert end <= (windows - 1) * window_s
            pop = next(
                p
                for p in scenario.deployment.pops
                if p.name == event.pop_name
            )
            stormed.add(pop.metro.region)
        # At least one region always rides out the storm untouched.
        assert stormed < all_regions

    def test_single_region_world_gets_no_storm(self):
        from repro.topology.cloud import CloudDeployment
        from repro.topology.geo import metro_by_name

        deployment = CloudDeployment(name="one-region")
        deployment.add_pop("pop-nyc", metro_by_name("new-york"))
        deployment.add_pop("pop-iad", metro_by_name("ashburn"))

        class _World:
            pass

        world = _World()
        world.deployment = deployment
        # Both pops share us-east: no region can safely be stormed.
        storm = regional_storm(world, seed=0, windows=8, window_s=100.0)
        assert storm.events == ()


# -- out-of-process durability (slow tier) ----------------------------------

CLI_CRASH_POINTS = ("mid_journal", "before_checkpoint", "after_checkpoint")


def soak_cmd(checkpoint_dir, slo_out, *extra):
    return [
        sys.executable,
        "-m",
        "repro",
        "soak",
        "--preset",
        "tiny",
        "--seed",
        "3",
        "--windows",
        "6",
        "--day",
        "3600",
        "--arrivals",
        "1500",
        "--shifts",
        "4",
        "--checkpoint-dir",
        str(checkpoint_dir),
        "--slo-out",
        str(slo_out),
        *extra,
    ]


def run_cli(cmd):
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    return subprocess.run(
        cmd, capture_output=True, text=True, env=env, cwd=os.getcwd()
    )


@pytest.mark.slow
@pytest.mark.skipif(
    os.name != "posix", reason="SIGKILL crash injection requires POSIX"
)
class TestKillAndResumeCLI:
    @pytest.fixture(scope="class")
    def cli_reference(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("soak-cli-reference")
        slo = root / "slo.json"
        proc = run_cli(soak_cmd(root / "cp", slo))
        assert proc.returncode == 0, proc.stderr
        return {
            "journal": (root / "cp" / "journal.jsonl").read_bytes(),
            "ledger": json.loads(slo.read_text())["ledger"],
            "stdout": proc.stdout,
        }

    @pytest.mark.parametrize("crash_point", CLI_CRASH_POINTS)
    def test_sigkill_then_resume_is_bit_identical(
        self, tmp_path, cli_reference, crash_point
    ):
        checkpoint = tmp_path / "cp"
        slo = tmp_path / "slo.json"
        crashed = run_cli(
            soak_cmd(
                checkpoint,
                slo,
                "--crash-at",
                "3",
                "--crash-point",
                crash_point,
            )
        )
        assert crashed.returncode in (
            -signal.SIGKILL,
            128 + signal.SIGKILL,
        )
        assert not slo.exists()

        resumed = run_cli(soak_cmd(checkpoint, slo))
        assert resumed.returncode == 0, resumed.stderr
        assert "resumed from checkpoint" in resumed.stdout
        assert (
            checkpoint / "journal.jsonl"
        ).read_bytes() == cli_reference["journal"]
        ledger = SLOLedger.from_state(json.loads(slo.read_text())["ledger"])
        reference_ledger = SLOLedger.from_state(cli_reference["ledger"])
        assert ledger.fingerprint() == reference_ledger.fingerprint()
        assert "fingerprint " + ledger.fingerprint() in cli_reference["stdout"]
