"""Community-steering tests: strategy conformance + differential identities.

Three layers:

* **conformance** — a property harness over *every* registered steering
  strategy (:mod:`repro.steering.registry`): choices stay inside the UG's
  policy-compliant candidate set, are deterministic in the seed, and never
  leave a UG worse than anycast on modeled latency.  New strategies get the
  harness for free by registering.
* **differentials** — no-op actions must be *bit-identical* to the plain
  advertisement path: prepend ×0 shares the propagation cache with the
  untagged announcement, selective-announce toward all peers equals the
  unconditional announcement.
* **encoding** — community strings round-trip through parse/compile.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.steering.communities import (
    AnnounceToAction,
    CommunityAnnouncement,
    CommunityRouting,
    MedAction,
    NoExportAction,
    PrependAction,
    communities_benefit,
    parse_community,
    solve_communities,
)
from repro.steering.registry import run_strategy, strategy_names


# ---------------------------------------------------------------------------
# Strategy conformance (properties (a), (b), (c) of the registry contract)
# ---------------------------------------------------------------------------


_OUTCOMES = {}


def _cached_outcome(name, scenario, budget, seed):
    key = (name, budget, seed)
    if key not in _OUTCOMES:
        _OUTCOMES[key] = run_strategy(name, scenario, budget=budget, seed=seed)
    return _OUTCOMES[key]


@pytest.mark.parametrize("name", strategy_names())
@settings(max_examples=4, deadline=None)
@given(budget=st.sampled_from([2, 4, 8]), seed=st.integers(min_value=0, max_value=2))
def test_strategy_conformance(scenario, name, budget, seed):
    outcome = _cached_outcome(name, scenario, budget, seed)

    # (b) deterministic in (scenario, budget, seed): a fresh run is equal.
    rerun = run_strategy(name, scenario, budget=budget, seed=seed)
    assert rerun == outcome

    assert len(outcome.choices) == len(scenario.user_groups)
    for ug, choice in zip(scenario.user_groups, outcome.choices):
        assert choice.ug_id == ug.ug_id
        anycast = scenario.anycast_latency_ms(ug)
        if choice.peering_id is None:
            # Staying on anycast reports the anycast latency.
            assert choice.latency_ms == anycast
            continue
        # (a) every non-None choice is in the UG's candidate set.
        assert choice.peering_id in scenario.catalog.ingress_ids(ug)
        # (c) never worse than anycast on modeled latency.
        assert choice.latency_ms < anycast


def test_strategy_names_cover_known_mechanisms():
    names = strategy_names()
    for expected in ("painter", "communities", "pecan", "dns", "sdwan"):
        assert expected in names


def test_unknown_strategy_raises(scenario):
    with pytest.raises(KeyError):
        run_strategy("no-such-strategy", scenario)


# ---------------------------------------------------------------------------
# Differential: prepend ×0 is bit-identical to the plain advertisement path
# ---------------------------------------------------------------------------


def test_prepend_zero_shares_propagation_cache(scenario):
    routing = scenario.routing
    asns = sorted(CommunityRouting(scenario).peer_asns)
    allowed = frozenset(asns)
    for ug in scenario.user_groups[:20]:
        plain = routing.entering_asn_for(ug, allowed)
        zeroed = routing.entering_asn_for(ug, allowed, prepend={asns[0]: 0})
        assert plain == zeroed


def test_prepend_zero_announcement_is_noop(scenario):
    router = CommunityRouting(scenario)
    target_asn = sorted(router.peer_asns)[0]
    noop = CommunityAnnouncement()
    zeroed = CommunityAnnouncement(prepend=((target_asn, 0),))
    assert zeroed.is_noop is False or zeroed.prepend_map() == {}
    assert zeroed.prepend_map() == {}
    for ug in scenario.user_groups:
        a = router.ingress_for(ug, noop)
        b = router.ingress_for(ug, zeroed)
        assert (a is None) == (b is None)
        if a is not None:
            assert a.peering_id == b.peering_id
        assert router.latency_for(ug, noop) == router.latency_for(ug, zeroed)
    # Benefit curves are bit-identical too.
    assert communities_benefit(scenario, [zeroed]) == communities_benefit(
        scenario, [noop]
    )


def test_announce_to_all_equals_unconditional(scenario):
    router = CommunityRouting(scenario)
    noop = CommunityAnnouncement()
    everywhere = CommunityAnnouncement(announce=frozenset(router.peer_asns))
    assert everywhere.effective_peers(router.peer_asns) == frozenset(router.peer_asns)
    for ug in scenario.user_groups:
        a = router.ingress_for(ug, noop)
        b = router.ingress_for(ug, everywhere)
        if a is None:
            assert b is None
        else:
            assert b is not None and a.peering_id == b.peering_id
    assert communities_benefit(scenario, [everywhere]) == communities_benefit(
        scenario, [noop]
    )


def test_nonzero_prepend_changes_cache_key(scenario):
    """×0 must share the cache; ×3 must not silently alias it."""
    routing = scenario.routing
    router = CommunityRouting(scenario)
    asns = sorted(router.peer_asns)
    allowed = frozenset(asns)
    changed = 0
    for ug in scenario.user_groups:
        plain = routing.entering_asn_for(ug, allowed)
        pushed = routing.entering_asn_for(
            ug, allowed, prepend={asn: 3 for asn in asns[: len(asns) // 2]}
        )
        if plain != pushed:
            changed += 1
    assert changed > 0, "prepending half the peers moved no UG - not plausible"


# ---------------------------------------------------------------------------
# Encoding: community strings round-trip
# ---------------------------------------------------------------------------


def test_action_community_round_trip():
    actions = [
        PrependAction(peer_asn=64500, count=3),
        AnnounceToAction(peer_asn=64501),
        NoExportAction(peer_asn=64502),
        MedAction(peering_id=7, offset=-200),
    ]
    for action in actions:
        assert parse_community(action.community()) == action


@pytest.mark.parametrize(
    "junk",
    ["", "cloud:prepend", "cloud:prepend:a:b", "other:announce:1", "cloud:nope:1"],
)
def test_parse_community_rejects_junk(junk):
    with pytest.raises(ValueError):
        parse_community(junk)


@given(
    # announce=None (unconditional) and announce=∅ both encode to "no
    # announce tags", so the generator never emits the empty set.
    announce=st.one_of(
        st.none(),
        st.frozensets(
            st.integers(min_value=2, max_value=900), min_size=1, max_size=4
        ),
    ),
    no_export=st.frozensets(st.integers(min_value=2, max_value=900), max_size=3),
    prepend=st.dictionaries(
        st.integers(min_value=2, max_value=900),
        st.integers(min_value=1, max_value=6),
        max_size=3,
    ),
    med=st.dictionaries(
        st.integers(min_value=1, max_value=200),
        st.integers(min_value=-500, max_value=500),
        max_size=3,
    ),
)
@settings(max_examples=50, deadline=None)
def test_announcement_round_trips_through_communities(announce, no_export, prepend, med):
    announcement = CommunityAnnouncement(
        announce=announce,
        no_export=no_export,
        prepend=tuple(sorted(prepend.items())),
        med=tuple(sorted(med.items())),
    )
    assert CommunityAnnouncement.from_communities(
        announcement.communities()
    ) == announcement


def test_tagged_routes_carry_communities(scenario):
    router = CommunityRouting(scenario)
    asns = sorted(router.peer_asns)
    announcement = CommunityAnnouncement(
        prepend=((asns[0], 2),), med=((1, -200),)
    )
    routes = router.tagged_routes(announcement)
    expected = set(announcement.communities())
    tagged = set()
    for route in routes.values():
        tagged.update(route.communities)
    assert tagged & expected, "no announced community survived propagation"


# ---------------------------------------------------------------------------
# Solver sanity
# ---------------------------------------------------------------------------


def test_solve_communities_budgets_nest(scenario):
    solution = solve_communities(scenario, budget=6)
    assert 0 < len(solution.announcements) <= 6
    smaller = solution.at_budget(3)
    assert smaller == solution.announcements[:3]
    assert communities_benefit(scenario, solution.announcements) >= communities_benefit(
        scenario, smaller
    )


def test_solve_communities_improves_on_anycast(scenario):
    solution = solve_communities(scenario, budget=8)
    assert communities_benefit(scenario, solution.announcements) > 0.0
