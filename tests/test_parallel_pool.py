"""Unit tests for the parallel building blocks: shards, shared memory, pool.

The differential suite (``test_parallel_solve.py``) proves end-to-end
bit-identity; this one exercises each layer in isolation — shard-range
arithmetic, the vectorized refresh expression against a scalar reference,
:class:`ShardState` driven fully in-process (no fork, so coverage sees the
lines), shared-memory round trips, and the pool's failure modes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.orchestrator import OrchestratorConfig, PainterOrchestrator
from repro.parallel import (
    SharedArray,
    ShardContext,
    ShardState,
    WorkerPool,
    WorkerPoolError,
    arm_worker_faults,
    shard_ranges,
)
from repro.parallel.shard import refresh_contrib
from repro.scenario import tiny_scenario


class TestShardRanges:
    def test_partition_is_exact_and_contiguous(self):
        for n_rows in (0, 1, 7, 60, 100):
            for n_workers in (1, 2, 3, 4, 7):
                ranges = shard_ranges(n_rows, n_workers)
                assert len(ranges) == n_workers
                assert ranges[0][0] == 0
                assert ranges[-1][1] == n_rows
                for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
                    assert hi == lo
                sizes = [hi - lo for lo, hi in ranges]
                assert max(sizes) - min(sizes) <= 1

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            shard_ranges(10, 0)


class TestRefreshContrib:
    """The vector expression agrees with a per-row scalar transcription."""

    def _scalar_reference(self, dist, lat, vol, d0, csum, ccnt, ob, base, d_reuse):
        n = len(dist)
        contrib = np.zeros(n)
        shrink = np.zeros(n, dtype=bool)
        for i in range(n):
            shrink[i] = dist[i] < d0[i] and np.isfinite(d0[i])
            limit = min(dist[i], d0[i]) + d_reuse
            add = dist[i] <= limit and not np.isnan(lat[i])
            cnt = ccnt[i] + add
            total = csum[i] + (lat[i] if add else 0.0)
            mean = total / max(cnt, 1)
            best = min(base[i], mean) if cnt > 0 else ob[i]
            contrib[i] = 0.0 if shrink[i] else vol[i] * (ob[i] - best)
        return contrib, shrink

    def test_matches_scalar_reference(self):
        rng = np.random.default_rng(7)
        n = 64
        dist = rng.uniform(0, 9000, n)
        lat = rng.uniform(5, 300, n)
        lat[rng.random(n) < 0.2] = np.nan  # unmeasurable
        vol = rng.uniform(0.1, 10, n)
        d0 = rng.uniform(0, 9000, n)
        d0[rng.random(n) < 0.3] = np.inf  # nothing kept yet
        csum = rng.uniform(0, 500, n)
        ccnt = rng.integers(0, 4, n).astype(float)
        ob = rng.uniform(5, 300, n)
        base = rng.uniform(5, 300, n)
        contrib, shrink = refresh_contrib(
            dist, lat, vol, d0, csum, ccnt, ob, base, 3000.0
        )
        ref_contrib, ref_shrink = self._scalar_reference(
            dist, lat, vol, d0, csum, ccnt, ob, base, 3000.0
        )
        assert np.array_equal(shrink, ref_shrink)
        assert np.array_equal(contrib, ref_contrib)


@pytest.fixture()
def shard_world():
    """An orchestrator plus an in-process two-shard context over it."""
    scenario = tiny_scenario(seed=3)
    orchestrator = PainterOrchestrator(scenario, OrchestratorConfig(prefix_budget=3))
    n_ugs = len(scenario.user_groups)
    n_cols = len(orchestrator.evaluator.peering_columns)
    lat = np.full((n_ugs, n_cols), np.nan)
    dist = np.full((n_ugs, n_cols), np.nan)
    total_pairs = sum(len(ugs) for ugs in orchestrator._affected.values())
    gains = np.zeros(total_pairs)
    ctx = ShardContext(
        scenario,
        orchestrator.evaluator,
        orchestrator.model,
        orchestrator._affected,
        orchestrator._ug_index,
        lat,
        dist,
        gains,
    )
    (lo0, hi0), (lo1, hi1) = shard_ranges(n_ugs, 2)
    return orchestrator, ctx, ShardState(ctx, lo0, hi0), ShardState(ctx, lo1, hi1)


class TestShardStateInProcess:
    """Drive the worker protocol without forking (deterministic, covered)."""

    def test_fill_covers_every_catalog_pair_once(self, shard_world):
        orchestrator, ctx, shard_a, shard_b = shard_world
        filled = shard_a.fill() + shard_b.fill()
        assert filled == ctx.total_pairs
        # Every affected (UG, peering) slot got a value; untouched slots
        # stay NaN (the "uncomputed" encoding).
        for pid, rows in ctx.rows_np.items():
            col = ctx.col_of[pid]
            assert not np.isnan(ctx.lat_mat[rows, col]).any()
            assert not np.isnan(ctx.dist_mat[rows, col]).any()

    def test_fill_matches_serial_oracles(self, shard_world):
        orchestrator, ctx, shard_a, shard_b = shard_world
        shard_a.fill()
        shard_b.fill()
        evaluator = orchestrator.evaluator
        scenario = orchestrator._scenario
        for ug in scenario.user_groups[:10]:
            row = ctx.ug_index[ug.ug_id]
            for pid in scenario.catalog.ingress_ids(ug):
                col = ctx.col_of[pid]
                expected = evaluator.latency(ug, pid)
                got = ctx.lat_mat[row, col]
                if expected is None:
                    assert np.isinf(got)
                else:
                    assert got == expected
                assert ctx.dist_mat[row, col] == orchestrator.model.distance_km(
                    ug, pid
                )

    def test_prep_spans_tile_the_gain_buffer(self, shard_world):
        orchestrator, ctx, shard_a, shard_b = shard_world
        shard_a.fill()
        shard_b.fill()
        total = shard_a.prep(())
        assert shard_b.prep(()) == total
        assert total == ctx.total_pairs  # nothing learned: no rows filtered
        # Per peering, the two shards' spans are adjacent and sized to the
        # peering's row count.
        for pid, rows in ctx.rows_np.items():
            start_a, count_a = shard_a.spans[pid]
            start_b, count_b = shard_b.spans[pid]
            assert count_a + count_b == len(rows)
            assert start_a + count_a == start_b

    def test_prep_excludes_learned_rows(self, shard_world):
        orchestrator, ctx, shard_a, shard_b = shard_world
        shard_a.fill()
        shard_b.fill()
        learned = tuple(
            sorted(ug.ug_id for ug in orchestrator._scenario.user_groups[:5])
        )
        total = shard_a.prep(learned)
        shard_b.prep(learned)
        learned_rows = {ctx.ug_index[ug_id] for ug_id in learned}
        expected = sum(
            int(np.sum(~np.isin(rows, sorted(learned_rows))))
            for rows in ctx.rows_np.values()
        )
        assert total == expected
        for shard in (shard_a, shard_b):
            for pid, (sel, _lat, _dist, _vol) in shard.local.items():
                assert not (set(sel.tolist()) & learned_rows)
            for pid, pairs in shard.shard_unlearned.items():
                assert all(row not in learned_rows for _, row in pairs)

    def test_invalidate_drops_per_solve_state(self, shard_world):
        orchestrator, ctx, shard_a, _ = shard_world
        shard_a.fill()
        shard_a.prep(())
        assert shard_a.local
        assert shard_a.invalidate((1, 2, 3)) == 3
        assert not shard_a.local
        assert not shard_a.spans

    def test_round_start_writes_serial_gains(self, shard_world):
        orchestrator, ctx, shard_a, shard_b = shard_world
        shard_a.fill()
        shard_b.fill()
        shard_a.prep(())
        shard_b.prep(())
        scenario = orchestrator._scenario
        anycast = np.array(
            [scenario.anycast_latency_ms(ug) for ug in scenario.user_groups]
        )
        shard_a.round_start(anycast)
        shard_b.round_start(anycast)
        # The assembled buffer equals the serial fmax(base - lat, 0) per
        # peering, in span order.
        evaluator = orchestrator.evaluator
        for pid, rows in ctx.rows_np.items():
            start_a, count_a = shard_a.spans[pid]
            count = count_a + shard_b.spans[pid][1]
            got = ctx.gain_buf[start_a : start_a + count]
            lat = np.array(
                [
                    np.nan if evaluator.latency(ug, pid) is None
                    else evaluator.latency(ug, pid)
                    for ug in ctx.affected[pid]
                ]
            )
            expected = np.fmax(anycast[rows] - lat, 0.0)
            assert np.array_equal(got, expected)


class TestSharedArray:
    def test_roundtrip_and_fill(self):
        arr = SharedArray((4, 3), fill=np.nan)
        try:
            assert np.isnan(arr.array).all()
            arr.array[2, 1] = 7.5
            # A second mapping of the same segment sees the write.
            from multiprocessing import shared_memory

            peer = shared_memory.SharedMemory(name=arr.name)
            try:
                view = np.ndarray((4, 3), dtype=np.float64, buffer=peer.buf)
                assert view[2, 1] == 7.5
                del view
            finally:
                peer.close()
        finally:
            arr.close(unlink=True)

    def test_close_is_idempotent(self):
        arr = SharedArray((2,), fill=0.0)
        arr.close(unlink=True)
        arr.close(unlink=True)
        assert arr.array is None

    def test_expected_teardown_races_stay_silent(self):
        from repro.perf import PERF

        before = PERF.counter("parallel.shm_teardown_errors").value
        arr = SharedArray((2,), fill=0.0)

        real_unlink = arr._shm.unlink

        def raise_missing():
            raise FileNotFoundError(arr.name)

        arr._shm.unlink = raise_missing
        arr.close(unlink=True)  # must not raise and must not count
        assert PERF.counter("parallel.shm_teardown_errors").value == before
        real_unlink()  # actual cleanup so the segment doesn't leak

    def test_unexpected_teardown_error_is_counted(self):
        from repro.perf import PERF

        before = PERF.counter("parallel.shm_teardown_errors").value
        arr = SharedArray((2,), fill=0.0)
        real_close = arr._shm.close

        def boom():
            raise OSError("segment wedged")

        arr._shm.close = boom
        arr.close(unlink=True)  # swallowed, but visible in the metric
        assert PERF.counter("parallel.shm_teardown_errors").value == before + 1
        real_close()  # actual cleanup so the segment doesn't leak the test


class _Echo:
    """A trivial pool handler for protocol tests."""

    def __init__(self, index: int) -> None:
        self.index = index

    def double(self, x):
        return (self.index, 2 * x)

    def boom(self):
        raise RuntimeError("kaboom")


class TestWorkerPool:
    def test_broadcast_gathers_in_worker_order(self):
        pool = WorkerPool(3, _Echo)
        try:
            assert pool.ping() == [0, 1, 2]
            assert pool.broadcast("double", 21) == [(0, 42), (1, 42), (2, 42)]
            assert pool.call(1, "double", 5) == (1, 10)
        finally:
            pool.close()

    def test_worker_exception_marks_pool_broken(self):
        pool = WorkerPool(2, _Echo)
        try:
            with pytest.raises(WorkerPoolError, match="kaboom"):
                pool.broadcast("boom")
            assert pool.broken
            with pytest.raises(WorkerPoolError):
                pool.broadcast("double", 1)
        finally:
            pool.close()

    def test_kill_worker_surfaces_as_pool_error(self):
        pool = WorkerPool(2, _Echo)
        try:
            assert pool.kill_worker(0)
            assert not pool.alive()
            with pytest.raises(WorkerPoolError):
                pool.broadcast("double", 1)
            assert not pool.kill_worker(0)  # already dead
        finally:
            pool.close()

    def test_timeout_raises(self):
        import time

        class _Sleeper:
            def __init__(self, index):
                pass

            def nap(self):
                time.sleep(5.0)

        pool = WorkerPool(1, _Sleeper, timeout_s=0.2)
        try:
            with pytest.raises(WorkerPoolError, match="timed out"):
                pool.broadcast("nap")
        finally:
            pool.close()

    def test_close_after_close_is_safe(self):
        pool = WorkerPool(1, _Echo)
        pool.close()
        pool.close()
        assert not pool.alive()

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            WorkerPool(0, _Echo)

    def test_collect_metrics_resets_worker_registries(self):
        class _Counting:
            def __init__(self, index):
                pass

            def bump(self):
                from repro.telemetry.metrics import METRICS

                METRICS.counter("pool.test_bump").add()
                return True

        pool = WorkerPool(2, _Counting)
        try:
            pool.broadcast("bump")
            first = pool.collect_metrics()
            assert all(
                snap["counters"].get("pool.test_bump") == 1 for snap in first
            )
            second = pool.collect_metrics()
            # Snapshot-and-reset: a second collection must not re-report the
            # already-shipped increments (name may linger at zero).
            assert all(
                not snap["counters"].get("pool.test_bump") for snap in second
            )
        finally:
            pool.close()


class TestArmWorkerFaults:
    def test_worker_crash_event_kills_indexed_worker(self):
        from repro.faults import FaultInjector, FaultSchedule, WorkerCrash
        from repro.simulation.events import EventLoop

        pool = WorkerPool(2, _Echo)
        try:
            injector = FaultInjector(
                FaultSchedule(
                    events=(WorkerCrash(start_s=1.0, worker_index=3),)
                )
            )
            arm_worker_faults(injector, pool)
            loop = EventLoop()
            injector.arm(loop)
            loop.run_until(2.0)
            # worker_index wraps modulo pool size: 3 % 2 == 1.
            assert not pool._procs[1].is_alive()
            assert pool._procs[0].is_alive()
        finally:
            pool.close()

    def test_other_events_ignored(self):
        from repro.faults import FaultInjector, FaultSchedule, PopOutage
        from repro.simulation.events import EventLoop

        pool = WorkerPool(1, _Echo)
        try:
            injector = FaultInjector(
                FaultSchedule(
                    events=(
                        PopOutage(start_s=1.0, pop_name="pop-a", duration_s=2.0),
                    )
                )
            )
            arm_worker_faults(injector, pool)
            loop = EventLoop()
            injector.arm(loop)
            loop.run_until(5.0)
            assert pool.alive()
        finally:
            pool.close()


class TestWorkerCrashEvent:
    def test_describe_and_validation(self):
        from repro.faults import WorkerCrash

        event = WorkerCrash(start_s=5.0, worker_index=2)
        assert "worker 2" in event.describe()
        assert event.end_s == float("inf")  # death is permanent
        with pytest.raises(ValueError):
            WorkerCrash(start_s=0.0, worker_index=-1)
