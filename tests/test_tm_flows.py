"""Flow table: 5-tuples, immutable mappings."""

import pytest

from repro.traffic_manager.flows import FiveTuple, FlowTable


def ft(port=1234, dst="10.0.0.1"):
    return FiveTuple(proto="tcp", src_ip="192.168.1.2", src_port=port, dst_ip=dst, dst_port=443)


class TestFiveTuple:
    def test_bad_protocol(self):
        with pytest.raises(ValueError):
            FiveTuple(proto="icmp", src_ip="1.1.1.1", src_port=1, dst_ip="2.2.2.2", dst_port=2)

    @pytest.mark.parametrize("port", [0, -1, 70000])
    def test_bad_port(self, port):
        with pytest.raises(ValueError):
            FiveTuple(proto="tcp", src_ip="1.1.1.1", src_port=port, dst_ip="2.2.2.2", dst_port=443)

    def test_hashable_identity(self):
        assert ft() == ft()
        assert hash(ft()) == hash(ft())
        assert ft(port=1) != ft(port=2)


class TestFlowTable:
    def test_map_and_lookup(self):
        table = FlowTable()
        entry = table.map_flow(ft(), "184.164.224.0/24", now_s=1.0)
        assert table.lookup(ft()) is entry
        assert ft() in table
        assert len(table) == 1

    def test_mapping_immutable(self):
        table = FlowTable()
        table.map_flow(ft(), "184.164.224.0/24", now_s=1.0)
        with pytest.raises(ValueError):
            table.map_flow(ft(), "184.164.225.0/24", now_s=2.0)

    def test_end_flow(self):
        table = FlowTable()
        table.map_flow(ft(), "184.164.224.0/24", now_s=1.0)
        entry = table.end_flow(ft())
        assert entry.destination_prefix == "184.164.224.0/24"
        assert ft() not in table

    def test_end_unknown_flow_returns_none(self):
        # A FIN retransmit / never-admitted flow is normal, not an error.
        assert FlowTable().end_flow(ft()) is None

    def test_byte_accounting(self):
        table = FlowTable()
        entry = table.map_flow(ft(), "184.164.224.0/24", now_s=1.0)
        entry.record_bytes(100)
        entry.record_bytes(250)
        assert entry.bytes_sent == 350
        with pytest.raises(ValueError):
            entry.record_bytes(-1)

    def test_flows_to_and_destinations(self):
        table = FlowTable()
        table.map_flow(ft(port=1), "a/24", now_s=0.0)
        table.map_flow(ft(port=2), "a/24", now_s=0.0)
        table.map_flow(ft(port=3), "b/24", now_s=0.0)
        assert len(table.flows_to("a/24")) == 2
        assert table.destinations() == {"a/24": 2, "b/24": 1}

    def test_remap_flows_keeps_destinations_consistent(self):
        table = FlowTable()
        table.map_flow(ft(port=1), "a/24", now_s=0.0)
        table.map_flow(ft(port=2), "a/24", now_s=0.0)
        table.map_flow(ft(port=3), "b/24", now_s=0.0)
        moved = table.remap_flows("a/24", "b/24")
        assert moved == 2
        assert table.flows_to("a/24") == []
        assert len(table.flows_to("b/24")) == 3
        # destinations() must agree with flows_to() after failover re-mapping.
        assert table.destinations() == {"b/24": 3}
        # Re-mapping a prefix with no flows (or onto itself) is a no-op.
        assert table.remap_flows("a/24", "b/24") == 0
        assert table.remap_flows("b/24", "b/24") == 0
