"""Geolocation targets: availability, coverage monotonicity, error scaling."""

import pytest

from repro.measurement.geolocation import GeolocationCatalog, GeolocationConfig


class TestConfigValidation:
    def test_bad_probability(self):
        with pytest.raises(ValueError):
            GeolocationConfig(interface_target_prob=2.0)

    def test_bad_mean(self):
        with pytest.raises(ValueError):
            GeolocationConfig(crawled_uncertainty_mean_km=0)


class TestTargets:
    def test_target_deterministic(self, scenario):
        catalog = GeolocationCatalog(GeolocationConfig(seed=5))
        peering = scenario.deployment.peerings[0]
        first = catalog.target_for(peering)
        second = catalog.target_for(peering)
        assert first == second

    def test_fresh_catalog_same_seed_same_targets(self, scenario):
        a = GeolocationCatalog(GeolocationConfig(seed=5))
        b = GeolocationCatalog(GeolocationConfig(seed=5))
        for peering in scenario.deployment.peerings:
            assert a.target_for(peering) == b.target_for(peering)

    def test_mixture_of_target_kinds(self, small_scenario):
        catalog = GeolocationCatalog(GeolocationConfig(seed=1))
        kinds = set()
        for peering in small_scenario.deployment.peerings:
            target = catalog.target_for(peering)
            kinds.add(None if target is None else target.source)
        assert "interface" in kinds
        assert "crawled" in kinds
        assert None in kinds  # some peerings have no findable target

    def test_coverage_monotone_in_uncertainty(self, small_scenario):
        catalog = GeolocationCatalog(GeolocationConfig(seed=1))
        peerings = small_scenario.deployment.peerings

        def coverage(gp):
            return sum(1 for p in peerings if catalog.has_target_within(p, gp))

        values = [coverage(gp) for gp in (50, 150, 300, 600, 1200)]
        assert values == sorted(values)
        assert values[-1] > values[0]


class TestEstimates:
    def test_estimate_none_without_target(self, small_scenario):
        catalog = GeolocationCatalog(GeolocationConfig(seed=1))
        model = small_scenario.latency_model
        ug = small_scenario.user_groups[0]
        found_none = False
        for peering in small_scenario.deployment.peerings:
            if catalog.target_for(peering) is None:
                assert catalog.estimate_latency_ms(ug, peering, model, 10_000) is None
                found_none = True
        assert found_none

    def test_estimate_close_to_truth_for_precise_targets(self, small_scenario):
        catalog = GeolocationCatalog(GeolocationConfig(seed=1))
        model = small_scenario.latency_model
        errors = []
        for ug in small_scenario.user_groups[:30]:
            for peering in small_scenario.deployment.peerings[:20]:
                target = catalog.target_for(peering)
                if target is None or target.uncertainty_km > 80:
                    continue
                error = catalog.estimate_error_ms(ug, peering, model, 80)
                errors.append(error)
        assert errors
        assert sorted(errors)[len(errors) // 2] < 5.0  # median small

    def test_error_grows_with_uncertainty(self, small_scenario):
        catalog = GeolocationCatalog(GeolocationConfig(seed=1))
        model = small_scenario.latency_model

        def median_error(lo, hi):
            errors = []
            for ug in small_scenario.user_groups[:40]:
                for peering in small_scenario.deployment.peerings:
                    target = catalog.target_for(peering)
                    if target is None or not (lo <= target.uncertainty_km < hi):
                        continue
                    errors.append(catalog.estimate_error_ms(ug, peering, model, hi))
            errors.sort()
            return errors[len(errors) // 2] if errors else None

        precise = median_error(0, 100)
        loose = median_error(300, 10_000)
        assert precise is not None and loose is not None
        assert loose > precise

    def test_estimate_deterministic(self, small_scenario):
        catalog = GeolocationCatalog(GeolocationConfig(seed=1))
        model = small_scenario.latency_model
        ug = small_scenario.user_groups[0]
        for peering in small_scenario.deployment.peerings[:10]:
            a = catalog.estimate_latency_ms(ug, peering, model, 10_000)
            b = catalog.estimate_latency_ms(ug, peering, model, 10_000)
            assert a == b

    def test_estimate_positive(self, small_scenario):
        catalog = GeolocationCatalog(GeolocationConfig(seed=1))
        model = small_scenario.latency_model
        for ug in small_scenario.user_groups[:20]:
            for peering in small_scenario.deployment.peerings[:20]:
                estimate = catalog.estimate_latency_ms(ug, peering, model, 10_000)
                if estimate is not None:
                    assert estimate > 0
