"""Synthetic topology generator: determinism, structure, config validation."""

import pytest

from repro.topology.asn import ASRole
from repro.topology.builder import CLOUD_ASN, TopologyConfig, build_topology


@pytest.fixture(scope="module")
def topology():
    return build_topology(TopologyConfig(seed=5, n_pops=8, n_tier1=3, n_transit=5, n_regional=15, n_stub=60))


class TestConfigValidation:
    def test_too_few_pops(self):
        with pytest.raises(ValueError):
            TopologyConfig(n_pops=1)

    def test_too_many_pops(self):
        with pytest.raises(ValueError):
            TopologyConfig(n_pops=10_000)

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            TopologyConfig(transit_provider_fraction=1.5)

    def test_need_tier1(self):
        with pytest.raises(ValueError):
            TopologyConfig(n_tier1=0)


class TestStructure:
    def test_counts_match_config(self, topology):
        cfg = topology.config
        assert len(topology.tier1_asns) == cfg.n_tier1
        assert len(topology.transit_asns) == cfg.n_transit
        assert len(topology.regional_asns) == cfg.n_regional
        assert len(topology.stub_asns) == cfg.n_stub
        assert len(topology.deployment.pops) == cfg.n_pops

    def test_cloud_asn_registered(self, topology):
        assert topology.cloud_asn == CLOUD_ASN
        assert topology.graph.get_as(CLOUD_ASN).role is ASRole.CLOUD

    def test_graph_is_valid(self, topology):
        topology.graph.validate()

    def test_stubs_have_providers(self, topology):
        for asn in topology.stub_asns:
            assert topology.graph.providers(asn), f"stub AS{asn} has no provider"

    def test_stubs_have_no_customers(self, topology):
        for asn in topology.stub_asns:
            assert not topology.graph.customers(asn)

    def test_cloud_has_transit_providers(self, topology):
        providers = topology.graph.providers(CLOUD_ASN)
        assert providers
        transit_peers = {p.peer_asn for p in topology.deployment.transit_peerings()}
        assert set(providers) <= transit_peers

    def test_big_ases_present_at_many_pops(self, topology):
        for asn in topology.tier1_asns:
            assert len(topology.deployment.peerings_with(asn)) >= 2

    def test_every_peer_asn_in_graph(self, topology):
        for asn in topology.deployment.peer_asns():
            assert asn in topology.graph

    def test_edge_asns(self, topology):
        edges = set(topology.edge_asns())
        assert edges == set(topology.stub_asns) | set(topology.regional_asns)

    def test_pop_metros_distinct(self, topology):
        metros = [pop.metro.name for pop in topology.deployment.pops]
        assert len(metros) == len(set(metros))


class TestDeterminism:
    def test_same_seed_same_world(self):
        cfg = TopologyConfig(seed=11, n_pops=6, n_tier1=2, n_transit=4, n_regional=10, n_stub=30)
        a, b = build_topology(cfg), build_topology(cfg)
        assert a.tier1_asns == b.tier1_asns
        assert a.stub_asns == b.stub_asns
        assert [p.name for p in a.deployment.pops] == [p.name for p in b.deployment.pops]
        assert [
            (p.peering_id, p.peer_asn, p.pop.name) for p in a.deployment.peerings
        ] == [(p.peering_id, p.peer_asn, p.pop.name) for p in b.deployment.peerings]
        assert a.graph.edge_count() == b.graph.edge_count()

    def test_different_seed_different_world(self):
        base = dict(n_pops=6, n_tier1=2, n_transit=4, n_regional=10, n_stub=30)
        a = build_topology(TopologyConfig(seed=1, **base))
        b = build_topology(TopologyConfig(seed=2, **base))
        assert [
            (p.peer_asn, p.pop.name) for p in a.deployment.peerings
        ] != [(p.peer_asn, p.pop.name) for p in b.deployment.peerings]
