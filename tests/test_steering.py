"""Steering analyses: granularity, DNS steering, SD-WAN, resilience."""

import pytest

from repro.core.orchestrator import PainterOrchestrator
from repro.dns.resolvers import ResolverAssignment, ResolverConfig
from repro.steering.dns_steering import evaluate_dns_steering
from repro.steering.granularity import (
    BUCKET_LABELS,
    GRANULARITY_BUCKETS,
    GranularityAnalysis,
)
from repro.steering.resilience import ResilienceAnalysis, fraction_fully_avoidable
from repro.steering.sdwan import sdwan_view


@pytest.fixture(scope="module")
def world():
    from repro.scenario import tiny_scenario

    return tiny_scenario(seed=3)


@pytest.fixture(scope="module")
def resolvers(world):
    return ResolverAssignment(world, ResolverConfig(seed=2))


@pytest.fixture(scope="module")
def granularity(world, resolvers):
    return GranularityAnalysis(world, resolvers)


class TestGranularity:
    def test_bucket_definitions_cover_unit_interval(self):
        assert GRANULARITY_BUCKETS[0][0] == 0.0
        assert GRANULARITY_BUCKETS[-1][1] >= 1.0
        for (lo_a, hi_a), (lo_b, _hi_b) in zip(GRANULARITY_BUCKETS, GRANULARITY_BUCKETS[1:]):
            assert hi_a == lo_b
        assert len(BUCKET_LABELS) == len(GRANULARITY_BUCKETS)

    def test_pop_volumes_sum_to_total(self, world, granularity):
        total = sum(granularity.pop_volumes().values())
        assert total == pytest.approx(sum(ug.volume for ug in world.user_groups))

    def test_shares_sum_to_one(self, granularity):
        for pop_name in granularity.top_pops(3):
            for mechanism, result in granularity.analyze_pop(pop_name).items():
                assert sum(result.bucket_shares) == pytest.approx(1.0, abs=1e-6), mechanism

    def test_painter_is_finest(self, granularity):
        for mechanism, result in granularity.analyze_all().items():
            fine = result.share_finer_than(0.001)
            if mechanism == "painter":
                assert fine == pytest.approx(1.0, abs=1e-6)
            else:
                assert fine < 1.0

    def test_bgp_coarser_than_painter(self, granularity):
        results = granularity.analyze_all()
        assert results["bgp"].share_finer_than(0.01) < results["painter"].share_finer_than(0.01)

    def test_all_aggregate_consistent(self, granularity):
        aggregate = granularity.analyze_all()
        for result in aggregate.values():
            assert sum(result.bucket_shares) == pytest.approx(1.0, abs=1e-6)


class TestDnsSteering:
    @pytest.fixture(scope="class")
    def config(self, world):
        orchestrator = PainterOrchestrator(world, prefix_budget=4)
        return orchestrator.solve()

    def test_dns_never_beats_painter(self, world, config, resolvers):
        outcome = evaluate_dns_steering(world, config, resolvers)
        assert outcome.dns_benefit <= outcome.painter_benefit + 1e-9
        assert 0.0 <= outcome.dns_fraction_of_painter <= 1.0 + 1e-9

    def test_resolver_choices_are_valid_prefixes(self, world, config, resolvers):
        outcome = evaluate_dns_steering(world, config, resolvers)
        for choice in outcome.resolver_choices.values():
            assert choice is None or choice in config.prefixes

    def test_model_mode_requires_evaluator(self, world, config, resolvers):
        with pytest.raises(ValueError):
            evaluate_dns_steering(world, config, resolvers, realized=False)

    def test_model_mode_runs(self, world, config, resolvers):
        orchestrator = PainterOrchestrator(world, prefix_budget=4)
        outcome = evaluate_dns_steering(
            world, config, resolvers, evaluator=orchestrator.evaluator, realized=False
        )
        assert outcome.dns_benefit <= outcome.painter_benefit + 1e-9


class TestSdwan:
    def test_path_count_matches_providers_plus_direct(self, world):
        graph = world.graph
        deployment = world.deployment
        for ug in world.user_groups[:25]:
            view = sdwan_view(world, ug)
            expected_max = len(graph.providers(ug.asn)) + (
                1 if deployment.has_direct_peering_with(ug.asn) else 0
            )
            assert view.path_count <= expected_max
            assert view.path_count >= 1

    def test_direct_peering_gives_empty_intermediates(self, world):
        for ug in world.user_groups:
            view = sdwan_view(world, ug)
            if view.has_direct_peering:
                assert () in view.paths
                return
        pytest.skip("no directly-peering UG in this seed")

    def test_isp_paths_start_with_isp(self, world):
        for ug in world.user_groups[:20]:
            view = sdwan_view(world, ug)
            for path in view.paths:
                if path:
                    assert path[0] in view.isp_asns


class TestResilience:
    @pytest.fixture(scope="class")
    def analysis(self, world):
        return ResilienceAnalysis(world)

    def test_painter_exposes_at_least_sdwan_pops_nearby(self, analysis, world):
        comparisons = analysis.compare_all()
        assert len(comparisons) == len(world.user_groups)
        # PAINTER exposes more paths than SD-WAN for the typical UG.
        median_diff = sorted(c.best_paths_difference for c in comparisons)[
            len(comparisons) // 2
        ]
        assert median_diff > 0

    def test_all_paths_at_least_best_paths(self, analysis, world):
        for ug in world.user_groups[:30]:
            view = analysis.painter_view(ug)
            assert view.all_paths >= view.best_paths

    def test_regional_pops_nonempty(self, analysis, world):
        regions = {ug.metro.region for ug in world.user_groups}
        for region in regions:
            assert analysis.regional_pops(region)

    def test_avoidance_fractions_valid(self, analysis, world):
        for result in analysis.avoidance_all():
            assert 0.0 <= result.painter_avoidable_fraction <= 1.0
            assert 0.0 <= result.sdwan_avoidable_fraction <= 1.0

    def test_painter_avoids_at_least_as_much(self, analysis):
        """PAINTER's alternates are a superset in power of SD-WAN's for
        most UGs; at the population level it must not avoid less."""
        results = analysis.avoidance_all()
        painter = fraction_fully_avoidable(results, painter=True)
        sdwan = fraction_fully_avoidable(results, painter=False)
        assert painter >= sdwan - 0.05

    def test_fraction_fully_avoidable_empty_raises(self):
        with pytest.raises(ValueError):
            fraction_fully_avoidable([], painter=True)


class TestPecanComparator:
    def test_config_confined_to_one_isp(self, world):
        from repro.steering.pecan import best_single_isp, pecan_config

        isp = best_single_isp(world)
        config = pecan_config(world, budget=6, isp_asn=isp)
        deployment = world.deployment
        asns = {deployment.peering(pid).peer_asn for _p, pid in config.pairs()}
        assert asns == {isp}
        # One peering per prefix.
        for prefix in config.prefixes:
            assert len(config.peerings_for(prefix)) == 1

    def test_painter_beats_pecan_at_same_budget(self, world):
        from repro.core.orchestrator import PainterOrchestrator
        from repro.steering.pecan import compare_pecan_to_painter

        budget = 4
        orchestrator = PainterOrchestrator(world, prefix_budget=budget)
        result = orchestrator.learn(iterations=3)
        pecan, painter, isp = compare_pecan_to_painter(
            world, budget, result.final_config
        )
        # Confining exposure to a single ISP leaves benefit on the table.
        assert painter > pecan
        assert isp in {p.peer_asn for p in world.deployment.transit_peerings()}

    def test_budget_validation(self, world):
        from repro.steering.pecan import pecan_config

        import pytest as _pytest

        with _pytest.raises(ValueError):
            pecan_config(world, budget=0)


class TestRegionalPopsFallback:
    def test_ug_free_region_falls_back_to_nearest_pop(self, world):
        """A region hosting no UGs gets its geographically nearest PoP."""
        from repro.topology.geo import haversine_km, metros_in_region

        analysis = ResilienceAnalysis(world)
        region = "africa"
        assert all(ug.metro.region != region for ug in world.user_groups)
        anchors = [metro.location for metro in metros_in_region(region)]
        assert anchors, "world metros must cover the region"
        expected = min(
            world.deployment.pops,
            key=lambda pop: min(haversine_km(pop.location, a) for a in anchors),
        ).name
        assert analysis.regional_pops(region) == frozenset({expected})

    def test_fallback_is_cached(self, world):
        analysis = ResilienceAnalysis(world)
        first = analysis.regional_pops("africa")
        assert analysis.regional_pops("africa") is first
