"""Appendix C: simulating measurements from probe neighborhoods."""

import pytest

from repro.measurement.extrapolation import ExtrapolationConfig, SimulatedMeasurements
from repro.measurement.probes import ProbeFleet, ProbeFleetConfig


@pytest.fixture(scope="module")
def world(small_scenario):
    return small_scenario


@pytest.fixture(scope="module")
def fleet(world):
    return ProbeFleet(world.user_groups, ProbeFleetConfig(seed=2, coverage_fraction=0.4))


@pytest.fixture(scope="module")
def simulated(world, fleet):
    return SimulatedMeasurements(world, fleet, ExtrapolationConfig(seed=5))


class TestSimulatedMeasurements:
    def test_probe_ugs_get_real_measurements(self, world, fleet, simulated):
        for ug in world.user_groups:
            if not fleet.has_probe(ug):
                continue
            peering = world.catalog.ingresses(ug)[0]
            assert simulated(ug, peering.peering_id) == world.latency_model.latency_ms(
                ug, peering
            )
            break
        else:
            pytest.fail("no probe UG found")

    def test_non_compliant_unmeasurable(self, world, simulated):
        for ug in world.user_groups:
            compliant = world.catalog.ingress_ids(ug)
            for peering in world.deployment.peerings:
                if peering.peering_id not in compliant:
                    assert simulated(ug, peering.peering_id) is None
                    return
        pytest.skip("all peerings compliant in this seed")

    def test_extrapolated_values_positive_and_deterministic(self, world, fleet, simulated):
        tested = 0
        for ug in world.user_groups:
            if fleet.has_probe(ug):
                continue
            if not simulated.representative_improvements(ug):
                continue
            for pid in sorted(world.catalog.ingress_ids(ug))[:3]:
                value = simulated(ug, pid)
                assert value is not None and value > 0
                assert simulated(ug, pid) == value  # cached + stable
            tested += 1
            if tested >= 5:
                break
        assert tested > 0, "no extrapolatable UGs; enlarge the fleet"

    def test_isolated_ug_unmeasurable(self, world, fleet):
        tight = SimulatedMeasurements(
            world, fleet, ExtrapolationConfig(seed=5, radius_km=0.001)
        )
        for ug in world.user_groups:
            if fleet.has_probe(ug):
                continue
            pid = min(world.catalog.ingress_ids(ug))
            assert tight(ug, pid) is None
            return
        pytest.skip("every UG hosts a probe")

    def test_measurable_fraction_grows_with_radius(self, world, fleet):
        narrow = SimulatedMeasurements(
            world, fleet, ExtrapolationConfig(seed=5, radius_km=100)
        )
        wide = SimulatedMeasurements(
            world, fleet, ExtrapolationConfig(seed=5, radius_km=3000)
        )
        assert wide.measurable_fraction() >= narrow.measurable_fraction()
        assert wide.measurable_fraction() > 0.4

    def test_orchestrator_runs_on_simulated_measurements(self, world, fleet):
        """The Fig. 6a pipeline: Algorithm 1 over partially-simulated data."""
        from repro.core.benefit import realized_benefit
        from repro.core.orchestrator import PainterOrchestrator

        simulated = SimulatedMeasurements(world, fleet, ExtrapolationConfig(seed=5))
        orchestrator = PainterOrchestrator(world, prefix_budget=4, latency_of=simulated)
        config = orchestrator.solve()
        assert config.prefix_count >= 1
        assert realized_benefit(world, config) > 0
