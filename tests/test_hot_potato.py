"""Hot-potato coexistence: epochs, directional invariants, and goldens.

Covers the link-weight-epoch machinery end to end:

* frozen-epoch differential — one epoch means zero oscillations and a
  PAINTER combined gain *bit-identical* to the plain additive
  :func:`repro.egress.coexistence.evaluate_coexistence` result;
* :class:`DirectionalModel` invariants — ``ingress + egress == rtt``
  exactly, and loud :class:`CoexistenceError` failures instead of silent
  drift (epoch without a schedule, egress outside the reachable set);
* the controller delta vocabulary (:class:`LinkWeightShift`) round-trips
  through JSON and drives the daemon's epoch tracking;
* a golden azure-preset oscillation/erosion table pins the full scenario
  (slow tier).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.controller import (
    ControllerConfig,
    DeltaError,
    LinkWeightShift,
    PainterController,
    delta_from_dict,
    delta_to_dict,
    link_weight_deltas,
)
from repro.core.orchestrator import OrchestratorConfig
from repro.egress.coexistence import (
    CoexistenceError,
    DirectionalModel,
    EgressOptimizer,
    LinkWeightEpochs,
    evaluate_coexistence,
)
from repro.experiments.fig6 import painter_budget_configs
from repro.experiments.hotpotato import run_hot_potato

GOLDEN = Path(__file__).parent / "data" / "golden_hotpotato.json"


# ---------------------------------------------------------------------------
# Frozen-epoch differential (the CI-gated identity)
# ---------------------------------------------------------------------------


def test_frozen_epochs_zero_oscillations_and_bit_identical_gain(scenario):
    result = run_hot_potato(scenario=scenario, budget=6, n_epochs=1)
    # A frozen schedule has exactly one epoch: one row per mode, epoch 0.
    assert [row[1] for row in result.rows] == [0, 0]
    assert all(row[2] == 0 for row in result.rows), "oscillations must be exactly 0"
    assert all(row[4] == 0.0 for row in result.rows), "no erosion at epoch 0"

    config = painter_budget_configs(scenario, [6])[6]
    expected = evaluate_coexistence(scenario, config).combined_gain
    painter_gain = next(row[3] for row in result.rows if row[0] == "painter")
    assert painter_gain == expected  # bit-identical, not approx


def test_epochs_shift_produces_oscillation_asymmetry(scenario):
    result = run_hot_potato(scenario=scenario, budget=6, n_epochs=3, amplitude=0.3)
    flips = {}
    for row in result.rows:
        flips[row[0]] = flips.get(row[0], 0) + row[2]
    # PAINTER's plain prefixes carry no IGP signal: invariant by construction.
    assert flips["painter"] == 0
    # MED-pinned community steering chases the moving egress costs.
    assert flips["communities"] > 0


# ---------------------------------------------------------------------------
# DirectionalModel invariants and failure modes
# ---------------------------------------------------------------------------


def test_split_sums_exactly_to_rtt(scenario):
    model = DirectionalModel(scenario)
    checked = 0
    for ug in scenario.user_groups:
        for peering in list(scenario.catalog.ingresses(ug))[:3]:
            rtt = scenario.latency_model.latency_ms(ug, peering)
            split = model.split(ug, peering)
            assert split.ingress_ms + split.egress_ms == rtt  # exact, not approx
            checked += 1
    assert checked > 0


def test_epoch_without_schedule_raises(scenario):
    model = DirectionalModel(scenario)
    ug = scenario.user_groups[0]
    peering = next(iter(scenario.catalog.ingresses(ug)))
    with pytest.raises(CoexistenceError):
        model.split(ug, peering, epoch=1)


def test_epoch_zero_multiplier_is_exactly_one():
    epochs = LinkWeightEpochs(n_epochs=3, seed=0, amplitude=0.3)
    assert epochs.multiplier(0, "any-pop") == 1.0
    assert epochs.igp_med(0, "any-pop") == 1000
    assert epochs.multiplier(1, "any-pop") != 1.0
    with pytest.raises(CoexistenceError):
        epochs.multiplier(3, "any-pop")
    with pytest.raises(CoexistenceError):
        epochs.multiplier(-1, "any-pop")


def test_epoch_zero_split_matches_unscheduled_model(scenario):
    plain = DirectionalModel(scenario)
    scheduled = DirectionalModel(
        scenario, epochs=LinkWeightEpochs(n_epochs=4, seed=1, amplitude=0.25)
    )
    for ug in scenario.user_groups[:10]:
        peering = next(iter(scenario.catalog.ingresses(ug)))
        a = plain.split(ug, peering)
        b = scheduled.split(ug, peering, epoch=0)
        assert (a.ingress_ms, a.egress_ms) == (b.ingress_ms, b.egress_ms)


def test_best_egress_outside_reachable_set_raises(scenario):
    model = DirectionalModel(scenario)
    optimizer = EgressOptimizer(scenario, model)
    ug = scenario.user_groups[0]
    reachable = scenario.catalog.ingress_ids(ug)
    unreachable = [
        p.peering_id
        for p in scenario.deployment.peerings
        if p.peering_id not in reachable
    ]
    if not unreachable:
        pytest.skip("every peering is reachable for this UG")
    with pytest.raises(CoexistenceError):
        optimizer.best_egress(ug, restrict=unreachable[:1])


# ---------------------------------------------------------------------------
# Controller delta vocabulary
# ---------------------------------------------------------------------------


def test_link_weight_shift_json_round_trip():
    delta = LinkWeightShift(at_s=120.0, epoch=3)
    doc = delta_to_dict(delta)
    assert doc["type"] == "link_weight_shift"
    assert doc["epoch"] == 3
    restored = delta_from_dict(json.loads(json.dumps(doc)))
    assert isinstance(restored, LinkWeightShift)
    assert restored.epoch == 3 and restored.at_s == 120.0


def test_link_weight_deltas_schedule():
    assert link_weight_deltas(1) == []
    stream = link_weight_deltas(4, interval_s=30.0)
    assert [d.epoch for d in stream] == [1, 2, 3]
    assert [d.at_s for d in stream] == [30.0, 60.0, 90.0]
    with pytest.raises(DeltaError):
        link_weight_deltas(0)
    with pytest.raises(DeltaError):
        LinkWeightShift(at_s=0.0, epoch=-1)


def test_daemon_tracks_weight_epoch(scenario, tmp_path):
    controller = PainterController(
        scenario,
        OrchestratorConfig(prefix_budget=2),
        ControllerConfig(checkpoint_dir=tmp_path / "hotpotato"),
        link_weight_deltas(3, interval_s=60.0),
    )
    try:
        result = controller.run()
    finally:
        controller.close()
    assert controller.weight_epoch == 2
    assert result.deltas_applied == 2
    # The solve is deliberately epoch-invariant: PAINTER holds its ingress.
    assert result.final_config is not None


# ---------------------------------------------------------------------------
# Golden azure-preset table (slow tier)
# ---------------------------------------------------------------------------


@pytest.mark.slow
def test_golden_azure_hotpotato_table():
    from repro.scenario import azure_scenario

    result = run_hot_potato(
        scenario=azure_scenario(seed=0, n_ugs=150),
        budget=6,
        n_epochs=3,
        amplitude=0.3,
        seed=0,
    )
    golden = json.loads(GOLDEN.read_text())
    assert list(result.columns) == golden["columns"]
    assert [list(row) for row in result.rows] == golden["rows"]
