"""AS graph: relationships, customer cones, validation, valley-free oracle."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.topology.asn import ASRole, AutonomousSystem, LOCAL_PREFERENCE, Relationship
from repro.topology.geo import metro_by_name
from repro.topology.graph import ASGraph, TopologyError, transit_path_exists


def _as(asn, role=ASRole.STUB):
    return AutonomousSystem(asn=asn, role=role, home_metro=metro_by_name("london"))


def build_graph(n, provider_edges, peer_edges=()):
    graph = ASGraph()
    for asn in range(1, n + 1):
        graph.add_as(_as(asn))
    for provider, customer in provider_edges:
        graph.add_provider_customer(provider, customer)
    for a, b in peer_edges:
        graph.add_peering_link(a, b)
    return graph


class TestRelationships:
    def test_inverse_pairs(self):
        assert Relationship.CUSTOMER.inverse() is Relationship.PROVIDER
        assert Relationship.PROVIDER.inverse() is Relationship.CUSTOMER
        assert Relationship.PEER.inverse() is Relationship.PEER

    def test_local_preference_ordering(self):
        assert (
            LOCAL_PREFERENCE[Relationship.CUSTOMER]
            > LOCAL_PREFERENCE[Relationship.PEER]
            > LOCAL_PREFERENCE[Relationship.PROVIDER]
        )

    def test_asn_must_be_positive(self):
        with pytest.raises(ValueError):
            AutonomousSystem(asn=0, role=ASRole.STUB)

    def test_is_transit(self):
        assert _as(1, ASRole.TIER1).is_transit
        assert _as(2, ASRole.TRANSIT).is_transit
        assert not _as(3, ASRole.STUB).is_transit


class TestGraphConstruction:
    def test_provider_customer_symmetric_view(self):
        graph = build_graph(2, [(1, 2)])
        assert graph.relationship(1, 2) is Relationship.CUSTOMER
        assert graph.relationship(2, 1) is Relationship.PROVIDER

    def test_peering_symmetric(self):
        graph = build_graph(2, [], [(1, 2)])
        assert graph.relationship(1, 2) is Relationship.PEER
        assert graph.relationship(2, 1) is Relationship.PEER

    def test_self_link_rejected(self):
        graph = build_graph(1, [])
        with pytest.raises(TopologyError):
            graph.add_peering_link(1, 1)

    def test_unregistered_asn_rejected(self):
        graph = build_graph(1, [])
        with pytest.raises(TopologyError):
            graph.add_provider_customer(1, 99)

    def test_conflicting_relationship_rejected(self):
        graph = build_graph(2, [(1, 2)])
        with pytest.raises(TopologyError):
            graph.add_peering_link(1, 2)

    def test_idempotent_same_relationship(self):
        graph = build_graph(2, [(1, 2)])
        graph.add_provider_customer(1, 2)  # no error
        assert graph.customers(1) == [2]

    def test_duplicate_as_conflict(self):
        graph = ASGraph()
        graph.add_as(_as(1, ASRole.STUB))
        with pytest.raises(TopologyError):
            graph.add_as(_as(1, ASRole.TIER1))

    def test_lookups(self):
        graph = build_graph(3, [(1, 2)], [(2, 3)])
        assert 1 in graph and 99 not in graph
        assert len(graph) == 3
        assert set(graph) == {1, 2, 3}
        assert graph.customers(1) == [2]
        assert graph.providers(2) == [1]
        assert graph.peers(2) == [3]
        assert graph.degree(2) == 2
        assert graph.edge_count() == 2
        with pytest.raises(KeyError):
            graph.get_as(99)
        with pytest.raises(KeyError):
            graph.neighbors(99)


class TestCustomerCones:
    def test_cone_includes_self(self):
        graph = build_graph(2, [(1, 2)])
        assert 1 in graph.customer_cone(1)

    def test_transitive_cone(self):
        graph = build_graph(3, [(1, 2), (2, 3)])
        assert graph.customer_cone(1) == frozenset({1, 2, 3})

    def test_peers_not_in_cone(self):
        graph = build_graph(3, [(1, 2)], [(1, 3)])
        assert 3 not in graph.customer_cone(1)

    def test_in_customer_cone(self):
        graph = build_graph(3, [(1, 2), (2, 3)])
        assert graph.in_customer_cone(3, of=1)
        assert not graph.in_customer_cone(1, of=3)

    def test_cone_cache_invalidated_on_mutation(self):
        graph = build_graph(3, [(1, 2)])
        assert 3 not in graph.customer_cone(1)
        graph.add_provider_customer(2, 3)
        assert 3 in graph.customer_cone(1)

    def test_micro_graph_cones(self, micro_graph):
        assert micro_graph.customer_cone(10) >= {10, 20, 21, 30, 31, 1}
        assert micro_graph.customer_cone(22) == frozenset({22, 31, 32})


class TestValidation:
    def test_valid_graph_passes(self, micro_graph):
        micro_graph.validate()

    def test_provider_cycle_detected(self):
        graph = build_graph(3, [(1, 2), (2, 3)])
        # 3 -> 1 closes a customer/provider cycle.
        graph.add_provider_customer(3, 1)
        cycle = graph.find_provider_cycle()
        assert cycle is not None
        with pytest.raises(TopologyError):
            graph.validate()

    def test_no_false_cycle_on_dag(self):
        graph = build_graph(4, [(1, 2), (1, 3), (2, 4), (3, 4)])
        assert graph.find_provider_cycle() is None


class TestValleyFreeOracle:
    def test_up_down_path(self, micro_graph):
        # S1 (30) -> P1 (20) -> T1 (10) -> cloud (1).
        assert transit_path_exists(micro_graph, 30, 1)

    def test_peer_crossing_once(self, micro_graph):
        # S1 -> P1 -> T1 == T2 -> P3 -> S3 crosses one peer link.
        assert transit_path_exists(micro_graph, 30, 32)

    def test_self_path(self, micro_graph):
        assert transit_path_exists(micro_graph, 30, 30)

    def test_unknown_endpoint_raises(self, micro_graph):
        with pytest.raises(KeyError):
            transit_path_exists(micro_graph, 30, 12345)

    def test_no_valley_through_shared_customer(self):
        # 1 -> 3 <- 2: providers 1 and 2 share customer 3.  A path from 1 to
        # 2 would descend into 3 and climb back out — a valley.
        graph = build_graph(3, [(1, 3), (2, 3)])
        assert not transit_path_exists(graph, 1, 2)
        # The customer itself can climb to either provider.
        assert transit_path_exists(graph, 3, 1)
        assert transit_path_exists(graph, 3, 2)

    def test_sibling_stubs_reachable_via_shared_provider(self):
        graph = build_graph(3, [(1, 2), (1, 3)])
        assert transit_path_exists(graph, 2, 3)


@st.composite
def random_dag_graph(draw):
    """A random provider hierarchy (guaranteed acyclic by edge direction)."""
    n = draw(st.integers(min_value=2, max_value=12))
    graph = ASGraph()
    for asn in range(1, n + 1):
        graph.add_as(_as(asn))
    n_edges = draw(st.integers(min_value=1, max_value=2 * n))
    for _ in range(n_edges):
        a = draw(st.integers(min_value=1, max_value=n - 1))
        b = draw(st.integers(min_value=a + 1, max_value=n))
        if graph.relationship(a, b) is None:
            graph.add_provider_customer(a, b)  # lower ASN is provider: acyclic
    return graph


class TestGraphProperties:
    @given(random_dag_graph())
    @settings(max_examples=40, deadline=None)
    def test_cones_are_consistent(self, graph):
        graph.validate()  # acyclic by construction
        for asn in graph:
            cone = graph.customer_cone(asn)
            assert asn in cone
            for customer in graph.customers(asn):
                assert graph.customer_cone(customer) <= cone

    @given(random_dag_graph())
    @settings(max_examples=40, deadline=None)
    def test_customer_reachable_valley_free(self, graph):
        for asn in graph:
            for other in graph.customer_cone(asn):
                # Anything in my cone can climb providers back to me.
                assert transit_path_exists(graph, other, asn)
