"""Destination selection (hysteresis) and TM-Edge/TM-PoP behavior."""

import math

import pytest

from repro.topology.geo import metro_by_name
from repro.traffic_manager.flows import FiveTuple
from repro.traffic_manager.selection import LowestLatencySelector, SelectionPolicyConfig
from repro.traffic_manager.tm_edge import TMEdge
from repro.traffic_manager.tm_pop import PrefixDirectory, TMPoP
from repro.traffic_manager.tunnel import TMPoPNat
from repro.topology.cloud import PoP


class TestSelector:
    def test_first_update_selects_best(self):
        selector = LowestLatencySelector()
        assert selector.update({"a": 30.0, "b": 20.0}) == "b"

    def test_hysteresis_resists_small_improvements(self):
        selector = LowestLatencySelector(SelectionPolicyConfig(switch_threshold=0.10))
        selector.update({"a": 20.0, "b": 30.0})
        for _ in range(10):
            assert selector.update({"a": 20.0, "b": 19.5}) == "a"

    def test_switch_after_stable_rounds(self):
        selector = LowestLatencySelector(
            SelectionPolicyConfig(switch_threshold=0.05, stability_rounds=3)
        )
        selector.update({"a": 20.0, "b": 30.0})
        assert selector.update({"a": 20.0, "b": 10.0}) == "a"
        assert selector.update({"a": 20.0, "b": 10.0}) == "a"
        assert selector.update({"a": 20.0, "b": 10.0}) == "b"
        assert selector.switch_count == 1

    def test_challenger_streak_resets(self):
        selector = LowestLatencySelector(
            SelectionPolicyConfig(switch_threshold=0.05, stability_rounds=3)
        )
        selector.update({"a": 20.0, "b": 30.0})
        selector.update({"a": 20.0, "b": 10.0})
        selector.update({"a": 20.0, "b": 21.0})  # streak broken
        selector.update({"a": 20.0, "b": 10.0})
        assert selector.update({"a": 20.0, "b": 10.0}) == "a"  # only 2 in a row

    def test_dead_destination_switches_immediately(self):
        selector = LowestLatencySelector(
            SelectionPolicyConfig(switch_threshold=0.05, stability_rounds=5)
        )
        selector.update({"a": 20.0, "b": 30.0})
        assert selector.update({"a": math.inf, "b": 30.0}) == "b"
        assert selector.switch_count == 1

    def test_all_dead_returns_none(self):
        selector = LowestLatencySelector()
        selector.update({"a": 20.0})
        assert selector.update({"a": math.inf}) is None

    def test_no_oscillation_between_equals(self):
        selector = LowestLatencySelector()
        first = selector.update({"a": 20.0, "b": 20.0})
        for _ in range(20):
            assert selector.update({"a": 20.0, "b": 20.0}) == first
        assert selector.switch_count == 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SelectionPolicyConfig(switch_threshold=-0.1)
        with pytest.raises(ValueError):
            SelectionPolicyConfig(stability_rounds=0)


@pytest.fixture()
def directory():
    directory = PrefixDirectory()
    pop_a = PoP(name="pop-a", metro=metro_by_name("new-york"))
    pop_b = PoP(name="pop-b", metro=metro_by_name("london"))
    tm_a = TMPoP(name="tm-a", pop=pop_a, nat=TMPoPNat(["100.64.0.1"]))
    tm_b = TMPoP(name="tm-b", pop=pop_b, nat=TMPoPNat(["100.64.1.1"]))
    tm_a.add_service("teams")
    tm_b.add_service("teams")
    tm_b.add_service("sql")
    tm_a.attach_prefix("184.164.224.0/24")
    tm_a.attach_prefix("184.164.225.0/24")
    tm_b.attach_prefix("184.164.226.0/24")
    directory.register(tm_a)
    directory.register(tm_b)
    return directory


class TestDirectory:
    def test_duplicate_registration_rejected(self, directory):
        with pytest.raises(ValueError):
            directory.register(directory.get("tm-a"))

    def test_prefixes_for_service(self, directory):
        assert directory.prefixes_for_service("teams") == frozenset(
            {"184.164.224.0/24", "184.164.225.0/24", "184.164.226.0/24"}
        )
        assert directory.prefixes_for_service("sql") == frozenset({"184.164.226.0/24"})
        assert directory.prefixes_for_service("nothing") == frozenset()

    def test_pop_for_prefix(self, directory):
        assert directory.pop_for_prefix("184.164.224.0/24").name == "tm-a"
        assert directory.pop_for_prefix("10.0.0.0/24") is None

    def test_unknown_pop_raises(self, directory):
        with pytest.raises(KeyError):
            directory.get("tm-x")


class TestTMEdge:
    def test_resolution_builds_tunnel_map(self, directory):
        edge = TMEdge(edge_ip="203.0.113.1", directory=directory)
        prefixes = edge.resolve_service("teams")
        assert len(prefixes) == 3
        assert edge.tunnel_map("teams")["184.164.226.0/24"] == "tm-b"

    def test_prefix_withdrawal_drops_tunnel(self, directory):
        edge = TMEdge(edge_ip="203.0.113.1", directory=directory)
        edge.resolve_service("teams")
        directory.get("tm-a").detach_prefix("184.164.224.0/24")
        prefixes = edge.resolve_service("teams")
        assert "184.164.224.0/24" not in prefixes

    def test_measurement_drives_selection(self, directory):
        edge = TMEdge(edge_ip="203.0.113.1", directory=directory)
        edge.resolve_service("teams")
        selected = edge.record_measurements(
            "teams",
            {"184.164.224.0/24": 20.0, "184.164.225.0/24": 35.0, "184.164.226.0/24": 50.0},
        )
        assert selected == "184.164.224.0/24"

    def test_measurement_before_resolution_raises(self, directory):
        edge = TMEdge(edge_ip="203.0.113.1", directory=directory)
        with pytest.raises(KeyError):
            edge.record_measurements("teams", {})

    def test_new_flows_pinned_to_best(self, directory):
        edge = TMEdge(edge_ip="203.0.113.1", directory=directory)
        edge.resolve_service("teams")
        edge.record_measurements("teams", {"184.164.224.0/24": 20.0, "184.164.226.0/24": 40.0})
        flow = FiveTuple(proto="tcp", src_ip="10.1.1.1", src_port=1111, dst_ip="1.1.1.1", dst_port=443)
        entry = edge.admit_flow("teams", flow, now_s=0.0)
        assert entry.destination_prefix == "184.164.224.0/24"

    def test_existing_flow_sticks_after_switch(self, directory):
        """Flow mappings are immutable even when the selection changes."""
        edge = TMEdge(edge_ip="203.0.113.1", directory=directory)
        edge.resolve_service("teams")
        edge.record_measurements("teams", {"184.164.224.0/24": 20.0, "184.164.226.0/24": 40.0})
        flow = FiveTuple(proto="tcp", src_ip="10.1.1.1", src_port=1111, dst_ip="1.1.1.1", dst_port=443)
        edge.admit_flow("teams", flow, now_s=0.0)
        # The selected tunnel dies; new selection is tm-b's prefix.
        edge.record_measurements("teams", {"184.164.224.0/24": math.inf, "184.164.226.0/24": 40.0})
        new_flow = FiveTuple(proto="tcp", src_ip="10.1.1.1", src_port=2222, dst_ip="1.1.1.1", dst_port=443)
        assert edge.admit_flow("teams", new_flow, now_s=1.0).destination_prefix == "184.164.226.0/24"
        assert edge.flow_table.lookup(flow).destination_prefix == "184.164.224.0/24"

    def test_forward_encapsulates_toward_pinned_destination(self, directory):
        from repro.traffic_manager.tunnel import Packet

        edge = TMEdge(edge_ip="203.0.113.1", directory=directory)
        edge.resolve_service("teams")
        edge.record_measurements("teams", {"184.164.225.0/24": 12.0})
        flow = FiveTuple(proto="udp", src_ip="10.1.1.1", src_port=3333, dst_ip="1.1.1.1", dst_port=3478)
        packet = Packet(
            src_ip="10.1.1.1", dst_ip="1.1.1.1", src_port=3333, dst_port=3478,
            proto="udp", payload_bytes=1200,
        )
        outer = edge.forward("teams", packet, flow, now_s=0.0)
        assert outer.is_encapsulated
        assert outer.dst_ip == "184.164.225.1"
        assert edge.flow_table.lookup(flow).bytes_sent == 1200

    def test_admit_without_live_destination_raises(self, directory):
        edge = TMEdge(edge_ip="203.0.113.1", directory=directory)
        edge.resolve_service("sql")
        flow = FiveTuple(proto="tcp", src_ip="10.1.1.1", src_port=1111, dst_ip="1.1.1.1", dst_port=1433)
        with pytest.raises(RuntimeError):
            edge.admit_flow("sql", flow, now_s=0.0)


class TestSelectorBank:
    def test_independent_selectors_per_service(self):
        from repro.traffic_manager.selection import SelectorBank

        bank = SelectorBank()
        results = bank.update_matrix(["a", "b"], [[10.0, 20.0], [30.0, 5.0]])
        assert results == {0: "a", 1: "b"}
        assert bank.current(0) == "a"
        assert bank.current(1) == "b"

    def test_snapshot_round_trip(self):
        from repro.traffic_manager.selection import SelectorBank

        bank = SelectorBank()
        bank.update_matrix(["a", "b"], [[10.0, 20.0], [30.0, 5.0]])
        restored = SelectorBank.from_snapshot(bank.to_snapshot())
        assert restored.selections() == bank.selections()


class TestTMEdgeBatched:
    def test_forward_batch_pins_by_service_selection(self, directory):
        from repro.traffic_manager.dataplane import FlowBatch, VectorFlowTable

        edge = TMEdge(
            edge_ip="203.0.113.1", directory=directory, data_plane=VectorFlowTable()
        )
        edge.resolve_service("teams")
        edge.record_measurements(
            "teams", {"184.164.224.0/24": 10.0, "184.164.226.0/24": 40.0}
        )
        sid = edge.service_id("teams")
        batch = FlowBatch.synthesize(1000, seed=1)
        batch = FlowBatch(
            keys=batch.keys,
            service_ids=batch.service_ids + sid,
            payload_bytes=batch.payload_bytes,
        )
        result = edge.forward_batch(batch, now_s=0.0)
        assert result.admitted == 1000
        assert edge.data_plane.destinations() == {"184.164.224.0/24": 1000}

    def test_remap_on_failover_moves_batch_flows(self, directory):
        from repro.traffic_manager.dataplane import FlowBatch, VectorFlowTable

        edge = TMEdge(
            edge_ip="203.0.113.1",
            directory=directory,
            data_plane=VectorFlowTable(),
            remap_on_failover=True,
        )
        edge.resolve_service("teams")
        edge.record_measurements(
            "teams", {"184.164.224.0/24": 10.0, "184.164.226.0/24": 40.0}
        )
        edge.forward_batch(FlowBatch.synthesize(500, seed=2), now_s=0.0)
        # The pinned tunnel dies: flows move to the surviving prefix.
        edge.record_measurements("teams", {"184.164.224.0/24": math.inf})
        assert edge.flows_remapped == 500
        assert edge.data_plane.destinations() == {"184.164.226.0/24": 500}

    def test_edge_snapshot_round_trip(self, directory):
        from repro.traffic_manager.dataplane import FlowBatch, VectorFlowTable
        from repro.traffic_manager.tm_edge import TMEdge as EdgeCls

        edge = TMEdge(
            edge_ip="203.0.113.1", directory=directory, data_plane=VectorFlowTable()
        )
        edge.resolve_service("teams")
        edge.record_measurements(
            "teams", {"184.164.224.0/24": 10.0, "184.164.226.0/24": 40.0}
        )
        edge.forward_batch(FlowBatch.synthesize(200, seed=3), now_s=0.0)
        snapshot = edge.to_snapshot()
        restored = EdgeCls.from_snapshot(snapshot, directory)
        assert restored.selected_prefix("teams") == edge.selected_prefix("teams")
        assert restored.data_plane.destinations() == edge.data_plane.destinations()
        assert restored.tunnel_map("teams") == edge.tunnel_map("teams")
        # Restored edge steers a fresh batch exactly like the original.
        more = FlowBatch.synthesize(50, seed=4)
        a = edge.forward_batch(more, now_s=1.0)
        b = restored.forward_batch(more, now_s=1.0)
        assert (a.admitted, a.unroutable) == (b.admitted, b.unroutable)

    def test_edge_snapshot_version_checked(self, directory):
        edge = TMEdge(edge_ip="203.0.113.1", directory=directory)
        snapshot = edge.to_snapshot()
        snapshot["version"] = 0
        with pytest.raises(ValueError, match="unsupported snapshot version"):
            TMEdge.from_snapshot(snapshot, directory)

    def test_scalar_default_plane_shares_flow_table(self, directory):
        from repro.traffic_manager.dataplane import FlowBatch

        edge = TMEdge(edge_ip="203.0.113.1", directory=directory)
        edge.resolve_service("teams")
        edge.record_measurements("teams", {"184.164.224.0/24": 10.0})
        edge.forward_batch(FlowBatch.synthesize(10, seed=5), now_s=0.0)
        # Batched admissions land in the same table the per-flow API uses.
        assert len(edge.flow_table) == 10
