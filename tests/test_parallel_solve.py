"""Differential verification: sharded parallel solve vs the serial solver.

The parallel solver (``repro.parallel``) promises **bit-identical** results
to ``PainterOrchestrator._solve`` for every worker count — same accepted
pairs, same benefit curves, same learned-model evolution, same journal span
structure.  This suite is the proof:

* golden tests pin serial and parallel output to the stored
  ``tests/data/golden_solve_configs.json`` fixtures (azure at the slow tier);
* differential tests run the full learning loop serially and sharded and
  compare every float the iterations record, plus the routing model's final
  preference snapshot (exercising mid-solve ``observe()`` epoch bumps);
* a journal test requires the traced span stream to be byte-identical;
* fault tests kill workers (directly and through a ``WorkerCrash`` chaos
  schedule) and require the serial fallback to produce the same answer.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.orchestrator import OrchestratorConfig, PainterOrchestrator
from repro.parallel import (
    ParallelSolver,
    WorkerPoolError,
    arm_worker_faults,
    disable_parallel,
    enable_parallel,
    parallel_enabled,
)
from repro.perf import PERF
from repro.scenario import azure_scenario, prototype_scenario, tiny_scenario
from repro.telemetry import telemetry_session

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_solve_configs.json"


def config_pairs(config):
    """Canonical [prefix, peering] pair list for comparison."""
    return sorted(
        [prefix, pid]
        for prefix in config.prefixes
        for pid in config.peerings_for(prefix)
    )


def curve_tuples(orchestrator):
    """The budget curve as exact float tuples (no tolerance)."""
    return [
        (
            point.prefixes_used,
            point.pairs_used,
            point.estimated_benefit,
            point.upper_benefit,
            point.lower_benefit,
            point.mean_benefit,
        )
        for point in orchestrator.budget_curve
    ]


def model_snapshot(orchestrator):
    """A comparable image of the routing model's learned preferences."""
    return sorted(
        orchestrator.model.snapshot_preferences().items(), key=repr
    )


def iteration_tuples(result):
    """Every float and count an IterationRecord pins down, exactly."""
    return [
        (
            record.iteration,
            config_pairs(record.config),
            record.expected_benefit,
            record.realized_benefit,
            record.upper_benefit,
            record.estimated_benefit,
            record.lower_benefit,
            record.new_preferences,
        )
        for record in result.iterations
    ]


@pytest.fixture(scope="module")
def goldens():
    return json.loads(GOLDEN_PATH.read_text())


class TestGoldenParallel:
    """Parallel solves reproduce the stored serial goldens bit-for-bit."""

    @pytest.mark.parametrize(
        "name,seed,workers",
        [
            ("tiny_seed0", 0, 2),
            ("tiny_seed3", 3, 2),
            ("tiny_seed3", 3, 4),
        ],
    )
    def test_tiny_matches_golden(self, goldens, name, seed, workers):
        golden = goldens[name]
        with PainterOrchestrator(
            tiny_scenario(seed=seed),
            OrchestratorConfig(prefix_budget=golden["budget"], workers=workers),
        ) as orchestrator:
            config = orchestrator.solve()
        assert config_pairs(config) == golden["pairs"]

    def test_prototype_matches_golden(self, goldens):
        golden = goldens["prototype_seed0"]
        with PainterOrchestrator(
            prototype_scenario(seed=0),
            OrchestratorConfig(prefix_budget=golden["budget"], workers=2),
        ) as orchestrator:
            config = orchestrator.solve()
        assert config_pairs(config) == golden["pairs"]

    @pytest.mark.slow
    def test_azure_matches_golden(self, goldens):
        golden = goldens["azure_seed0"]
        with PainterOrchestrator(
            azure_scenario(seed=0),
            OrchestratorConfig(prefix_budget=golden["budget"], workers=4),
        ) as orchestrator:
            config = orchestrator.solve()
        assert config_pairs(config) == golden["pairs"]


class TestDifferentialSolve:
    """Serial vs sharded single solves: pairs and curves bit-identical."""

    @pytest.mark.parametrize("seed", [0, 3])
    @pytest.mark.parametrize("workers", [2, 4])
    def test_solve_and_curve_identical(self, seed, workers):
        scenario = tiny_scenario(seed=seed)
        serial = PainterOrchestrator(scenario, OrchestratorConfig(prefix_budget=5))
        serial_config = serial.solve(record_curve=True)
        with PainterOrchestrator(
            scenario, OrchestratorConfig(prefix_budget=5, workers=workers)
        ) as parallel:
            parallel_config = parallel.solve(record_curve=True)
            assert config_pairs(parallel_config) == config_pairs(serial_config)
            assert curve_tuples(parallel) == curve_tuples(serial)

    def test_parallel_path_actually_engaged(self):
        PERF.reset()
        with PainterOrchestrator(
            tiny_scenario(seed=3), OrchestratorConfig(prefix_budget=3, workers=2)
        ) as orchestrator:
            orchestrator.solve()
            assert PERF.counter("parallel.solve_calls").value == 1
            assert PERF.counter("parallel.fallbacks").value == 0
            assert orchestrator._parallel is not None
            assert orchestrator._parallel.pool.alive()

    def test_workers_argument_overrides_config(self):
        scenario = tiny_scenario(seed=3)
        with PainterOrchestrator(scenario, OrchestratorConfig(prefix_budget=3)) as orchestrator:
            PERF.reset()
            orchestrator.solve(workers=2)
            assert PERF.counter("parallel.solve_calls").value == 1
            # workers=0 forces the serial path even with a live pool.
            orchestrator.solve(workers=0)
            assert PERF.counter("parallel.solve_calls").value == 1

    def test_pool_persists_across_solves(self):
        with PainterOrchestrator(
            tiny_scenario(seed=3), OrchestratorConfig(prefix_budget=3, workers=2)
        ) as orchestrator:
            orchestrator.solve()
            first_pool = orchestrator._parallel.pool
            orchestrator.solve()
            assert orchestrator._parallel.pool is first_pool


class TestDifferentialLearn:
    """Full learning loops: every recorded float and the model evolution."""

    @pytest.mark.parametrize("workers", [2, 4])
    def test_learn_identical_on_tiny(self, workers):
        scenario = tiny_scenario(seed=3)
        serial = PainterOrchestrator(scenario, OrchestratorConfig(prefix_budget=4))
        serial_result = serial.learn(iterations=3)
        with PainterOrchestrator(
            scenario, OrchestratorConfig(prefix_budget=4, workers=workers)
        ) as parallel:
            parallel_result = parallel.learn(iterations=3)
            assert iteration_tuples(parallel_result) == iteration_tuples(
                serial_result
            )
            # The learned models converged to identical preference state,
            # which means every mid-solve epoch bump replayed identically.
            assert model_snapshot(parallel) == model_snapshot(serial)

    @pytest.mark.slow
    def test_learn_identical_on_prototype(self):
        scenario = prototype_scenario(seed=0)
        serial = PainterOrchestrator(scenario, OrchestratorConfig(prefix_budget=6))
        serial_result = serial.learn(iterations=3)
        with PainterOrchestrator(
            scenario, OrchestratorConfig(prefix_budget=6, workers=4)
        ) as parallel:
            parallel_result = parallel.learn(iterations=3)
            assert iteration_tuples(parallel_result) == iteration_tuples(
                serial_result
            )
            assert model_snapshot(parallel) == model_snapshot(serial)


class TestJournalIdentity:
    """The traced span stream must not betray which path ran."""

    @staticmethod
    def _traced_learn(workers):
        scenario = tiny_scenario(seed=3)
        with telemetry_session("parallel-identity") as journal:
            config = OrchestratorConfig(prefix_budget=3, workers=workers)
            with PainterOrchestrator(scenario, config) as orchestrator:
                orchestrator.learn(iterations=2)
        return journal.to_jsonl()

    def test_journal_byte_identical(self):
        assert self._traced_learn(0) == self._traced_learn(2)


class TestFallback:
    """Worker death degrades gracefully to an identical serial answer."""

    def test_dead_pool_rebuilt_between_solves(self):
        with PainterOrchestrator(
            tiny_scenario(seed=3), OrchestratorConfig(prefix_budget=3, workers=2)
        ) as orchestrator:
            first = orchestrator.solve()
            orchestrator._parallel.pool.kill_worker(0)
            PERF.reset()
            second = orchestrator.solve()  # rebuilds the pool, stays parallel
            assert config_pairs(second) == config_pairs(first)
            assert PERF.counter("parallel.solve_calls").value == 1
            assert PERF.counter("parallel.fallbacks").value == 0

    def test_mid_solve_death_falls_back_serial(self, monkeypatch):
        scenario = tiny_scenario(seed=3)
        reference = PainterOrchestrator(scenario, OrchestratorConfig(prefix_budget=3)).solve()
        with PainterOrchestrator(
            scenario, OrchestratorConfig(prefix_budget=3, workers=2)
        ) as orchestrator:
            solver = orchestrator._ensure_parallel(2)
            solver.pool.kill_worker(0)
            # Hide the death from the pre-solve liveness check so the solve
            # itself trips over the dead worker (the mid-solve crash path).
            monkeypatch.setattr(solver.pool, "alive", lambda: True)
            PERF.reset()
            config = orchestrator.solve()
            assert config_pairs(config) == config_pairs(reference)
            assert PERF.counter("parallel.fallbacks").value == 1
            # The breaker pins later solves to the serial path: the failed
            # attempt counted one parallel call and no further ones accrue.
            assert orchestrator._parallel_broken
            attempts = PERF.counter("parallel.solve_calls").value
            orchestrator.solve()
            assert PERF.counter("parallel.solve_calls").value == attempts

    def test_direct_solver_raises_on_dead_worker(self):
        scenario = tiny_scenario(seed=3)
        orchestrator = PainterOrchestrator(scenario, OrchestratorConfig(prefix_budget=3))
        solver = ParallelSolver(orchestrator, 2)
        try:
            solver.pool.kill_worker(1)
            with pytest.raises(WorkerPoolError):
                solver.solve()
            assert solver.pool.broken
        finally:
            solver.close()
            orchestrator.close()

    def test_worker_crash_fault_event(self):
        """A chaos-schedule WorkerCrash kills the worker; solve still lands."""
        from repro.faults import FaultInjector, FaultSchedule, WorkerCrash
        from repro.simulation.events import EventLoop

        scenario = tiny_scenario(seed=3)
        reference = PainterOrchestrator(scenario, OrchestratorConfig(prefix_budget=3)).solve()
        with PainterOrchestrator(
            scenario, OrchestratorConfig(prefix_budget=3, workers=2)
        ) as orchestrator:
            first = orchestrator.solve()
            assert config_pairs(first) == config_pairs(reference)

            injector = FaultInjector(
                FaultSchedule(events=(WorkerCrash(start_s=5.0, worker_index=1),))
            )
            arm_worker_faults(injector, orchestrator._parallel.pool)
            loop = EventLoop()
            injector.arm(loop)
            loop.run_until(10.0)
            assert not orchestrator._parallel.pool.alive()

            config = orchestrator.solve()  # rebuild-or-fallback, same answer
            assert config_pairs(config) == config_pairs(reference)


class TestKillSwitch:
    def test_disable_parallel_forces_serial(self):
        assert parallel_enabled()
        disable_parallel()
        try:
            PERF.reset()
            with PainterOrchestrator(
                tiny_scenario(seed=3),
                OrchestratorConfig(prefix_budget=3, workers=2),
            ) as orchestrator:
                orchestrator.solve()
            assert PERF.counter("parallel.solve_calls").value == 0
        finally:
            enable_parallel()

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            OrchestratorConfig(prefix_budget=3, workers=-1)

    def test_solver_requires_two_workers(self):
        orchestrator = PainterOrchestrator(tiny_scenario(seed=3), OrchestratorConfig(prefix_budget=3))
        with pytest.raises(ValueError):
            ParallelSolver(orchestrator, 1)


class TestInvalidateFailure:
    """``ParallelSolver.invalidate`` must surface pool failure, not eat it."""

    def test_invalidate_reports_false_on_broken_pool(self):
        scenario = tiny_scenario(seed=3)
        orchestrator = PainterOrchestrator(
            scenario, OrchestratorConfig(prefix_budget=3)
        )
        solver = ParallelSolver(orchestrator, 2)
        try:
            assert solver.invalidate((1, 2)) is True
            solver.pool.kill_worker(0)
            assert solver.invalidate((3,)) is False
            assert solver.pool.broken
            # Already-broken pools short-circuit without broadcasting.
            assert solver.invalidate((4,)) is False
        finally:
            solver.close()
            orchestrator.close()

    def test_failed_invalidate_trips_breaker_in_observe_path(self, monkeypatch):
        """A learned-set bump that can't reach the workers must tear the
        pool down immediately, not leave the next solve to time out."""
        scenario = tiny_scenario(seed=3)
        with PainterOrchestrator(
            scenario, OrchestratorConfig(prefix_budget=3, workers=2)
        ) as orchestrator:
            config = orchestrator.solve()
            solver = orchestrator._parallel
            assert solver is not None
            monkeypatch.setattr(solver, "invalidate", lambda ug_ids: False)
            PERF.reset()
            report = orchestrator.execute_and_observe(config, iteration=0)
            assert report.learned > 0  # the broadcast was actually needed
            assert orchestrator._parallel is None
            assert orchestrator._parallel_broken
            assert PERF.counter("parallel.fallbacks").value == 1


class TestWorkerTimeoutConfig:
    def test_timeout_validation(self):
        with pytest.raises(ValueError):
            OrchestratorConfig(prefix_budget=3, worker_timeout_s=0.0)
        with pytest.raises(ValueError):
            OrchestratorConfig(prefix_budget=3, worker_timeout_s=-5.0)
        OrchestratorConfig(prefix_budget=3, worker_timeout_s=12.5)

    def test_timeout_reaches_the_pool(self):
        scenario = tiny_scenario(seed=3)
        with PainterOrchestrator(
            scenario,
            OrchestratorConfig(prefix_budget=3, workers=2, worker_timeout_s=42.0),
        ) as orchestrator:
            solver = orchestrator._ensure_parallel(2)
            assert solver is not None
            assert solver.pool.timeout_s == 42.0

    def test_default_timeout_when_unset(self):
        from repro.parallel.pool import DEFAULT_TIMEOUT_S

        scenario = tiny_scenario(seed=3)
        with PainterOrchestrator(
            scenario, OrchestratorConfig(prefix_budget=3, workers=2)
        ) as orchestrator:
            solver = orchestrator._ensure_parallel(2)
            assert solver is not None
            assert solver.pool.timeout_s == DEFAULT_TIMEOUT_S
