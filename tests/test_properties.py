"""Property-based tests over randomly generated worlds.

These exercise cross-module invariants the unit tests check only pointwise:
whatever the topology, Algorithm 1 must respect its budget and never lose to
anycast; ground-truth routing must stay policy-compliant; benefit ranges
must stay ordered.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.benefit import realized_benefit, realized_improvement
from repro.core.orchestrator import PainterOrchestrator
from repro.core.routing_model import RoutingModel
from repro.scenario import Scenario, build_scenario
from repro.topology.builder import TopologyConfig
from repro.usergroups.generation import UserGroupConfig

_SCENARIO_CACHE = {}


def make_world(seed: int, n_pops: int, n_stub: int, n_ugs: int) -> Scenario:
    key = (seed, n_pops, n_stub, n_ugs)
    if key not in _SCENARIO_CACHE:
        _SCENARIO_CACHE[key] = build_scenario(
            name=f"prop-{seed}",
            topology_config=TopologyConfig(
                seed=seed,
                n_pops=n_pops,
                n_tier1=2,
                n_transit=3,
                n_regional=8,
                n_stub=n_stub,
            ),
            ug_config=UserGroupConfig(seed=seed + 1, n_ugs=n_ugs),
        )
    return _SCENARIO_CACHE[key]


world_params = st.tuples(
    st.integers(min_value=0, max_value=6),  # seed
    st.integers(min_value=3, max_value=7),  # pops
    st.sampled_from([25, 40]),  # stubs
    st.sampled_from([20, 35]),  # ugs
)

slow = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.data_too_large, HealthCheck.too_slow],
)


class TestScenarioInvariants:
    @given(world_params)
    @slow
    def test_anycast_never_beats_best_possible(self, params):
        world = make_world(*params)
        for ug in world.user_groups:
            assert (
                world.best_possible_latency_ms(ug)
                <= world.anycast_latency_ms(ug) + 1e-9
            )

    @given(world_params)
    @slow
    def test_ground_truth_always_compliant(self, params):
        world = make_world(*params)
        all_ids = frozenset(p.peering_id for p in world.deployment.peerings)
        for ug in world.user_groups[:10]:
            ingress = world.routing.ingress_for(ug, all_ids)
            assert ingress is not None
            assert world.catalog.is_compliant(ug, ingress)


class TestOrchestratorInvariants:
    @given(world_params, st.integers(min_value=1, max_value=4))
    @slow
    def test_budget_respected_and_beneficial(self, params, budget):
        world = make_world(*params)
        orchestrator = PainterOrchestrator(world, prefix_budget=budget)
        config = orchestrator.solve()
        assert config.prefix_count <= budget
        # Expected benefit of the solution is non-negative and each UG's
        # realized improvement is floored at zero by anycast fallback.
        assert orchestrator.evaluator.expected_benefit(config) >= -1e-9
        for ug in world.user_groups[:10]:
            improvement = realized_improvement(world, ug, config)
            possible = world.anycast_latency_ms(ug) - world.best_possible_latency_ms(ug)
            assert -1e-9 <= improvement <= possible + 1e-9

    @given(world_params)
    @slow
    def test_ranges_ordered_for_solution(self, params):
        world = make_world(*params)
        orchestrator = PainterOrchestrator(world, prefix_budget=3)
        config = orchestrator.solve()
        evaluation = orchestrator.evaluator.evaluate(config)
        assert evaluation.lower <= evaluation.mean <= evaluation.upper + 1e-9
        assert evaluation.lower <= evaluation.estimated <= evaluation.upper + 1e-9

    @given(world_params)
    @slow
    def test_learning_never_below_anycast(self, params):
        world = make_world(*params)
        orchestrator = PainterOrchestrator(world, prefix_budget=3)
        result = orchestrator.learn(iterations=2)
        for benefit in result.realized_benefits:
            assert benefit >= -1e-9


class TestRoutingModelInvariants:
    @given(world_params, st.floats(min_value=100.0, max_value=20000.0))
    @slow
    def test_candidates_monotone_in_d_reuse(self, params, d_reuse):
        world = make_world(*params)
        tight = RoutingModel(world.catalog, d_reuse_km=d_reuse / 2)
        loose = RoutingModel(world.catalog, d_reuse_km=d_reuse)
        for ug in world.user_groups[:8]:
            advertised = world.catalog.ingress_ids(ug)
            assert tight.candidate_ingresses(ug, advertised) <= loose.candidate_ingresses(
                ug, advertised
            )
