"""Ground-truth latency model and ping measurement."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.measurement.latency_model import LatencyModel, LatencyModelConfig
from repro.measurement.ping import DEFAULT_PING_COUNT, Pinger, PingResult
from repro.topology.geo import fiber_rtt_ms, haversine_km


@pytest.fixture(scope="module")
def world(small_scenario):
    return small_scenario


class TestConfigValidation:
    def test_bad_last_mile(self):
        with pytest.raises(ValueError):
            LatencyModelConfig(last_mile_min_ms=5, last_mile_max_ms=1)

    def test_bad_probability(self):
        with pytest.raises(ValueError):
            LatencyModelConfig(inflation_prob_peer=1.5)


class TestLatencyModel:
    def test_deterministic(self, world):
        model_a = LatencyModel(LatencyModelConfig(seed=9))
        model_b = LatencyModel(LatencyModelConfig(seed=9))
        ug = world.user_groups[0]
        peering = world.deployment.peerings[0]
        assert model_a.latency_ms(ug, peering) == model_b.latency_ms(ug, peering)

    def test_seed_changes_values(self, world):
        ug = world.user_groups[0]
        peering = world.deployment.peerings[0]
        a = LatencyModel(LatencyModelConfig(seed=1)).latency_ms(ug, peering)
        b = LatencyModel(LatencyModelConfig(seed=2)).latency_ms(ug, peering)
        assert a != b

    def test_latency_at_least_propagation(self, world):
        model = world.latency_model
        for ug in world.user_groups[:20]:
            for peering in world.deployment.peerings[:10]:
                distance = haversine_km(ug.location, peering.pop.location)
                assert model.latency_ms(ug, peering) >= fiber_rtt_ms(distance)

    def test_day_zero_has_no_events(self, world):
        model = world.latency_model
        ug = world.user_groups[0]
        peering = world.deployment.peerings[0]
        base = (
            model.propagation_ms(ug, peering)
            + model.last_mile_ms(ug)
            + model.inflation_penalty_ms(ug, peering)
        )
        assert model.latency_ms(ug, peering, day=0) == pytest.approx(base)

    def test_day_varies_latency(self, world):
        model = world.latency_model
        ug = world.user_groups[0]
        peering = world.deployment.peerings[0]
        values = {round(model.latency_ms(ug, peering, day=d), 6) for d in range(12)}
        assert len(values) > 1

    def test_day_latency_never_below_day0(self, world):
        """Drift and events are strictly additive degradations."""
        model = world.latency_model
        ug = world.user_groups[1]
        for peering in world.deployment.peerings[:8]:
            base = model.latency_ms(ug, peering, day=0)
            for day in range(1, 8):
                assert model.latency_ms(ug, peering, day=day) >= base

    def test_transit_inflation_more_likely(self, world):
        """Across many pairs, transit peerings carry more large penalties."""
        model = world.latency_model
        transit = [p for p in world.deployment.peerings if p.is_transit]
        peers = [p for p in world.deployment.peerings if not p.is_transit]

        def big_penalty_rate(peerings):
            total = hits = 0
            for ug in world.user_groups:
                for peering in peerings[:15]:
                    total += 1
                    if model.inflation_penalty_ms(ug, peering) >= 20.0:
                        hits += 1
            return hits / max(total, 1)

        assert big_penalty_rate(transit) > big_penalty_rate(peers)

    def test_caching_consistent(self, world):
        model = world.latency_model
        ug = world.user_groups[2]
        peering = world.deployment.peerings[2]
        assert model.latency_ms(ug, peering) == model.latency_ms(ug, peering)


class TestPingResult:
    def test_statistics(self):
        result = PingResult(samples_ms=(5.0, 3.0, 4.0))
        assert result.min_ms == 3.0
        assert result.max_ms == 5.0
        assert result.mean_ms == 4.0
        assert result.count == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PingResult(samples_ms=())

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError):
            PingResult(samples_ms=(1.0, -2.0))


class TestPinger:
    def test_min_of_samples_bounds_true_rtt(self, world):
        model = world.latency_model
        pinger = Pinger(model, jitter_mean_ms=2.0, seed=4)
        ug = world.user_groups[0]
        peering = world.deployment.peerings[0]
        true_rtt = model.latency_ms(ug, peering)
        result = pinger.ping(ug, peering)
        assert result is not None
        assert result.count == DEFAULT_PING_COUNT
        assert result.min_ms >= true_rtt
        assert result.min_ms - true_rtt < 25.0  # min-of-7 gets close

    def test_zero_jitter_exact(self, world):
        model = world.latency_model
        pinger = Pinger(model, jitter_mean_ms=0.0, seed=4)
        ug = world.user_groups[0]
        peering = world.deployment.peerings[0]
        assert pinger.min_latency_ms(ug, peering) == model.latency_ms(ug, peering)

    def test_total_loss_returns_none(self, world):
        pinger = Pinger(world.latency_model, loss_rate=0.999999, seed=4)
        ug = world.user_groups[0]
        peering = world.deployment.peerings[0]
        assert pinger.ping(ug, peering, count=3) is None

    def test_invalid_parameters(self, world):
        with pytest.raises(ValueError):
            Pinger(world.latency_model, jitter_mean_ms=-1)
        with pytest.raises(ValueError):
            Pinger(world.latency_model, loss_rate=1.0)
        pinger = Pinger(world.latency_model)
        with pytest.raises(ValueError):
            pinger.ping(world.user_groups[0], world.deployment.peerings[0], count=0)

    @given(st.integers(min_value=1, max_value=30))
    @settings(max_examples=20, deadline=None)
    def test_more_samples_never_raise_minimum(self, n):
        from repro.scenario import tiny_scenario

        world = tiny_scenario(seed=3)
        pinger_a = Pinger(world.latency_model, jitter_mean_ms=3.0, seed=11)
        pinger_b = Pinger(world.latency_model, jitter_mean_ms=3.0, seed=11)
        ug = world.user_groups[0]
        peering = world.deployment.peerings[0]
        few = pinger_a.min_latency_ms(ug, peering, count=n)
        many = pinger_b.min_latency_ms(ug, peering, count=n + 10)
        # Same RNG stream start: the first n samples coincide, so adding
        # samples can only lower (or keep) the minimum.
        assert many <= few
