"""Full DNS resolution chain and failover-delay distribution."""

import math

import pytest

from repro.dns.resolution import (
    AuthoritativeServer,
    CachingResolver,
    SimulatedClient,
    failover_delay_distribution,
    failover_delay_s,
)


class TestAuthoritative:
    def test_set_and_query(self):
        auth = AuthoritativeServer(default_ttl_s=60.0)
        auth.set_record("svc", "10.0.0.1", time_s=5.0)
        record = auth.query("svc", time_s=10.0)
        assert record.address == "10.0.0.1"
        assert record.ttl_s == 60.0
        assert record.issued_at_s == 10.0
        assert auth.last_update_s("svc") == 5.0

    def test_update_changes_answer(self):
        auth = AuthoritativeServer()
        auth.set_record("svc", "10.0.0.1", time_s=0.0)
        auth.set_record("svc", "10.0.0.2", time_s=30.0)
        assert auth.query("svc", time_s=31.0).address == "10.0.0.2"

    def test_unknown_hostname(self):
        with pytest.raises(KeyError):
            AuthoritativeServer().query("ghost", time_s=0.0)

    def test_bad_ttl(self):
        with pytest.raises(ValueError):
            AuthoritativeServer(default_ttl_s=0.0)


class TestCachingResolver:
    def test_cache_hit_within_ttl(self):
        auth = AuthoritativeServer(default_ttl_s=60.0)
        auth.set_record("svc", "10.0.0.1", time_s=0.0)
        resolver = CachingResolver(auth)
        resolver.resolve("svc", time_s=0.0)
        auth.set_record("svc", "10.0.0.2", time_s=1.0)
        # Still serves the cached answer until TTL expiry.
        assert resolver.resolve("svc", time_s=30.0).address == "10.0.0.1"
        assert resolver.resolve("svc", time_s=61.0).address == "10.0.0.2"
        assert resolver.cache_hits == 1
        assert resolver.cache_misses == 2

    def test_downstream_ttl_is_remaining_lifetime(self):
        auth = AuthoritativeServer(default_ttl_s=60.0)
        auth.set_record("svc", "10.0.0.1", time_s=0.0)
        resolver = CachingResolver(auth)
        resolver.resolve("svc", time_s=0.0)
        later = resolver.resolve("svc", time_s=45.0)
        assert later.ttl_s == pytest.approx(15.0)


class TestClient:
    def _setup(self, respect_ttl=True, extra=0.0):
        auth = AuthoritativeServer(default_ttl_s=60.0)
        auth.set_record("svc", "10.0.0.1", time_s=0.0)
        resolver = CachingResolver(auth)
        client = SimulatedClient(
            resolver=resolver, respect_ttl=respect_ttl, violation_extra_s=extra
        )
        return auth, client

    def test_respecting_client_refreshes_after_ttl(self):
        auth, client = self._setup(respect_ttl=True)
        assert client.lookup("svc", 0.0) == "10.0.0.1"
        auth.set_record("svc", "10.0.0.2", time_s=10.0)
        assert client.lookup("svc", 30.0) == "10.0.0.1"  # cached
        assert client.lookup("svc", 61.0) == "10.0.0.2"  # refreshed

    def test_violating_client_keeps_stale_address(self):
        auth, client = self._setup(respect_ttl=False, extra=300.0)
        client.lookup("svc", 0.0)
        auth.set_record("svc", "10.0.0.2", time_s=10.0)
        # Way past TTL, still the stale address (the §2.2 behavior).
        assert client.lookup("svc", 200.0) == "10.0.0.1"
        assert client.lookup("svc", 60.0 + 300.0 + 1.0) == "10.0.0.2"


class TestFailoverDelay:
    def test_respecting_client_bounded_by_ttl(self):
        auth = AuthoritativeServer(default_ttl_s=60.0)
        auth.set_record("svc.example", "old", time_s=0.0)
        client = SimulatedClient(resolver=CachingResolver(auth))
        delay = failover_delay_s(
            client, auth, "svc.example",
            lookup_time_s=10.0, failure_time_s=30.0, new_address="new",
        )
        # Looked up at t=10 with TTL 60 -> client cache expires at 70; the
        # resolver cached at 10 too, so the worst case is bounded by TTL.
        assert 0.0 <= delay <= 60.0 + 1.0

    def test_violating_client_much_slower(self):
        auth = AuthoritativeServer(default_ttl_s=60.0)
        auth.set_record("svc.example", "old", time_s=0.0)
        honest = SimulatedClient(resolver=CachingResolver(auth))
        honest_delay = failover_delay_s(
            honest, auth, "svc.example", 10.0, 30.0, "new"
        )
        auth2 = AuthoritativeServer(default_ttl_s=60.0)
        auth2.set_record("svc.example", "old", time_s=0.0)
        violator = SimulatedClient(
            resolver=CachingResolver(auth2), respect_ttl=False, violation_extra_s=600.0
        )
        violator_delay = failover_delay_s(
            violator, auth2, "svc.example", 10.0, 30.0, "new",
            horizon_s=2000.0,
        )
        assert violator_delay > honest_delay

    def test_distribution_shape(self):
        delays = failover_delay_distribution(
            ttl_s=60.0, n_clients=100, violator_fraction=0.3, seed=1
        )
        assert len(delays) == 100
        assert all(not math.isinf(d) for d in delays)
        honest_like = [d for d in delays if d <= 61.0]
        slow = [d for d in delays if d > 61.0]
        # Most clients fail over within a TTL; the violating tail takes far
        # longer — the reason Fig. 10's DNS band is minutes wide.
        assert len(honest_like) > len(slow)
        assert slow and max(slow) > 300.0

    def test_distribution_validation(self):
        with pytest.raises(ValueError):
            failover_delay_distribution(violator_fraction=1.5)
