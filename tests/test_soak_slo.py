"""Invariants of the per-UG SLO ledger (:mod:`repro.soak.slo`).

The ledger is the soak run's source of truth, so its hard invariants get
property coverage: downtime + uptime must always equal the accounted wall
window, flow accounting must close per UG per window, the bucketed p99 is
monotone under added latency, and the full state round-trips through
``state_dict``/``from_state`` with a stable fingerprint.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.soak.slo import (
    DEFAULT_BUCKET_EDGES_MS,
    SLOAccountingError,
    SLOLedger,
)

pytestmark = pytest.mark.soak


def observe(ledger, window, offered, served, up=None, latency=None, **kw):
    """One consistent window: unroutable absorbs the offered/served gap."""
    n = ledger.n_ugs
    offered = np.asarray(offered, dtype=np.int64)
    served = np.asarray(served, dtype=np.int64)
    ledger.observe_window(
        window,
        offered=offered,
        served=served,
        unroutable=offered - served,
        shed=np.zeros(n, dtype=np.int64),
        latency_ms=(
            np.full(n, 25.0) if latency is None else np.asarray(latency)
        ),
        up_mask=np.ones(n, dtype=bool) if up is None else np.asarray(up),
        switches=np.zeros(n, dtype=np.int64),
        **kw,
    )


class TestAvailabilityInvariant:
    @given(
        n_ugs=st.integers(1, 16),
        window_s=st.floats(1.0, 7200.0),
        masks=st.lists(
            st.lists(st.booleans(), min_size=1, max_size=16),
            min_size=1,
            max_size=8,
        ),
    )
    @settings(max_examples=50)
    def test_downtime_plus_uptime_is_wall_window(
        self, n_ugs, window_s, masks
    ):
        ledger = SLOLedger(n_ugs, window_s=window_s)
        for window, mask in enumerate(masks):
            up = np.array([(mask * n_ugs)[:n_ugs]], dtype=bool).ravel()
            observe(ledger, window, np.full(n_ugs, 5), np.full(n_ugs, 5), up=up)
        wall = len(masks) * window_s
        np.testing.assert_allclose(ledger.downtime_s + ledger.uptime_s, wall)
        assert ledger.wall_window_s == pytest.approx(wall)
        ledger.check_invariants()

    def test_down_window_accrues_downtime(self):
        ledger = SLOLedger(3, window_s=60.0)
        observe(ledger, 0, [4, 4, 4], [4, 0, 4], up=[True, False, True])
        assert ledger.downtime_s.tolist() == [0.0, 60.0, 0.0]
        assert ledger.window_rows[-1]["down_ugs"] == 1


class TestFlowAccounting:
    def test_mismatch_is_counted_and_trips_invariants(self):
        ledger = SLOLedger(2, window_s=10.0)
        ledger.observe_window(
            0,
            offered=np.array([5, 5]),
            served=np.array([5, 3]),  # one flow vanished for UG 1
            unroutable=np.array([0, 1]),
            shed=np.zeros(2, dtype=np.int64),
            latency_ms=np.full(2, 10.0),
            up_mask=np.ones(2, dtype=bool),
            switches=np.zeros(2, dtype=np.int64),
        )
        assert ledger.accounting_errors == 1
        assert ledger.window_rows[-1]["accounting_errors"] == 1
        with pytest.raises(SLOAccountingError):
            ledger.check_invariants()

    def test_zero_flow_window_is_clean(self):
        ledger = SLOLedger(4, window_s=30.0)
        observe(ledger, 0, np.zeros(4), np.zeros(4))
        assert ledger.accounting_errors == 0
        assert ledger.windows_accounted == 1
        assert ledger.p99_ms() is None
        assert ledger.summary()["fleet_p99_ms"] is None
        ledger.check_invariants()

    def test_shape_mismatch_is_rejected(self):
        ledger = SLOLedger(3, window_s=10.0)
        with pytest.raises(ValueError, match="offered"):
            ledger.observe_window(
                0,
                offered=np.zeros(2, dtype=np.int64),
                served=np.zeros(3, dtype=np.int64),
                unroutable=np.zeros(3, dtype=np.int64),
                shed=np.zeros(3, dtype=np.int64),
                latency_ms=np.zeros(3),
                up_mask=np.ones(3, dtype=bool),
                switches=np.zeros(3, dtype=np.int64),
            )


class TestLatencyQuantiles:
    @given(
        latencies=st.lists(st.floats(0.5, 900.0), min_size=1, max_size=12),
        shift=st.floats(0.0, 500.0),
    )
    @settings(max_examples=50)
    def test_p99_monotone_under_added_latency(self, latencies, shift):
        base = SLOLedger(1, window_s=10.0)
        shifted = SLOLedger(1, window_s=10.0)
        for window, latency in enumerate(latencies):
            observe(base, window, [7], [7], latency=[latency])
            observe(shifted, window, [7], [7], latency=[latency + shift])
        assert shifted.p99_ms() >= base.p99_ms()

    def test_p99_is_a_covering_bucket_edge(self):
        ledger = SLOLedger(1, window_s=10.0)
        observe(ledger, 0, [100], [100], latency=[37.0])
        p99 = ledger.p99_ms(0)
        assert p99 in DEFAULT_BUCKET_EDGES_MS
        assert p99 >= 37.0
        # All mass in one bucket: every quantile answers the same edge.
        assert ledger.p99_ms(0, q=0.5) == p99

    def test_overflow_bucket_reports_inf(self):
        ledger = SLOLedger(1, window_s=10.0)
        observe(ledger, 0, [10], [10], latency=[1e6])
        assert ledger.p99_ms() == math.inf

    def test_down_ugs_do_not_pollute_the_histogram(self):
        ledger = SLOLedger(2, window_s=10.0)
        observe(
            ledger,
            0,
            [5, 5],
            [5, 0],
            up=[True, False],
            latency=[20.0, np.inf],
        )
        assert ledger.latency_hist[1].sum() == 0
        assert ledger.p99_ms(1) is None


class TestBudgetAndRoundTrip:
    def test_budget_overspend(self):
        ledger = SLOLedger(2, window_s=10.0, failover_budget=3)
        ledger.observe_window(
            0,
            offered=np.array([1, 1]),
            served=np.array([1, 1]),
            unroutable=np.zeros(2, dtype=np.int64),
            shed=np.zeros(2, dtype=np.int64),
            latency_ms=np.full(2, 5.0),
            up_mask=np.ones(2, dtype=bool),
            switches=np.array([5, 2]),
        )
        assert ledger.budget_overspend().tolist() == [2, 0]
        assert ledger.summary()["budget_violations"] == 1

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=20)
    def test_state_round_trip_preserves_fingerprint(self, seed):
        rng = np.random.default_rng(seed)
        ledger = SLOLedger(5, window_s=45.0, failover_budget=2)
        for window in range(3):
            offered = rng.integers(0, 50, size=5)
            served = rng.integers(0, offered + 1, size=5)
            observe(
                ledger,
                window,
                offered,
                served,
                up=rng.random(5) > 0.3,
                latency=rng.uniform(1.0, 400.0, size=5),
                remaps=int(rng.integers(0, 3)),
            )
        clone = SLOLedger.from_state(ledger.state_dict())
        assert clone.fingerprint() == ledger.fingerprint()
        assert clone.window_rows == ledger.window_rows
        np.testing.assert_array_equal(clone.latency_hist, ledger.latency_hist)
        assert clone.p99_ms() == ledger.p99_ms()
        # Divergent history ⇒ divergent fingerprint.
        observe(clone, 3, np.full(5, 1), np.full(5, 1))
        assert clone.fingerprint() != ledger.fingerprint()

    def test_unknown_version_is_rejected(self):
        state = SLOLedger(1, window_s=1.0).state_dict()
        state["version"] = 99
        with pytest.raises(ValueError, match="version"):
            SLOLedger.from_state(state)
