"""The optimality comparator: ILP/LP/brute agreement and bound soundness.

The load-bearing properties (ISSUE 7 acceptance criteria):

* on every tested instance ``greedy_benefit <= lp_bound`` and
  ``ilp_benefit <= lp_bound`` (the LP relaxation is a sound envelope);
* on brute-forceable instances the ILP value matches exhaustive
  enumeration bit-for-bit (both recomputed through the same
  ``BenefitMatrix.selection_value`` float path).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    AdvertisementConfig,
    BenefitEvaluator,
    BenefitMatrix,
    OrchestratorConfig,
    PainterOrchestrator,
    RoutingModel,
)
from repro.optimality import (
    DEFAULT_REL_TOL,
    BackendUnavailable,
    SelectionProblem,
    assert_lp_sound,
    available_backends,
    brute_force,
    greedy_selection,
    solve_ilp,
)
from repro.optimality.solvers import lp_bound

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - test-only dependency
    HAVE_HYPOTHESIS = False

HAVE_SCIPY = "scipy" in available_backends()
needs_scipy = pytest.mark.skipif(not HAVE_SCIPY, reason="scipy not installed")
needs_hypothesis = pytest.mark.skipif(
    not HAVE_HYPOTHESIS, reason="hypothesis not installed"
)


def _matrix_from_entries(n_ugs, n_peerings, entries):
    """A BenefitMatrix straight from (row, col, gain) triples."""
    seen = {}
    for row, col, gain in entries:
        seen[(row % n_ugs, col % n_peerings)] = gain
    keys = sorted(seen)
    return BenefitMatrix(
        ug_ids=tuple(range(n_ugs)),
        peering_ids=tuple(100 + c for c in range(n_peerings)),
        rows=np.array([k[0] for k in keys], dtype=np.intp),
        cols=np.array([k[1] for k in keys], dtype=np.intp),
        gains=np.array([seen[k] for k in keys], dtype=np.float64),
    )


@pytest.fixture(scope="module")
def evaluator(scenario):
    return BenefitEvaluator(scenario, RoutingModel(scenario.catalog))


@pytest.fixture(scope="module")
def matrix(evaluator):
    return evaluator.benefit_matrix()


class TestBenefitMatrix:
    def test_shape_and_entries_positive(self, matrix, scenario):
        assert matrix.n_ugs == len(scenario.user_groups)
        assert matrix.nnz > 0
        assert (matrix.gains > 0).all()
        assert matrix.rows.max() < matrix.n_ugs
        assert matrix.cols.max() < matrix.n_peerings

    def test_selection_value_empty_and_all(self, matrix):
        assert matrix.selection_value([]) == 0.0
        all_cols = range(matrix.n_peerings)
        full = matrix.selection_value(all_cols)
        assert full >= matrix.selection_value([0])
        # Duplicates don't double-count.
        assert matrix.selection_value([0, 0]) == matrix.selection_value([0])

    def test_selection_value_out_of_range(self, matrix):
        with pytest.raises(ValueError):
            matrix.selection_value([matrix.n_peerings])
        with pytest.raises(ValueError):
            matrix.selection_value([-1])

    def test_column_of(self, matrix):
        for col, pid in enumerate(matrix.peering_ids):
            assert matrix.column_of(pid) == col
        with pytest.raises(ValueError):
            matrix.column_of(-12345)

    def test_singleton_matches_expected_benefit(self, evaluator, matrix, scenario):
        # Eq. 2 over a singleton advertised set is the peering's own
        # latency, so a one-prefix/one-peering config's benefit must equal
        # the matrix column's selection value exactly.
        for col in (0, matrix.n_peerings // 2, matrix.n_peerings - 1):
            pid = matrix.peering_ids[col]
            config = AdvertisementConfig.from_pairs([(0, pid)])
            assert evaluator.expected_benefit(config) == pytest.approx(
                matrix.selection_value([col]), rel=1e-12
            )


class TestSelectionProblem:
    def test_budget_clamped(self, matrix):
        problem = SelectionProblem.build(matrix, matrix.n_peerings + 50)
        assert problem.budget == matrix.n_peerings
        assert problem.requested_budget == matrix.n_peerings + 50
        assert problem.over_budget

    def test_budget_validation(self, matrix):
        with pytest.raises(ValueError):
            SelectionProblem.build(matrix, 0)
        with pytest.raises(ValueError):
            SelectionProblem(matrix=matrix, budget=5, requested_budget=99)

    def test_value_of_enforces_budget(self, matrix):
        problem = SelectionProblem.build(matrix, 1)
        with pytest.raises(ValueError):
            problem.value_of([0, 1])


class TestBruteAndGreedy:
    def test_greedy_monotone_in_budget(self, matrix):
        values = [
            greedy_selection(SelectionProblem.build(matrix, k))[0]
            for k in (1, 2, 3, 4)
        ]
        assert values == sorted(values)

    def test_brute_force_tiny(self, matrix):
        problem = SelectionProblem.build(matrix, 2)
        value, chosen = brute_force(problem)
        assert len(chosen) <= 2
        assert value == matrix.selection_value(chosen)
        # Greedy can never beat the exhaustive optimum.
        assert greedy_selection(problem)[0] <= value + 1e-9

    def test_brute_force_refuses_blowup(self, matrix):
        problem = SelectionProblem.build(matrix, matrix.n_peerings // 2)
        with pytest.raises(ValueError):
            brute_force(problem, max_combinations=10)


@needs_scipy
class TestScipySolvers:
    def test_ilp_matches_brute_force_tiny(self, matrix):
        problem = SelectionProblem.build(matrix, 3)
        ilp = solve_ilp(problem, backend="scipy")
        brute_value, _ = brute_force(problem)
        assert ilp.value == brute_value  # bit-for-bit, same float path
        assert ilp.status == "optimal"
        assert len(ilp.chosen) <= 3
        assert ilp.chosen_peering_ids == tuple(
            matrix.peering_ids[c] for c in ilp.chosen
        )

    def test_bounds_sound_on_scenario(self, matrix):
        for budget in (1, 2, 4, 8):
            problem = SelectionProblem.build(matrix, budget)
            bound = lp_bound(problem)
            slack = bound.value * DEFAULT_REL_TOL + 1e-9
            assert greedy_selection(problem)[0] <= bound.value + slack
            assert solve_ilp(problem, backend="scipy").value <= bound.value + slack

    def test_greedy_no_reuse_below_ilp_and_lp(self, scenario):
        budget = 4
        orch = PainterOrchestrator(
            scenario,
            OrchestratorConfig(prefix_budget=budget, allow_reuse=False),
        )
        config = orch.solve()
        greedy = orch.evaluator.expected_benefit(config)
        problem = SelectionProblem.from_evaluator(orch.evaluator, budget)
        ilp = solve_ilp(problem, backend="scipy")
        bound = lp_bound(problem)
        slack = bound.value * DEFAULT_REL_TOL + 1e-9
        assert greedy <= ilp.value + slack
        assert ilp.value <= bound.value + slack

    def test_envelope_gate_on_reuse_config(self, scenario):
        orch = PainterOrchestrator(scenario, OrchestratorConfig(prefix_budget=3))
        config = orch.solve()
        envelope = assert_lp_sound(orch.evaluator, config)
        assert envelope.sound
        assert 0.0 < envelope.utilization <= 1.0 + DEFAULT_REL_TOL
        # Budget = the config's distinct peerings, not the prefix budget.
        assert envelope.budget == len(config.all_peering_ids())

    def test_envelope_violation_raises(self, evaluator, scenario):
        pid = next(iter(scenario.catalog.ingress_ids(scenario.user_groups[0])))
        config = AdvertisementConfig.from_pairs([(0, pid)])
        with pytest.raises(AssertionError, match="envelope violated"):
            assert_lp_sound(evaluator, config, benefit=1e12)

    def test_trivial_empty_matrix(self):
        empty = _matrix_from_entries(2, 2, [])
        problem = SelectionProblem.build(empty, 1)
        assert solve_ilp(problem, backend="scipy").value == 0.0
        assert lp_bound(problem).value == 0.0
        assert brute_force(problem)[0] == 0.0


class TestBackends:
    def test_unknown_backend(self, matrix):
        with pytest.raises(ValueError):
            solve_ilp(SelectionProblem.build(matrix, 2), backend="gurobi")

    def test_pulp_gated_when_missing(self, matrix):
        if "pulp" in available_backends():
            pytest.skip("pulp installed; gating not exercised")
        with pytest.raises(BackendUnavailable):
            solve_ilp(SelectionProblem.build(matrix, 2), backend="pulp")

    def test_auto_solves(self, matrix):
        problem = SelectionProblem.build(matrix, 2)
        outcome = solve_ilp(problem, backend="auto")
        assert outcome.value == brute_force(problem)[0]

    def test_brute_backend(self, matrix):
        problem = SelectionProblem.build(matrix, 2)
        outcome = solve_ilp(problem, backend="brute")
        assert outcome.backend == "brute"
        assert outcome.value == brute_force(problem)[0]


@needs_scipy
@pytest.mark.slow
class TestGoldenAzureGap:
    """Golden greedy-vs-optimal gap numbers for the azure preset subset.

    Pins both halves of the comparator: the greedy's benefit (a solver
    regression moves it) and the ILP/LP optimum (a formulation regression
    moves those).  Values regenerate via the snippet in the JSON's sibling
    — see EXPERIMENTS.md's optimality section.
    """

    def test_azure_gap_matches_golden(self):
        import json
        from pathlib import Path

        from repro.experiments.optimality import run_greedy_gap
        from repro.scenario import azure_scenario

        golden = json.loads(
            (Path(__file__).parent / "data" / "golden_optimality.json").read_text()
        )["azure_seed0_ugs200"]
        result = run_greedy_gap(
            scenario=azure_scenario(seed=golden["seed"], n_ugs=golden["n_ugs"]),
            budgets=(4, 8),
            backend="scipy",
        )
        for row in result.rows:
            d = dict(zip(result.columns, row))
            want = golden[f"budget_{d['budget']}"]
            assert d["greedy_benefit"] == pytest.approx(
                want["greedy_benefit"], rel=1e-9
            )
            assert d["ilp_benefit"] == pytest.approx(want["ilp_benefit"], rel=1e-6)
            assert d["lp_bound"] == pytest.approx(want["lp_bound"], rel=1e-6)
            assert d["gap_pct"] == pytest.approx(want["gap_pct"], abs=1e-3)
            assert d["ilp_status"] == "optimal"


if HAVE_HYPOTHESIS:

    @st.composite
    def random_problems(draw):
        n_ugs = draw(st.integers(min_value=1, max_value=6))
        n_peerings = draw(st.integers(min_value=1, max_value=6))
        entries = draw(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=n_ugs - 1),
                    st.integers(min_value=0, max_value=n_peerings - 1),
                    st.floats(
                        min_value=0.01,
                        max_value=500.0,
                        allow_nan=False,
                        allow_infinity=False,
                    ),
                ),
                max_size=18,
            )
        )
        matrix = _matrix_from_entries(n_ugs, n_peerings, entries)
        budget = draw(st.integers(min_value=1, max_value=n_peerings + 2))
        return SelectionProblem.build(matrix, budget)

    @needs_scipy
    @needs_hypothesis
    @settings(max_examples=40, deadline=None)
    @given(problem=random_problems())
    def test_property_greedy_below_lp_bound(problem):
        greedy_value, _ = greedy_selection(problem)
        bound = lp_bound(problem)
        assert greedy_value <= bound.value * (1.0 + DEFAULT_REL_TOL) + 1e-9

    @needs_scipy
    @needs_hypothesis
    @settings(max_examples=40, deadline=None)
    @given(problem=random_problems())
    def test_property_ilp_matches_brute_force(problem):
        ilp = solve_ilp(problem, backend="scipy")
        brute_value, _ = brute_force(problem)
        assert ilp.value == brute_value  # bit-for-bit
        assert ilp.value <= lp_bound(problem).value * (1.0 + DEFAULT_REL_TOL) + 1e-9
