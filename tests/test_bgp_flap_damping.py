"""Route-flap damping and orchestrator pacing."""

import math

import pytest

from repro.bgp.flap_damping import (
    DampingConfig,
    FlapDampingState,
    learning_iteration_pacing_s,
    safe_update_interval_s,
)

PREFIX = "184.164.224.0/24"


class TestConfigValidation:
    def test_bad_half_life(self):
        with pytest.raises(ValueError):
            DampingConfig(half_life_s=0)

    def test_bad_thresholds(self):
        with pytest.raises(ValueError):
            DampingConfig(reuse_threshold=3000, suppress_threshold=2000)

    def test_bad_max(self):
        with pytest.raises(ValueError):
            DampingConfig(max_penalty=100)


class TestDampingState:
    def test_single_flap_not_suppressed(self):
        state = FlapDampingState()
        state.record_flap(PREFIX, 100, now_s=0.0)
        assert not state.is_suppressed(PREFIX, 100, now_s=1.0)
        assert state.penalty(PREFIX, 100, now_s=0.0) == pytest.approx(1000.0)

    def test_rapid_flaps_suppress(self):
        state = FlapDampingState()
        state.record_flap(PREFIX, 100, now_s=0.0)
        state.record_flap(PREFIX, 100, now_s=1.0)
        state.record_flap(PREFIX, 100, now_s=2.0)
        assert state.is_suppressed(PREFIX, 100, now_s=2.5)

    def test_penalty_decays_with_half_life(self):
        config = DampingConfig(half_life_s=100.0)
        state = FlapDampingState(config)
        state.record_flap(PREFIX, 100, now_s=0.0)
        assert state.penalty(PREFIX, 100, now_s=100.0) == pytest.approx(500.0)
        assert state.penalty(PREFIX, 100, now_s=200.0) == pytest.approx(250.0)

    def test_suppression_lifts_after_decay(self):
        config = DampingConfig(half_life_s=60.0)
        state = FlapDampingState(config)
        for t in (0.0, 1.0, 2.0):
            state.record_flap(PREFIX, 100, now_s=t)
        assert state.is_suppressed(PREFIX, 100, now_s=3.0)
        reusable_in = state.time_until_reusable_s(PREFIX, 100, now_s=3.0)
        assert reusable_in > 0
        assert not state.is_suppressed(PREFIX, 100, now_s=3.0 + reusable_in + 1.0)

    def test_penalty_capped(self):
        state = FlapDampingState()
        for t in range(30):
            state.record_flap(PREFIX, 100, now_s=float(t))
        assert state.penalty(PREFIX, 100, now_s=30.0) <= state.config.max_penalty

    def test_per_peer_isolation(self):
        state = FlapDampingState()
        for t in (0.0, 1.0, 2.0):
            state.record_flap(PREFIX, 100, now_s=t)
        assert state.is_suppressed(PREFIX, 100, now_s=2.5)
        assert not state.is_suppressed(PREFIX, 200, now_s=2.5)

    def test_time_backwards_rejected(self):
        state = FlapDampingState()
        state.record_flap(PREFIX, 100, now_s=10.0)
        with pytest.raises(ValueError):
            state.penalty(PREFIX, 100, now_s=5.0)

    def test_unsuppressed_reusable_immediately(self):
        state = FlapDampingState()
        assert state.time_until_reusable_s(PREFIX, 100, now_s=0.0) == 0.0


class TestPacing:
    def test_safe_interval_prevents_suppression(self):
        config = DampingConfig()
        interval = safe_update_interval_s(flaps_per_update=1, config=config)
        state = FlapDampingState(config)
        # Many updates paced at the safe interval never suppress.
        for i in range(50):
            t = i * (interval + 1.0)
            state.record_flap(PREFIX, 100, now_s=t)
            assert not state.is_suppressed(PREFIX, 100, now_s=t + 0.001), i

    def test_faster_than_safe_interval_suppresses(self):
        config = DampingConfig()
        interval = safe_update_interval_s(flaps_per_update=1, config=config)
        state = FlapDampingState(config)
        suppressed = False
        for i in range(50):
            t = i * (interval / 4.0)
            state.record_flap(PREFIX, 100, now_s=t)
            suppressed = suppressed or state.is_suppressed(PREFIX, 100, now_s=t)
        assert suppressed

    def test_heavy_updates_unpaceable(self):
        assert safe_update_interval_s(flaps_per_update=3) == math.inf

    def test_iteration_pacing_dominated_by_compute_for_many_prefixes(self):
        # Paper: ~30 s/prefix of computation; at 100 prefixes that dwarfs
        # the damping-safe interval.
        pacing = learning_iteration_pacing_s(prefix_count=100)
        assert pacing == pytest.approx(3000.0)

    def test_iteration_pacing_floor_is_damping(self):
        pacing = learning_iteration_pacing_s(prefix_count=1)
        assert pacing >= safe_update_interval_s(1)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            safe_update_interval_s(0)
        with pytest.raises(ValueError):
            learning_iteration_pacing_s(0)
