"""Installation: binding configurations to prefixes and TM-PoPs."""

import pytest

from repro.core.installation import DEFAULT_SERVICE, install_configuration
from repro.core.orchestrator import PainterOrchestrator
from repro.topology.cloud import PrefixPool


@pytest.fixture(scope="module")
def deployed():
    from repro.scenario import tiny_scenario

    scenario = tiny_scenario(seed=3)
    config = PainterOrchestrator(scenario, prefix_budget=4).solve()
    installation = install_configuration(scenario, config)
    return scenario, config, installation


class TestInstallation:
    def test_every_prefix_bound_to_distinct_cidr(self, deployed):
        _scenario, config, installation = deployed
        cidrs = [p.cidr for p in installation.prefixes] + [installation.anycast_cidr]
        assert len(cidrs) == len(set(cidrs))
        assert len(installation.prefixes) == config.prefix_count

    def test_cidr_lookup(self, deployed):
        _scenario, config, installation = deployed
        for prefix_index in config.prefixes:
            assert installation.cidr_for(prefix_index).endswith("/24")
        with pytest.raises(KeyError):
            installation.cidr_for(999)

    def test_announcement_plan_matches_config(self, deployed):
        scenario, config, installation = deployed
        plan = dict(installation.announcements())
        # Anycast goes everywhere.
        assert plan[installation.anycast_cidr] == frozenset(
            p.peering_id for p in scenario.deployment.peerings
        )
        for installed in installation.prefixes:
            assert plan[installed.cidr] == config.peerings_for(installed.prefix_index)

    def test_tm_pops_created_for_all_pops(self, deployed):
        scenario, _config, installation = deployed
        assert set(installation.tm_pops) == {p.name for p in scenario.deployment.pops}
        for tm_pop in installation.tm_pops.values():
            assert tm_pop.serves(DEFAULT_SERVICE)

    def test_prefixes_attached_where_advertised(self, deployed):
        scenario, _config, installation = deployed
        for installed in installation.prefixes:
            for pop_name, tm_pop in installation.tm_pops.items():
                attached = installed.cidr in tm_pop.ingress_prefixes
                assert attached == (pop_name in installed.pop_names)

    def test_anycast_attached_everywhere(self, deployed):
        _scenario, _config, installation = deployed
        for tm_pop in installation.tm_pops.values():
            assert installation.anycast_cidr in tm_pop.ingress_prefixes

    def test_directory_resolves_service(self, deployed):
        _scenario, _config, installation = deployed
        prefixes = installation.directory.prefixes_for_service(DEFAULT_SERVICE)
        assert installation.anycast_cidr in prefixes
        for installed in installation.prefixes:
            assert installed.cidr in prefixes

    def test_pops_for_cidr(self, deployed):
        _scenario, _config, installation = deployed
        installed = installation.prefixes[0]
        assert installation.pops_for_cidr(installed.cidr) == installed.pop_names
        with pytest.raises(KeyError):
            installation.pops_for_cidr("203.0.113.0/24")

    def test_pool_exhaustion_detected(self, deployed):
        scenario, config, _installation = deployed
        tiny_pool = PrefixPool("10.0.0.0/23")  # two /24s only
        if config.prefix_count + 1 <= 2:
            pytest.skip("config small enough to fit the tiny pool")
        with pytest.raises(RuntimeError):
            install_configuration(scenario, config, pool=tiny_pool)

    def test_service_placement_respected(self, deployed):
        scenario, config, _installation = deployed
        some_pop = scenario.deployment.pops[0].name
        installation = install_configuration(
            scenario,
            config,
            service_placement={"sql": [some_pop]},
        )
        for pop_name, tm_pop in installation.tm_pops.items():
            assert tm_pop.serves("sql") == (pop_name == some_pop)


class TestEndToEndWithTrafficManager:
    def test_tm_edge_uses_installed_prefixes(self, deployed):
        from repro.traffic_manager.tm_edge import TMEdge

        _scenario, _config, installation = deployed
        edge = TMEdge(edge_ip="203.0.113.9", directory=installation.directory)
        available = edge.resolve_service(DEFAULT_SERVICE)
        assert installation.anycast_cidr in available
        assert len(available) >= 2
        rtts = {cidr: 20.0 + i for i, cidr in enumerate(sorted(available))}
        selected = edge.record_measurements(DEFAULT_SERVICE, rtts)
        assert selected == sorted(available)[0]
