"""Advertisement configurations: construction, mutation, invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.advertisement import AdvertisementConfig


class TestConstruction:
    def test_empty(self):
        config = AdvertisementConfig()
        assert config.prefix_count == 0
        assert config.pair_count == 0
        assert config.prefixes == []
        assert config.reuse_factor() == 0.0

    def test_from_pairs(self):
        config = AdvertisementConfig.from_pairs([(0, 1), (0, 2), (1, 3)])
        assert config.prefix_count == 2
        assert config.pair_count == 3
        assert config.peerings_for(0) == frozenset({1, 2})
        assert config.peerings_for(1) == frozenset({3})

    def test_negative_prefix_rejected(self):
        with pytest.raises(ValueError):
            AdvertisementConfig().add(-1, 0)

    def test_add_idempotent(self):
        config = AdvertisementConfig()
        config.add(0, 5)
        config.add(0, 5)
        assert config.pair_count == 1


class TestMutation:
    def test_remove(self):
        config = AdvertisementConfig.from_pairs([(0, 1), (0, 2)])
        config.remove(0, 1)
        assert config.peerings_for(0) == frozenset({2})

    def test_remove_last_drops_prefix(self):
        config = AdvertisementConfig.from_pairs([(0, 1)])
        config.remove(0, 1)
        assert config.prefix_count == 0

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            AdvertisementConfig().remove(0, 1)

    def test_copy_is_independent(self):
        config = AdvertisementConfig.from_pairs([(0, 1)])
        clone = config.copy()
        clone.add(0, 2)
        assert config.pair_count == 1
        assert clone.pair_count == 2


class TestQueries:
    def test_advertises(self):
        config = AdvertisementConfig.from_pairs([(2, 7)])
        assert config.advertises(2, 7)
        assert not config.advertises(2, 8)
        assert not config.advertises(3, 7)

    def test_pairs_sorted(self):
        config = AdvertisementConfig.from_pairs([(1, 9), (0, 5), (1, 2)])
        assert list(config.pairs()) == [(0, 5), (1, 2), (1, 9)]

    def test_all_peering_ids(self):
        config = AdvertisementConfig.from_pairs([(0, 1), (1, 1), (1, 2)])
        assert config.all_peering_ids() == frozenset({1, 2})

    def test_reuse_factor(self):
        config = AdvertisementConfig.from_pairs([(0, 1), (0, 2), (0, 3), (1, 4)])
        assert config.reuse_factor() == pytest.approx(2.0)

    def test_equality(self):
        a = AdvertisementConfig.from_pairs([(0, 1), (1, 2)])
        b = AdvertisementConfig.from_pairs([(1, 2), (0, 1)])
        assert a == b
        b.add(1, 3)
        assert a != b

    def test_str_mentions_counts(self):
        config = AdvertisementConfig.from_pairs([(0, 1), (0, 2)])
        assert "1 prefixes" in str(config)
        assert "2 pairs" in str(config)


pairs_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=5), st.integers(min_value=0, max_value=30)),
    max_size=40,
)


class TestProperties:
    @given(pairs_strategy)
    @settings(max_examples=50, deadline=None)
    def test_counts_consistent(self, pairs):
        config = AdvertisementConfig.from_pairs(pairs)
        assert config.pair_count == len(set(pairs))
        assert config.prefix_count == len({p for p, _ in set(pairs)})
        assert config.pair_count == len(list(config.pairs()))

    @given(pairs_strategy)
    @settings(max_examples=50, deadline=None)
    def test_mapping_roundtrip(self, pairs):
        config = AdvertisementConfig.from_pairs(pairs)
        rebuilt = AdvertisementConfig.from_pairs(config.pairs())
        assert rebuilt == config
        assert rebuilt.as_mapping() == config.as_mapping()
