"""Traceroute synthesis and the §3.1 policy-compliance validation."""

import pytest

from repro.measurement.traceroute import (
    Traceroute,
    TracerouteConfig,
    TracerouteHop,
    synthesize_traceroute,
    validate_policy_compliance,
)


class TestTracerouteStructure:
    def test_hops_monotone_rtt(self, scenario):
        trace = synthesize_traceroute(scenario, scenario.user_groups[0])
        rtts = [hop.rtt_ms for hop in trace.hops]
        assert rtts == sorted(rtts)
        assert rtts[0] > 0

    def test_clean_trace_follows_as_path(self, scenario):
        clean = TracerouteConfig(seed=1, unresponsive_prob=0.0, misattribution_prob=0.0)
        ug = scenario.user_groups[0]
        trace = synthesize_traceroute(scenario, ug, clean)
        expected = (ug.asn,) + tuple(scenario.routing.default_as_path(ug))
        assert trace.responded_asns == expected

    def test_entry_asn_matches_ground_truth(self, scenario):
        clean = TracerouteConfig(seed=1, unresponsive_prob=0.0, misattribution_prob=0.0)
        for ug in scenario.user_groups[:15]:
            trace = synthesize_traceroute(scenario, ug, clean)
            ingress = scenario.routing.anycast_ingress(ug)
            entry = trace.entry_asn
            if entry == ug.asn:
                continue  # direct peering: UG's own AS is the entry
            assert entry == ingress.peer_asn

    def test_unresponsive_hops_present(self, scenario):
        lossy = TracerouteConfig(seed=2, unresponsive_prob=0.9)
        trace = synthesize_traceroute(scenario, scenario.user_groups[0], lossy)
        assert any(hop.asn is None for hop in trace.hops)

    def test_deterministic(self, scenario):
        cfg = TracerouteConfig(seed=3)
        a = synthesize_traceroute(scenario, scenario.user_groups[1], cfg)
        b = synthesize_traceroute(scenario, scenario.user_groups[1], cfg)
        assert a == b

    def test_dedup_consecutive_asns(self):
        trace = Traceroute(
            ug_id=0,
            hops=(
                TracerouteHop(asn=5, rtt_ms=1.0),
                TracerouteHop(asn=5, rtt_ms=2.0),
                TracerouteHop(asn=None, rtt_ms=3.0),
                TracerouteHop(asn=7, rtt_ms=4.0),
            ),
        )
        assert trace.responded_asns == (5, 7)

    def test_empty_trace_has_no_entry(self):
        assert Traceroute(ug_id=0, hops=()).entry_asn is None


class TestValidation:
    def test_clean_traces_never_violate(self, scenario):
        clean = TracerouteConfig(seed=1, unresponsive_prob=0.0, misattribution_prob=0.0)
        report = validate_policy_compliance(scenario, clean)
        assert report.violations == 0
        assert report.total == len(scenario.user_groups)

    def test_misattribution_produces_small_violation_rate(self, small_scenario):
        """With ~4% hop misattribution the apparent violation rate is a few
        percent — the paper's observed 4%."""
        config = TracerouteConfig(seed=5, misattribution_prob=0.04)
        report = validate_policy_compliance(small_scenario, config)
        assert 0.0 <= report.violation_rate <= 0.25
        heavy = TracerouteConfig(seed=5, misattribution_prob=0.5)
        heavy_report = validate_policy_compliance(small_scenario, heavy)
        assert heavy_report.violation_rate > report.violation_rate

    def test_report_accounting(self, scenario):
        report = validate_policy_compliance(scenario)
        assert report.total == len(scenario.user_groups)
        assert 0 <= report.violations <= report.total - report.unresolvable

    def test_subset_of_ugs(self, scenario):
        subset = scenario.user_groups[:5]
        report = validate_policy_compliance(scenario, ugs=subset)
        assert report.total == 5
