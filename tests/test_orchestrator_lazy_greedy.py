"""Validate the lazy-greedy acceleration against an exact greedy reference.

The orchestrator re-evaluates stale marginals only when they reach the top
of its heap.  For non-submodular corners this can deviate from exact greedy
(recompute every marginal, every step), so this suite re-implements the
exact version and checks the accelerated solver stays equivalent in value.
"""

import pytest

from repro.core.advertisement import AdvertisementConfig
from repro.core.orchestrator import EPSILON_BENEFIT, PainterOrchestrator
from repro.core.routing_model import RoutingModel
from repro.core.benefit import BenefitEvaluator


def exact_greedy_solve(scenario, prefix_budget, d_reuse_km=3000.0):
    """Algorithm 1 with exhaustive marginal recomputation at every step."""
    model = RoutingModel(scenario.catalog, d_reuse_km=d_reuse_km)
    evaluator = BenefitEvaluator(scenario, model)
    config = AdvertisementConfig()
    all_peerings = [p.peering_id for p in scenario.deployment.peerings]
    anycast = {ug.ug_id: scenario.anycast_latency_ms(ug) for ug in scenario.user_groups}

    def ug_latency(ug, candidate_config):
        best = anycast[ug.ug_id]
        for prefix in candidate_config.prefixes:
            latency = evaluator.expected_prefix_latency(
                ug, candidate_config.peerings_for(prefix)
            )
            if latency is not None and latency < best:
                best = latency
        return best

    def total_benefit(candidate_config):
        return sum(
            ug.volume * (anycast[ug.ug_id] - ug_latency(ug, candidate_config))
            for ug in scenario.user_groups
        )

    current = total_benefit(config)
    for prefix in range(prefix_budget):
        while True:
            best_pid, best_delta = None, EPSILON_BENEFIT
            for pid in all_peerings:
                if config.advertises(prefix, pid):
                    continue
                trial = config.copy()
                trial.add(prefix, pid)
                delta = total_benefit(trial) - current
                if delta > best_delta:
                    best_pid, best_delta = pid, delta
            if best_pid is None:
                break
            config.add(prefix, best_pid)
            current += best_delta
        if not config.peerings_for(prefix):
            break
    return config, current


@pytest.mark.parametrize("seed", [3, 5])
def test_lazy_greedy_matches_exact_on_tiny_worlds(seed):
    from repro.scenario import build_scenario
    from repro.topology.builder import TopologyConfig
    from repro.usergroups.generation import UserGroupConfig

    scenario = build_scenario(
        "lazy-check",
        TopologyConfig(seed=seed, n_pops=4, n_tier1=2, n_transit=2, n_regional=6, n_stub=25),
        UserGroupConfig(seed=seed + 1, n_ugs=20),
    )
    budget = 3
    exact_config, exact_benefit = exact_greedy_solve(scenario, budget)

    orchestrator = PainterOrchestrator(scenario, prefix_budget=budget)
    lazy_config = orchestrator.solve()
    lazy_benefit = orchestrator.evaluator.expected_benefit(lazy_config)

    # Configs may differ at ties, but the achieved expected benefit must be
    # essentially the same.
    assert lazy_benefit >= 0.97 * exact_benefit
    assert lazy_config.prefix_count <= budget
    assert exact_config.prefix_count <= budget
