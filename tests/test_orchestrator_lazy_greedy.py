"""Validate the lazy-greedy acceleration against an exact greedy reference.

The orchestrator re-evaluates stale marginals only when they reach the top
of its heap.  For non-submodular corners this can deviate from exact greedy
(recompute every marginal, every step), so this suite re-implements the
exact version and checks the accelerated solver stays equivalent in value.

It also pins the solver's exact output on fixed seeds (goldens generated
after the two Algorithm-1 bugfixes: the stale-marginal re-push comparison
and the premature inner-loop abort on negative refreshed marginals), and
checks the perf counters prove the heap actually skips work.
"""

import json
from pathlib import Path

import pytest

from repro.core.advertisement import AdvertisementConfig
from repro.core.orchestrator import EPSILON_BENEFIT, PainterOrchestrator
from repro.core.routing_model import RoutingModel
from repro.core.benefit import BenefitEvaluator
from repro.perf import PERF

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_solve_configs.json"


def config_pairs(config):
    """Canonical [prefix, peering] pair list for golden comparison."""
    return sorted(
        [prefix, pid]
        for prefix in config.prefixes
        for pid in config.peerings_for(prefix)
    )


def exact_greedy_solve(scenario, prefix_budget, d_reuse_km=3000.0):
    """Algorithm 1 with exhaustive marginal recomputation at every step."""
    model = RoutingModel(scenario.catalog, d_reuse_km=d_reuse_km)
    evaluator = BenefitEvaluator(scenario, model)
    config = AdvertisementConfig()
    all_peerings = [p.peering_id for p in scenario.deployment.peerings]
    anycast = {ug.ug_id: scenario.anycast_latency_ms(ug) for ug in scenario.user_groups}

    def ug_latency(ug, candidate_config):
        best = anycast[ug.ug_id]
        for prefix in candidate_config.prefixes:
            latency = evaluator.expected_prefix_latency(
                ug, candidate_config.peerings_for(prefix)
            )
            if latency is not None and latency < best:
                best = latency
        return best

    def total_benefit(candidate_config):
        return sum(
            ug.volume * (anycast[ug.ug_id] - ug_latency(ug, candidate_config))
            for ug in scenario.user_groups
        )

    current = total_benefit(config)
    for prefix in range(prefix_budget):
        while True:
            best_pid, best_delta = None, EPSILON_BENEFIT
            for pid in all_peerings:
                if config.advertises(prefix, pid):
                    continue
                trial = config.copy()
                trial.add(prefix, pid)
                delta = total_benefit(trial) - current
                if delta > best_delta:
                    best_pid, best_delta = pid, delta
            if best_pid is None:
                break
            config.add(prefix, best_pid)
            current += best_delta
        if not config.peerings_for(prefix):
            break
    return config, current


@pytest.mark.parametrize("seed", [3, 5])
def test_lazy_greedy_matches_exact_on_tiny_worlds(seed):
    from repro.scenario import build_scenario
    from repro.topology.builder import TopologyConfig
    from repro.usergroups.generation import UserGroupConfig

    scenario = build_scenario(
        "lazy-check",
        TopologyConfig(seed=seed, n_pops=4, n_tier1=2, n_transit=2, n_regional=6, n_stub=25),
        UserGroupConfig(seed=seed + 1, n_ugs=20),
    )
    budget = 3
    exact_config, exact_benefit = exact_greedy_solve(scenario, budget)

    orchestrator = PainterOrchestrator(scenario, prefix_budget=budget)
    lazy_config = orchestrator.solve()
    lazy_benefit = orchestrator.evaluator.expected_benefit(lazy_config)

    # Configs may differ at ties, but the achieved expected benefit must be
    # essentially the same.
    assert lazy_benefit >= 0.97 * exact_benefit
    assert lazy_config.prefix_count <= budget
    assert exact_config.prefix_count <= budget


@pytest.mark.parametrize("seed", range(5))
def test_lazy_matches_exact_benefit_on_tiny_presets(seed):
    """Property check: the lazy heap's value tracks exhaustive greedy.

    Exhaustive greedy re-scores every remaining peering after every accept;
    the lazy solver refreshes only heap tops.  Across seeds their accepted
    sets may differ at near-ties, but the modeled benefit must agree to
    within a fraction of a percent.
    """
    from repro.scenario import tiny_scenario

    scenario = tiny_scenario(seed=seed)
    budget = 4
    exact_config, exact_benefit = exact_greedy_solve(scenario, budget)

    orchestrator = PainterOrchestrator(scenario, prefix_budget=budget)
    lazy_config = orchestrator.solve()
    lazy_benefit = orchestrator.evaluator.expected_benefit(lazy_config)

    assert lazy_benefit >= 0.99 * exact_benefit
    assert lazy_config.prefix_count <= budget


class TestGoldenConfigs:
    """solve() is deterministic and bit-identical to the stored goldens.

    The goldens were captured after the two lazy-greedy bugfixes, so any
    regression in either fix (or an accidental behavior change in the
    evaluation fast path) shows up as a pair-list diff here.
    """

    @pytest.fixture(scope="class")
    def goldens(self):
        return json.loads(GOLDEN_PATH.read_text())

    @pytest.mark.parametrize("name,seed", [("tiny_seed0", 0), ("tiny_seed3", 3)])
    def test_solve_matches_golden(self, goldens, name, seed):
        from repro.scenario import tiny_scenario

        golden = goldens[name]
        scenario = tiny_scenario(seed=seed)
        orchestrator = PainterOrchestrator(scenario, prefix_budget=golden["budget"])
        config = orchestrator.solve()
        assert config_pairs(config) == golden["pairs"]

    def test_solve_is_deterministic(self):
        from repro.scenario import tiny_scenario

        configs = [
            PainterOrchestrator(tiny_scenario(seed=1), prefix_budget=3).solve()
            for _ in range(2)
        ]
        assert config_pairs(configs[0]) == config_pairs(configs[1])


class TestBudgetDiagnostic:
    def test_over_budget_solve_warns_and_counts(self, caplog):
        """A budget beyond the candidate peerings must be surfaced loudly.

        The solve still succeeds (extra prefixes simply go unallocated) but
        the orchestrator logs a warning and bumps the
        ``orchestrator.budget_over_candidates`` counter so the
        mis-specification is visible — and so greedy-vs-ILP comparisons
        (which clamp to the candidate count) are read at the right budget.
        """
        import logging

        from repro.scenario import tiny_scenario

        scenario = tiny_scenario(seed=3)
        n_candidates = len(
            {
                pid
                for ug in scenario.user_groups
                for pid in scenario.catalog.ingress_ids(ug)
            }
        )
        before = PERF.counter("orchestrator.budget_over_candidates").value
        orchestrator = PainterOrchestrator(
            scenario, prefix_budget=n_candidates + 5
        )
        with caplog.at_level(logging.WARNING, logger="repro.core.orchestrator"):
            config = orchestrator.solve()
        assert PERF.counter("orchestrator.budget_over_candidates").value > before
        assert any(
            "exceeds" in record.message and "candidate" in record.message
            for record in caplog.records
        )
        assert len(config.all_peering_ids()) <= n_candidates

    def test_in_budget_solve_stays_silent(self):
        from repro.scenario import tiny_scenario

        before = PERF.counter("orchestrator.budget_over_candidates").value
        PainterOrchestrator(tiny_scenario(seed=3), prefix_budget=3).solve()
        assert PERF.counter("orchestrator.budget_over_candidates").value == before


class TestLazinessCounters:
    def test_marginal_evals_stay_below_naive_count(self):
        """The heap must skip most re-evaluations a naive greedy would do.

        ``naive_marginal_evals`` counts what full re-scoring after every
        accept would have cost for the same accept trace; the lazy counter
        must come in strictly (and substantially) below it.
        """
        from repro.scenario import tiny_scenario

        PERF.reset()
        orchestrator = PainterOrchestrator(tiny_scenario(seed=0), prefix_budget=4)
        orchestrator.solve()
        lazy = PERF.counter("orchestrator.marginal_evals").value
        naive = PERF.counter("orchestrator.naive_marginal_evals").value
        assert lazy > 0
        assert naive > 0
        assert lazy < naive

    def test_latency_matrix_reused_across_prefixes(self):
        from repro.scenario import tiny_scenario

        PERF.reset()
        orchestrator = PainterOrchestrator(tiny_scenario(seed=0), prefix_budget=4)
        orchestrator.solve()
        stats = PERF.cache("evaluator.latency_matrix")
        # The matrix is precomputed once; later reads (evaluate, scans
        # through the slow path) must hit it.
        assert stats.misses > 0
        assert stats.invalidations == 0


class TestEvaluatorInvalidation:
    def test_observe_invalidates_expected_latency_memo(self):
        """observe() must move the UG's epoch and force recomputation."""
        from repro.scenario import tiny_scenario

        scenario = tiny_scenario(seed=0)
        model = RoutingModel(scenario.catalog)
        evaluator = BenefitEvaluator(scenario, model)
        ug = scenario.user_groups[0]
        ids = sorted(scenario.catalog.ingress_ids(ug))
        assert len(ids) >= 2
        advertised = frozenset(ids[:2])

        before = evaluator.expected_prefix_latency(ug, advertised)
        epoch_before = model.ug_epoch(ug.ug_id)
        # Uniform assumption: the mean over both measurable candidates.
        model.observe(ug, advertised, ids[0])
        assert model.ug_epoch(ug.ug_id) != epoch_before

        after = evaluator.expected_prefix_latency(ug, advertised)
        # The learned winner collapses the candidate set to the observed
        # ingress, so the expectation equals its true latency.
        assert after == evaluator.latency(ug, ids[0])
        if evaluator.latency(ug, ids[0]) != evaluator.latency(ug, ids[1]):
            assert after != before

    def test_unobserved_ug_memo_survives(self):
        from repro.scenario import tiny_scenario

        scenario = tiny_scenario(seed=0)
        model = RoutingModel(scenario.catalog)
        evaluator = BenefitEvaluator(scenario, model)
        ug_a, ug_b = scenario.user_groups[0], scenario.user_groups[1]
        ids_a = sorted(scenario.catalog.ingress_ids(ug_a))
        ids_b = sorted(scenario.catalog.ingress_ids(ug_b))
        adv_b = frozenset(ids_b[:2])

        first = evaluator.expected_prefix_latency(ug_b, adv_b)
        stats = PERF.cache("evaluator.expected_latency")
        hits_before = stats.hits
        model.observe(ug_a, frozenset(ids_a[:2]), ids_a[0])
        # ug_b's epoch did not move: the memo entry must be served as a hit.
        assert evaluator.expected_prefix_latency(ug_b, adv_b) == first
        assert stats.hits == hits_before + 1
