"""Tunneling data plane: the full Appendix D packet journey."""

import pytest

from repro.traffic_manager.tunnel import (
    ENCAP_OVERHEAD_BYTES,
    NatExhaustedError,
    PORTS_PER_ADDRESS,
    Packet,
    TMPoPNat,
    decapsulate,
    encapsulate,
    overhead_fraction,
)

CLIENT = Packet(
    src_ip="192.168.1.10",
    dst_ip="1.1.1.1",  # the anycast service address the tenant targets
    src_port=50123,
    dst_port=443,
    proto="tcp",
    payload_bytes=1400,
)


class TestEncapsulation:
    def test_encapsulate_wraps(self):
        outer = encapsulate(CLIENT, edge_ip="203.0.113.1", tunnel_dst_ip="184.164.224.1")
        assert outer.is_encapsulated
        assert outer.src_ip == "203.0.113.1"
        assert outer.dst_ip == "184.164.224.1"
        assert outer.inner == CLIENT
        assert outer.wire_bytes == CLIENT.payload_bytes + ENCAP_OVERHEAD_BYTES

    def test_double_encapsulation_rejected(self):
        outer = encapsulate(CLIENT, "203.0.113.1", "184.164.224.1")
        with pytest.raises(ValueError):
            encapsulate(outer, "203.0.113.1", "184.164.224.1")

    def test_decapsulate_roundtrip(self):
        outer = encapsulate(CLIENT, "203.0.113.1", "184.164.224.1")
        assert decapsulate(outer) == CLIENT

    def test_decapsulate_plain_packet_rejected(self):
        with pytest.raises(ValueError):
            decapsulate(CLIENT)

    def test_overhead_fraction(self):
        assert overhead_fraction(1400) == pytest.approx(16 / 1400)
        with pytest.raises(ValueError):
            overhead_fraction(0)


class TestPacketJourney:
    """Steps 1-6 of Figure 13, end to end."""

    def test_full_journey_restores_addressing(self):
        nat = TMPoPNat(nat_ips=["100.64.0.1"])
        # (2) TM-Edge encapsulates toward the chosen ingress prefix.
        tunneled = encapsulate(CLIENT, edge_ip="203.0.113.1", tunnel_dst_ip="184.164.224.1")
        # (3) TM-PoP decapsulates and NATs toward the service.
        toward_service = nat.ingress(tunneled)
        assert toward_service.src_ip == "100.64.0.1"
        assert toward_service.dst_ip == CLIENT.dst_ip
        assert toward_service.dst_port == CLIENT.dst_port
        # (4) The service replies to the NAT endpoint.
        reply = Packet(
            src_ip=CLIENT.dst_ip,
            dst_ip=toward_service.src_ip,
            src_port=CLIENT.dst_port,
            dst_port=toward_service.src_port,
            proto="tcp",
            payload_bytes=900,
        )
        # (5) TM-PoP restores the client address and re-encapsulates.
        back_to_edge = nat.egress(reply)
        assert back_to_edge.is_encapsulated
        assert back_to_edge.dst_ip == "203.0.113.1"  # to the TM-Edge
        # (6) TM-Edge decapsulates; the client sees the service address.
        final = decapsulate(back_to_edge)
        assert final.dst_ip == CLIENT.src_ip
        assert final.dst_port == CLIENT.src_port
        assert final.src_ip == CLIENT.dst_ip

    def test_same_flow_reuses_binding(self):
        nat = TMPoPNat(nat_ips=["100.64.0.1"])
        tunneled = encapsulate(CLIENT, "203.0.113.1", "184.164.224.1")
        first = nat.ingress(tunneled)
        second = nat.ingress(tunneled)
        assert (first.src_ip, first.src_port) == (second.src_ip, second.src_port)
        assert nat.active_bindings == 1

    def test_distinct_flows_get_distinct_ports(self):
        nat = TMPoPNat(nat_ips=["100.64.0.1"])
        a = encapsulate(CLIENT, "203.0.113.1", "184.164.224.1")
        other_client = Packet(
            src_ip="192.168.1.11",
            dst_ip="1.1.1.1",
            src_port=50123,
            dst_port=443,
            proto="tcp",
            payload_bytes=100,
        )
        b = encapsulate(other_client, "203.0.113.1", "184.164.224.1")
        pa, pb = nat.ingress(a), nat.ingress(b)
        assert (pa.src_ip, pa.src_port) != (pb.src_ip, pb.src_port)

    def test_unknown_reply_rejected(self):
        nat = TMPoPNat(nat_ips=["100.64.0.1"])
        reply = Packet(
            src_ip="1.1.1.1", dst_ip="100.64.0.1", src_port=443, dst_port=2000,
            proto="tcp", payload_bytes=1,
        )
        with pytest.raises(KeyError):
            nat.egress(reply)

    def test_plain_packet_on_ingress_rejected(self):
        nat = TMPoPNat(nat_ips=["100.64.0.1"])
        with pytest.raises(ValueError):
            nat.ingress(CLIENT)


class TestNatCapacity:
    def test_capacity_per_address(self):
        nat = TMPoPNat(nat_ips=["100.64.0.1", "100.64.0.2"])
        assert nat.capacity == 2 * PORTS_PER_ADDRESS

    def test_needs_an_address(self):
        with pytest.raises(ValueError):
            TMPoPNat(nat_ips=[])

    def test_exhaustion_spills_to_next_address_then_fails(self):
        nat = TMPoPNat(nat_ips=["100.64.0.1", "100.64.0.2"])
        # Simulate exhaustion of the first address cheaply.
        nat._next_port["100.64.0.1"] = 1024 + PORTS_PER_ADDRESS
        tunneled = encapsulate(CLIENT, "203.0.113.1", "184.164.224.1")
        packet = nat.ingress(tunneled)
        assert packet.src_ip == "100.64.0.2"
        nat._next_port["100.64.0.2"] = 1024 + PORTS_PER_ADDRESS
        fresh = Packet(
            src_ip="192.168.1.99", dst_ip="1.1.1.1", src_port=1, dst_port=443,
            proto="tcp", payload_bytes=1,
        )
        with pytest.raises(NatExhaustedError):
            nat.ingress(encapsulate(fresh, "203.0.113.1", "184.164.224.1"))
