"""ASCII plotting for experiment curves."""

import math

import pytest

from repro.experiments.harness import ExperimentResult
from repro.experiments.plotting import ascii_plot, plot_benefit_curves


class TestAsciiPlot:
    def test_contains_marks_and_legend(self):
        plot = ascii_plot({"a": [(0, 0), (1, 1)], "b": [(0, 1), (1, 0)]})
        assert "*" in plot and "o" in plot
        assert "legend: *=a  o=b" in plot

    def test_title_and_labels(self):
        plot = ascii_plot(
            {"s": [(1, 2), (3, 4)]}, title="T", x_label="xx", y_label="yy"
        )
        assert plot.startswith("T")
        assert "xx" in plot and "yy" in plot

    def test_log_x_skips_nonpositive(self):
        plot = ascii_plot({"s": [(0.0, 1.0), (10.0, 2.0), (100.0, 3.0)]}, log_x=True)
        assert "legend" in plot

    def test_nonfinite_points_skipped(self):
        plot = ascii_plot({"s": [(1.0, math.inf), (2.0, 5.0), (3.0, 6.0)]})
        assert "legend" in plot

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot({"s": []})

    def test_tiny_canvas_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot({"s": [(0, 0)]}, width=2, height=2)

    def test_flat_series_plots(self):
        plot = ascii_plot({"s": [(0, 5.0), (1, 5.0), (2, 5.0)]})
        assert "legend" in plot

    def test_axis_range_labels(self):
        plot = ascii_plot({"s": [(2.0, 10.0), (8.0, 20.0)]})
        assert "20" in plot and "10" in plot
        assert "2" in plot and "8" in plot


class TestPlotBenefitCurves:
    def test_from_experiment_result(self):
        result = ExperimentResult(
            "figX", "demo", columns=["strategy", "budget_prefixes", "benefit_frac"]
        )
        result.add_row("painter", 1, 0.5)
        result.add_row("painter", 10, 0.9)
        result.add_row("baseline", 1, 0.3)
        result.add_row("baseline", 10, 0.5)
        plot = plot_benefit_curves(result)
        assert "painter" in plot and "baseline" in plot

    def test_missing_column_raises(self):
        result = ExperimentResult("figX", "demo", columns=["strategy", "budget_prefixes"])
        result.add_row("painter", 1)
        with pytest.raises(ValueError):
            plot_benefit_curves(result, value_column="nope")


class TestMeasurementModes:
    def test_fig6a_modes_run(self, scenario):
        from repro.experiments.fig6 import run_fig6a

        for mode in ("oracle", "simulated", "geolocated"):
            result = run_fig6a(
                scenario=scenario,
                painter_max_budget=3,
                learning_iterations=1,
                measurement_mode=mode,
            )
            painter = [r for r in result.rows if r[0] == "painter"]
            assert painter, mode
            assert any(f"measurement mode: {mode}" in n for n in result.notes)

    def test_unknown_mode_rejected(self, scenario):
        from repro.experiments.fig6 import run_fig6a

        with pytest.raises(ValueError):
            run_fig6a(scenario=scenario, painter_max_budget=2, measurement_mode="psychic")
