"""The fault-injection subsystem: events, schedules, injector, degradation."""

import math

import pytest

from repro.faults import (
    FaultInjector,
    FaultSchedule,
    LatencySpike,
    LinkFlap,
    ObservationFaults,
    PeeringWithdrawal,
    PopOutage,
    ProbeLoss,
    StaleMeasurement,
)
from repro.simulation.events import EventLoop


class TestEventValidation:
    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            PopOutage(start_s=-1.0, pop_name="pop-a")

    def test_pop_outage_needs_pop(self):
        with pytest.raises(ValueError):
            PopOutage(start_s=0.0)

    def test_withdrawal_needs_prefix(self):
        with pytest.raises(ValueError):
            PeeringWithdrawal(start_s=0.0)

    def test_flap_needs_target(self):
        with pytest.raises(ValueError):
            LinkFlap(start_s=0.0)

    def test_flap_cycles_positive(self):
        with pytest.raises(ValueError):
            LinkFlap(start_s=0.0, pop_name="pop-a", cycles=0)

    def test_probe_loss_rate_bounded(self):
        with pytest.raises(ValueError):
            ProbeLoss(start_s=0.0, loss_rate=1.5)

    def test_stale_fraction_bounded(self):
        with pytest.raises(ValueError):
            StaleMeasurement(start_s=0.0, fraction=-0.1)


class TestEventWindows:
    def test_outage_window_half_open(self):
        outage = PopOutage(start_s=10.0, pop_name="pop-a", duration_s=5.0)
        assert not outage.active_at(9.999)
        assert outage.active_at(10.0)
        assert outage.active_at(14.999)
        assert not outage.active_at(15.0)

    def test_default_outage_never_heals(self):
        outage = PopOutage(start_s=10.0, pop_name="pop-a")
        assert math.isinf(outage.end_s)
        assert outage.active_at(1e9)
        assert list(outage.transitions()) == [(10.0, True)]

    def test_flap_phases(self):
        flap = LinkFlap(start_s=10.0, pop_name="pop-a", down_s=1.0, up_s=4.0, cycles=3)
        assert flap.period_s == 5.0
        assert flap.end_s == 21.0  # last down phase heals at 20 + 1
        assert flap.is_down(10.5)
        assert not flap.is_down(12.0)  # first up phase
        assert flap.is_down(15.5)  # second down phase
        assert not flap.is_down(21.0)
        downs = [t for t, went_down in flap.transitions() if went_down]
        ups = [t for t, went_down in flap.transitions() if not went_down]
        assert downs == [10.0, 15.0, 20.0]
        assert ups == [11.0, 16.0, 21.0]

    def test_spike_targeting(self):
        spike = LatencySpike(start_s=0.0, duration_s=5.0, magnitude_ms=30.0, pop_name="pop-a")
        assert spike.applies_to("pop-a")
        assert not spike.applies_to("pop-b")
        everywhere = LatencySpike(start_s=0.0, duration_s=5.0, magnitude_ms=30.0)
        assert everywhere.applies_to("pop-a") and everywhere.applies_to("pop-b")


class TestSchedule:
    def test_events_sorted_by_start(self):
        schedule = FaultSchedule(
            events=(
                PopOutage(start_s=50.0, pop_name="pop-b", duration_s=1.0),
                PopOutage(start_s=10.0, pop_name="pop-a", duration_s=1.0),
            )
        )
        assert [e.start_s for e in schedule] == [10.0, 50.0]

    def test_single_pop_outage_factory(self):
        schedule = FaultSchedule.single_pop_outage("pop-a", 60.0)
        assert len(schedule) == 1
        assert schedule.pop_down("pop-a", 60.0)
        assert not schedule.pop_down("pop-a", 59.999)
        assert not schedule.pop_down("pop-b", 1000.0)

    def test_flap_counts_as_pop_down(self):
        schedule = FaultSchedule(
            events=(LinkFlap(start_s=10.0, pop_name="pop-a", down_s=1.0, up_s=4.0, cycles=2),)
        )
        assert schedule.pop_down("pop-a", 10.5)
        assert not schedule.pop_down("pop-a", 12.0)

    def test_prefix_withdrawal_query(self):
        schedule = FaultSchedule(
            events=(PeeringWithdrawal(start_s=5.0, prefix="2.2.2.0/24", duration_s=10.0),)
        )
        assert schedule.prefix_withdrawn("2.2.2.0/24", 7.0)
        assert not schedule.prefix_withdrawn("3.3.3.0/24", 7.0)
        assert schedule.path_down("pop-x", "2.2.2.0/24", 7.0)

    def test_latency_penalties_sum(self):
        schedule = FaultSchedule(
            events=(
                LatencySpike(start_s=0.0, duration_s=10.0, magnitude_ms=20.0, pop_name="pop-a"),
                LatencySpike(start_s=5.0, duration_s=10.0, magnitude_ms=5.0),
            )
        )
        assert schedule.latency_penalty_ms("pop-a", 7.0) == 25.0
        assert schedule.latency_penalty_ms("pop-b", 7.0) == 5.0
        assert schedule.latency_penalty_ms("pop-a", 12.0) == 5.0

    def test_probe_loss_composes_independently(self):
        schedule = FaultSchedule(
            events=(
                ProbeLoss(start_s=0.0, duration_s=10.0, loss_rate=0.5),
                ProbeLoss(start_s=0.0, duration_s=10.0, loss_rate=0.5),
            )
        )
        assert schedule.probe_loss_rate(5.0) == pytest.approx(0.75)
        assert schedule.probe_loss_rate(11.0) == 0.0

    def test_stale_fraction_max_wins(self):
        schedule = FaultSchedule(
            events=(
                StaleMeasurement(start_s=0.0, duration_s=10.0, fraction=0.3),
                StaleMeasurement(start_s=0.0, duration_s=10.0, fraction=0.6),
            )
        )
        assert schedule.stale_fraction(5.0) == 0.6
        assert schedule.stale_fraction(10.0) == 0.0

    def test_down_intervals_merge_overlaps(self):
        schedule = FaultSchedule(
            events=(
                PopOutage(start_s=10.0, pop_name="pop-a", duration_s=10.0),
                PopOutage(start_s=15.0, pop_name="pop-a", duration_s=10.0),
                PopOutage(start_s=40.0, pop_name="pop-a", duration_s=5.0),
                PopOutage(start_s=12.0, pop_name="pop-b", duration_s=100.0),
            )
        )
        assert schedule.down_intervals(pop_name="pop-a") == [(10.0, 25.0), (40.0, 45.0)]

    def test_down_intervals_include_flap_phases(self):
        schedule = FaultSchedule(
            events=(LinkFlap(start_s=0.0, prefix="p", down_s=1.0, up_s=2.0, cycles=2),)
        )
        assert schedule.down_intervals(prefix="p") == [(0.0, 1.0), (3.0, 4.0)]

    def test_extended_is_immutable(self):
        base = FaultSchedule()
        extended = base.extended(PopOutage(start_s=1.0, pop_name="pop-a"))
        assert len(base) == 0
        assert len(extended) == 1

    def test_random_storm_deterministic(self):
        a = FaultSchedule.random_storm(["pop-a", "pop-b"], duration_s=100.0, seed=42)
        b = FaultSchedule.random_storm(["pop-a", "pop-b"], duration_s=100.0, seed=42)
        c = FaultSchedule.random_storm(["pop-a", "pop-b"], duration_s=100.0, seed=43)
        assert a.events == b.events
        assert a.events != c.events
        assert len(a) >= 1

    def test_random_storm_stays_in_window(self):
        for seed in range(10):
            storm = FaultSchedule.random_storm(["pop-a"], duration_s=60.0, seed=seed)
            for event in storm:
                assert 0.0 <= event.start_s < 60.0

    def test_horizon_ignores_infinite_events(self):
        schedule = FaultSchedule(
            events=(
                PopOutage(start_s=5.0, pop_name="pop-a"),  # never heals
                PopOutage(start_s=10.0, pop_name="pop-b", duration_s=20.0),
            )
        )
        assert schedule.horizon_s == 30.0


class TestInjector:
    def test_arm_fires_transitions_in_order(self):
        schedule = FaultSchedule(
            events=(
                PopOutage(start_s=1.0, pop_name="pop-a", duration_s=2.0),
                LinkFlap(start_s=2.0, pop_name="pop-b", down_s=0.5, up_s=0.5, cycles=2),
            )
        )
        injector = FaultInjector(schedule)
        seen = []
        injector.subscribe(lambda t, event, down: seen.append((t, down)))
        loop = EventLoop()
        armed = injector.arm(loop)
        assert armed == 6  # outage down/up + two flap cycles down/up
        loop.run_until(10.0)
        assert seen == sorted(seen, key=lambda item: item[0])
        assert seen[0] == (1.0, True)
        assert injector.active_faults == set()  # everything healed

    def test_active_faults_mid_run(self):
        schedule = FaultSchedule.single_pop_outage("pop-a", 5.0)
        injector = FaultInjector(schedule)
        loop = EventLoop()
        injector.arm(loop)
        loop.run_until(6.0)
        assert len(injector.active_faults) == 1
        assert injector.pop_down("pop-a", loop.now_s)

    def test_arm_mid_run_applies_past_transitions(self):
        schedule = FaultSchedule.single_pop_outage("pop-a", 5.0)
        injector = FaultInjector(schedule)
        loop = EventLoop()
        loop.schedule_at(10.0, lambda lp: None)
        loop.run_until(10.0)
        injector.arm(loop)  # start time already in the past
        assert len(injector.active_faults) == 1

    def test_damping_state_from_heavy_flapping(self):
        flap = LinkFlap(
            start_s=0.0, prefix="2.2.2.0/24", peer_asn=65001,
            down_s=1.0, up_s=1.0, cycles=6,
        )
        injector = FaultInjector(FaultSchedule(events=(flap,)))
        damping = injector.damping_state()
        # 12 transitions in 11 s at 1000 penalty each: far beyond suppression.
        assert damping.is_suppressed("2.2.2.0/24", 65001, flap.end_s)

    def test_damping_state_gentle_flap_not_suppressed(self):
        flap = LinkFlap(
            start_s=0.0, prefix="2.2.2.0/24", peer_asn=65001,
            down_s=1.0, up_s=3600.0, cycles=1,
        )
        injector = FaultInjector(FaultSchedule(events=(flap,)))
        damping = injector.damping_state()
        assert not damping.is_suppressed("2.2.2.0/24", 65001, flap.end_s + 3600.0)


class TestObservationFaults:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            ObservationFaults(missing_rate=0.7, stale_rate=0.5)
        with pytest.raises(ValueError):
            ObservationFaults(missing_rate=-0.1)

    def test_deterministic_given_seed(self):
        a = ObservationFaults(missing_rate=0.4, stale_rate=0.2, seed=9)
        b = ObservationFaults(missing_rate=0.4, stale_rate=0.2, seed=9)
        outcomes_a = [a.outcome(i, ug, p) for i in range(3) for ug in range(20) for p in range(4)]
        outcomes_b = [b.outcome(i, ug, p) for i in range(3) for ug in range(20) for p in range(4)]
        assert outcomes_a == outcomes_b
        assert "missing" in outcomes_a and "stale" in outcomes_a and "ok" in outcomes_a

    def test_zero_rates_always_ok(self):
        faults = ObservationFaults()
        assert all(faults.outcome(0, ug, 0) == "ok" for ug in range(50))

    def test_rates_roughly_honored(self):
        faults = ObservationFaults(missing_rate=0.35, seed=4)
        outcomes = [faults.outcome(0, ug, p) for ug in range(200) for p in range(5)]
        missing = outcomes.count("missing") / len(outcomes)
        assert 0.25 <= missing <= 0.45

    def test_from_schedule_maps_rounds_to_windows(self):
        schedule = FaultSchedule(
            events=(
                ProbeLoss(start_s=0.0, duration_s=2.5, loss_rate=1.0),
                StaleMeasurement(start_s=4.0, duration_s=2.0, fraction=1.0),
            )
        )
        faults = ObservationFaults.from_schedule(schedule, round_period_s=1.0, seed=0)
        assert faults.rates_for(0) == (1.0, 0.0)
        assert faults.rates_for(2) == (1.0, 0.0)
        assert faults.rates_for(3) == (0.0, 0.0)
        assert faults.rates_for(4) == (0.0, 1.0)
        assert faults.rates_for(7) == (0.0, 0.0)
        assert faults.outcome(0, 1, 2) == "missing"
        assert faults.outcome(4, 1, 2) == "stale"

    def test_injector_derivation(self):
        schedule = FaultSchedule(
            events=(ProbeLoss(start_s=0.0, duration_s=10.0, loss_rate=0.5),)
        )
        faults = FaultInjector(schedule, seed=3).observation_faults(round_period_s=5.0)
        assert faults.rates_for(0) == (0.5, 0.0)
        assert faults.rates_for(1) == (0.5, 0.0)
        assert faults.rates_for(3) == (0.0, 0.0)
