"""Batched data plane: scalar/vector equivalence, snapshots, batch checks.

The vectorized :class:`VectorFlowTable` must be *bit-identical* to the
scalar reference on every observable: which prefix each flow is pinned to,
per-destination flow counts and byte totals, and what failover re-mapping
moves.  The property tests drive both planes through the same randomized
batch sequences to enforce that.
"""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.traffic_manager.dataplane import (
    DataPlane,
    FlowBatch,
    ScalarDataPlane,
    TM_SNAPSHOT_VERSION,
    VectorFlowTable,
    flow_key,
    plane_from_snapshot,
)
from repro.traffic_manager.flows import FiveTuple, FlowTable

PREFIXES = ["184.164.224.0/24", "184.164.225.0/24", "184.164.226.0/24"]


def make_selections(n_services: int, include_none: bool = True):
    """Deterministic service->prefix map cycling the prefix list."""
    selections = {}
    for sid in range(n_services):
        if include_none and sid % 4 == 3:
            selections[sid] = None
        else:
            selections[sid] = PREFIXES[sid % len(PREFIXES)]
    return selections


def assert_planes_agree(scalar: ScalarDataPlane, vector: VectorFlowTable):
    assert scalar.flow_count() == vector.flow_count()
    assert scalar.destinations() == vector.destinations()
    s_bytes = scalar.bytes_by_destination()
    v_bytes = vector.bytes_by_destination()
    assert s_bytes.keys() == v_bytes.keys()
    for prefix in s_bytes:
        assert s_bytes[prefix] == pytest.approx(v_bytes[prefix])


class TestFlowBatch:
    def test_synthesize_deterministic(self):
        a = FlowBatch.synthesize(1000, seed=7, n_services=3)
        b = FlowBatch.synthesize(1000, seed=7, n_services=3)
        assert np.array_equal(a.keys, b.keys)
        assert np.array_equal(a.service_ids, b.service_ids)
        assert np.array_equal(a.payload_bytes, b.payload_bytes)

    def test_zipf_weights_bias_service_mix(self):
        batch = FlowBatch.synthesize(
            20_000, seed=1, n_services=3, service_weights=[100.0, 10.0, 1.0]
        )
        counts = np.bincount(batch.service_ids, minlength=3)
        assert counts[0] > counts[1] > counts[2]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            FlowBatch(
                keys=np.array([1, 2], dtype=np.uint64),
                service_ids=np.array([0], dtype=np.int32),
                payload_bytes=np.array([1.0, 2.0]),
            )

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            FlowBatch(
                keys=np.array([1], dtype=np.uint64),
                service_ids=np.array([0], dtype=np.int32),
                payload_bytes=np.array([-1.0]),
            )

    def test_from_flows_matches_flow_key(self):
        ft = FiveTuple(proto="tcp", src_ip="1.2.3.4", src_port=80, dst_ip="5.6.7.8", dst_port=443)
        batch = FlowBatch.from_flows([(ft, 2, 100.0)])
        assert batch.keys[0] == flow_key(ft)
        assert batch.service_ids[0] == 2
        assert batch.payload_bytes[0] == 100.0


class TestScalarVectorEquivalence:
    """The heart of the PR: both planes steer byte-for-byte identically."""

    @given(seed=st.integers(0, 2**16), n_flows=st.integers(1, 400))
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_single_batch_identical(self, seed, n_flows):
        batch = FlowBatch.synthesize(n_flows, seed=seed, n_services=5)
        selections = make_selections(5)
        scalar, vector = ScalarDataPlane(), VectorFlowTable()
        rs = scalar.forward(batch, selections, 0.0)
        rv = vector.forward(batch, selections, 0.0)
        assert np.array_equal(rs.assignments, rv.assignments)
        assert (rs.admitted, rs.existing, rs.unroutable) == (
            rv.admitted, rv.existing, rv.unroutable
        )
        assert rs.bytes_recorded == pytest.approx(rv.bytes_recorded)
        assert_planes_agree(scalar, vector)

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_multi_step_with_failover_identical(self, seed):
        """Arrivals, repeats, a failover remap, and endings all agree."""
        rng = np.random.default_rng(seed)
        scalar, vector = ScalarDataPlane(), VectorFlowTable()
        selections = make_selections(4)
        all_keys = []
        for step in range(4):
            batch = FlowBatch.synthesize(
                150, seed=seed * 31 + step, n_services=4
            )
            if all_keys and step >= 1:
                # Re-offer some previously seen keys: existing flows must
                # keep their pinned prefix and accumulate bytes.
                old = np.asarray(all_keys[0][: 40], dtype=np.uint64)
                batch = FlowBatch(
                    keys=np.concatenate([batch.keys, old]),
                    service_ids=np.concatenate(
                        [batch.service_ids, np.zeros(len(old), dtype=np.int32)]
                    ),
                    payload_bytes=np.concatenate(
                        [batch.payload_bytes, np.full(len(old), 99.0)]
                    ),
                )
            rs = scalar.forward(batch, selections, float(step))
            rv = vector.forward(batch, selections, float(step))
            assert np.array_equal(rs.assignments, rv.assignments)
            all_keys.append(batch.keys)
            if step == 2:
                # Failover: kill the first prefix, re-map onto the second.
                moved_s = scalar.remap(PREFIXES[0], PREFIXES[1])
                moved_v = vector.remap(PREFIXES[0], PREFIXES[1])
                assert moved_s == moved_v
                # Steer future flows of affected services elsewhere too.
                selections = {
                    sid: (PREFIXES[1] if prefix == PREFIXES[0] else prefix)
                    for sid, prefix in selections.items()
                }
        # End a subset (plus some unknown keys, which must be tolerated).
        victims = np.concatenate(
            [all_keys[0][:25], rng.integers(0, 2**64, 10, dtype=np.uint64)]
        )
        assert scalar.end(victims) == vector.end(victims)
        assert_planes_agree(scalar, vector)

    def test_duplicate_keys_in_one_batch(self):
        """First occurrence pins; repeats accumulate bytes on that pin."""
        keys = np.array([5, 5, 9, 5], dtype=np.uint64)
        sids = np.array([0, 1, 1, 2], dtype=np.int32)  # conflicting services
        nbytes = np.array([10.0, 20.0, 30.0, 40.0])
        batch = FlowBatch(keys=keys, service_ids=sids, payload_bytes=nbytes)
        selections = {0: PREFIXES[0], 1: PREFIXES[1], 2: PREFIXES[2]}
        scalar, vector = ScalarDataPlane(), VectorFlowTable()
        rs = scalar.forward(batch, selections, 0.0)
        rv = vector.forward(batch, selections, 0.0)
        assert np.array_equal(rs.assignments, rv.assignments)
        assert_planes_agree(scalar, vector)
        # Key 5 was pinned by its first occurrence (service 0 -> prefix 0)
        # and accumulated all three of its payloads there.
        assert scalar.destinations() == {PREFIXES[0]: 1, PREFIXES[1]: 1}
        assert scalar.bytes_by_destination()[PREFIXES[0]] == pytest.approx(70.0)

    def test_unroutable_service_drops_whole_key(self):
        """A key first seen on a selection-less service stays dropped."""
        keys = np.array([7, 7], dtype=np.uint64)
        sids = np.array([0, 1], dtype=np.int32)
        batch = FlowBatch(
            keys=keys, service_ids=sids, payload_bytes=np.array([1.0, 2.0])
        )
        selections = {0: None, 1: PREFIXES[0]}
        scalar, vector = ScalarDataPlane(), VectorFlowTable()
        rs = scalar.forward(batch, selections, 0.0)
        rv = vector.forward(batch, selections, 0.0)
        assert np.array_equal(rs.assignments, rv.assignments)
        assert rs.unroutable == rv.unroutable == 2
        assert scalar.flow_count() == vector.flow_count() == 0


class TestMixedOperationSequences:
    """Property tests: arbitrary op interleavings with telemetry live.

    Hypothesis drives both planes through mixed admit/record/remap/end/
    snapshot sequences while a telemetry session (tracer + metrics) is
    open — equivalence must hold at every step, and instrumentation must
    observe the work without perturbing it.
    """

    OPS = st.lists(
        st.tuples(
            st.sampled_from(["forward", "remap", "end", "snapshot"]),
            st.integers(0, 2**16),
        ),
        min_size=1,
        max_size=8,
    )

    @given(ops=OPS)
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_mixed_sequences_agree_with_metrics_enabled(self, ops):
        from repro.perf import PERF
        from repro.telemetry import telemetry_session

        batches_before = PERF.histogram("tm.batch_flows").count
        forwards = 0
        with telemetry_session("tm-prop"):
            scalar, vector = ScalarDataPlane(), VectorFlowTable()
            selections = make_selections(4)
            seen_keys = []
            now = 0.0
            for op, seed in ops:
                now += 1.0
                if op == "forward":
                    batch = FlowBatch.synthesize(80, seed=seed, n_services=4)
                    if seen_keys and seed % 2:
                        old = seen_keys[-1][:20]
                        batch = FlowBatch(
                            keys=np.concatenate([batch.keys, old]),
                            service_ids=np.concatenate(
                                [batch.service_ids, np.zeros(len(old), dtype=np.int32)]
                            ),
                            payload_bytes=np.concatenate(
                                [batch.payload_bytes, np.full(len(old), 7.0)]
                            ),
                        )
                    rs = scalar.forward(batch, selections, now)
                    rv = vector.forward(batch, selections, now)
                    assert np.array_equal(rs.assignments, rv.assignments)
                    assert (rs.admitted, rs.existing, rs.unroutable) == (
                        rv.admitted, rv.existing, rv.unroutable
                    )
                    seen_keys.append(batch.keys)
                    forwards += 1
                elif op == "remap":
                    src = PREFIXES[seed % len(PREFIXES)]
                    dst = PREFIXES[(seed + 1) % len(PREFIXES)]
                    assert scalar.remap(src, dst) == vector.remap(src, dst)
                elif op == "end":
                    if seen_keys:
                        victims = seen_keys[seed % len(seen_keys)][: (seed % 50) + 1]
                        assert scalar.end(victims) == vector.end(victims)
                else:
                    # Mid-sequence snapshot round-trip: both planes must
                    # come back steering identically.
                    scalar = plane_from_snapshot(scalar.to_snapshot())
                    vector = plane_from_snapshot(vector.to_snapshot())
                    assert isinstance(scalar, ScalarDataPlane)
                    assert isinstance(vector, VectorFlowTable)
                assert_planes_agree(scalar, vector)
        # Metrics saw every forwarded batch (both planes observe).
        assert (
            PERF.histogram("tm.batch_flows").count
            == batches_before + 2 * forwards
        )

    def test_snapshot_restore_journal_resume_round_trip(self):
        """The journal keeps a coherent timeline across snapshot/restore."""
        from repro.perf import PERF
        from repro.telemetry import telemetry_session

        selections = make_selections(3, include_none=False)
        with telemetry_session("tm-resume") as journal:
            vector = VectorFlowTable()
            vector.forward(
                FlowBatch.synthesize(300, seed=11, n_services=3), selections, 0.0
            )
            snapshot = vector.to_snapshot()
            journal.record_event(
                "tm_snapshot", flows=vector.flow_count(),
                version=snapshot["version"],
            )
            restored = plane_from_snapshot(snapshot)
            journal.record_event("tm_restore", flows=restored.flow_count())
            more = FlowBatch.synthesize(150, seed=12, n_services=3)
            a = vector.forward(more, selections, 1.0)
            b = restored.forward(more, selections, 1.0)
            assert np.array_equal(a.assignments, b.assignments)
        assert_planes_agree_pair(vector, restored)
        # The journal resumed recording after the restore with monotone
        # seq numbers, and both lifecycle events are on the timeline.
        seqs = [r["seq"] for r in journal.records]
        assert seqs == sorted(seqs)
        (snap_event,) = journal.events("tm_snapshot")
        (restore_event,) = journal.events("tm_restore")
        assert snap_event["flows"] == restore_event["flows"]
        assert snap_event["seq"] < restore_event["seq"]

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_restored_planes_stay_equivalent(self, seed):
        """Scalar and vector restored from snapshots keep agreeing."""
        from repro.telemetry import telemetry_session

        selections = make_selections(4)
        with telemetry_session("tm-restore-prop"):
            scalar, vector = ScalarDataPlane(), VectorFlowTable()
            first = FlowBatch.synthesize(200, seed=seed, n_services=4)
            scalar.forward(first, selections, 0.0)
            vector.forward(first, selections, 0.0)
            scalar = plane_from_snapshot(scalar.to_snapshot())
            vector = plane_from_snapshot(vector.to_snapshot())
            second = FlowBatch.synthesize(120, seed=seed + 1, n_services=4)
            rs = scalar.forward(second, selections, 1.0)
            rv = vector.forward(second, selections, 1.0)
            assert np.array_equal(rs.assignments, rv.assignments)
            moved_s = scalar.remap(PREFIXES[0], PREFIXES[2])
            moved_v = vector.remap(PREFIXES[0], PREFIXES[2])
            assert moved_s == moved_v
            assert_planes_agree(scalar, vector)


class TestSnapshots:
    def test_vector_round_trip(self):
        vector = VectorFlowTable()
        batch = FlowBatch.synthesize(500, seed=3, n_services=3)
        vector.forward(batch, make_selections(3), 1.5)
        snapshot = vector.to_snapshot()
        assert snapshot["version"] == TM_SNAPSHOT_VERSION
        restored = plane_from_snapshot(snapshot)
        assert isinstance(restored, VectorFlowTable)
        assert_planes_agree_pair(vector, restored)
        # The restored plane keeps steering identically.
        more = FlowBatch.synthesize(100, seed=4, n_services=3)
        a = vector.forward(more, make_selections(3), 2.0)
        b = restored.forward(more, make_selections(3), 2.0)
        assert np.array_equal(a.assignments, b.assignments)

    def test_scalar_round_trip(self):
        scalar = ScalarDataPlane()
        batch = FlowBatch.synthesize(200, seed=5, n_services=2)
        scalar.forward(batch, make_selections(2, include_none=False), 0.0)
        restored = plane_from_snapshot(scalar.to_snapshot())
        assert isinstance(restored, ScalarDataPlane)
        assert_planes_agree_pair(scalar, restored)

    def test_unsupported_version_rejected(self):
        vector = VectorFlowTable()
        snapshot = vector.to_snapshot()
        snapshot["version"] = 99
        with pytest.raises(ValueError, match="unsupported snapshot version"):
            plane_from_snapshot(snapshot)

    def test_kind_mismatch_rejected(self):
        snapshot = VectorFlowTable().to_snapshot()
        snapshot["kind"] = "wibble"
        with pytest.raises(ValueError):
            plane_from_snapshot(snapshot)


def assert_planes_agree_pair(a: DataPlane, b: DataPlane):
    assert a.flow_count() == b.flow_count()
    assert a.destinations() == b.destinations()
    a_bytes, b_bytes = a.bytes_by_destination(), b.bytes_by_destination()
    assert a_bytes.keys() == b_bytes.keys()
    for prefix in a_bytes:
        assert a_bytes[prefix] == pytest.approx(b_bytes[prefix])


class TestScalarPlaneSharesFlowTable:
    def test_shared_table_sees_batch_flows(self):
        table = FlowTable()
        plane = ScalarDataPlane(table)
        ft = FiveTuple(proto="udp", src_ip="9.9.9.9", src_port=53, dst_ip="8.8.8.8", dst_port=53)
        batch = FlowBatch.from_flows([(ft, 0, 64.0)])
        plane.forward(batch, {0: PREFIXES[0]}, 0.0)
        # The legacy per-flow surface sees the batched admission (by key).
        assert table.lookup(flow_key(ft)) is not None
        assert table.destinations() == {PREFIXES[0]: 1}
