"""Baseline advertisement strategies: structural invariants."""

import pytest

from repro.core.baselines import (
    BASELINE_STRATEGIES,
    anycast_config,
    one_per_peering,
    one_per_pop,
    one_per_pop_with_reuse,
    regional_transit,
)


class TestAnycast:
    def test_empty(self):
        assert anycast_config().prefix_count == 0


class TestOnePerPop:
    def test_one_prefix_per_pop(self, scenario):
        budget = 3
        config = one_per_pop(scenario, budget)
        assert config.prefix_count == budget
        deployment = scenario.deployment
        for prefix in config.prefixes:
            pops = {
                deployment.peering(pid).pop.name for pid in config.peerings_for(prefix)
            }
            assert len(pops) == 1

    def test_full_pop_coverage_at_each_prefix(self, scenario):
        config = one_per_pop(scenario, 2)
        deployment = scenario.deployment
        for prefix in config.prefixes:
            peerings = config.peerings_for(prefix)
            pop_name = deployment.peering(next(iter(peerings))).pop.name
            at_pop = {p.peering_id for p in deployment.peerings_at(deployment.pop(pop_name))}
            assert peerings == at_pop

    def test_budget_validation(self, scenario):
        with pytest.raises(ValueError):
            one_per_pop(scenario, 0)


class TestOnePerPopWithReuse:
    def test_reuse_distance_respected(self, scenario):
        d_reuse = 3000.0
        config = one_per_pop_with_reuse(scenario, budget=3, d_reuse_km=d_reuse)
        deployment = scenario.deployment
        for prefix in config.prefixes:
            pops = {
                deployment.peering(pid).pop for pid in config.peerings_for(prefix)
            }
            pops = list(pops)
            for i, a in enumerate(pops):
                for b in pops[i + 1 :]:
                    assert a.distance_km(b) >= d_reuse

    def test_covers_at_least_as_many_pops_as_plain(self, scenario):
        deployment = scenario.deployment
        budget = 2
        plain = one_per_pop(scenario, budget)
        reuse = one_per_pop_with_reuse(scenario, budget)

        def covered(config):
            return {
                deployment.peering(pid).pop.name
                for prefix in config.prefixes
                for pid in config.peerings_for(prefix)
            }

        assert len(covered(reuse)) >= len(covered(plain))

    def test_budget_cap(self, scenario):
        config = one_per_pop_with_reuse(scenario, budget=1)
        assert config.prefix_count == 1


class TestOnePerPeering:
    def test_unique_prefix_per_peering(self, scenario):
        config = one_per_peering(scenario, budget=5)
        assert config.prefix_count == 5
        for prefix in config.prefixes:
            assert len(config.peerings_for(prefix)) == 1
        assert len(config.all_peering_ids()) == 5

    def test_full_budget_covers_everything(self, scenario):
        n = len(scenario.deployment)
        config = one_per_peering(scenario, budget=n)
        assert config.prefix_count == n
        assert config.all_peering_ids() == frozenset(
            p.peering_id for p in scenario.deployment.peerings
        )

    def test_ranked_by_value(self, scenario):
        """The first prefix should go to a peering with standalone value."""
        config = one_per_peering(scenario, budget=1)
        (pid,) = config.peerings_for(0)
        model = scenario.latency_model
        deployment = scenario.deployment
        score = sum(
            ug.volume
            * max(
                0.0,
                scenario.anycast_latency_ms(ug)
                - model.latency_ms(ug, deployment.peering(pid)),
            )
            for ug in scenario.user_groups
            if scenario.catalog.is_compliant(ug, deployment.peering(pid))
        )
        assert score > 0


class TestRegionalTransit:
    def test_only_transit_peerings(self, scenario):
        config = regional_transit(scenario, budget=5)
        deployment = scenario.deployment
        for _prefix, pid in config.pairs():
            assert deployment.peering(pid).is_transit

    def test_one_region_per_prefix(self, scenario):
        config = regional_transit(scenario, budget=5)
        deployment = scenario.deployment
        for prefix in config.prefixes:
            regions = {
                deployment.peering(pid).pop.metro.region
                for pid in config.peerings_for(prefix)
            }
            assert len(regions) == 1


class TestRegistry:
    def test_all_strategies_buildable(self, scenario):
        for name, builder in BASELINE_STRATEGIES.items():
            config = builder(scenario, 2)
            assert config.prefix_count >= 1, name
