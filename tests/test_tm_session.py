"""Workload-driven TM-Edge session simulation."""

import math

import pytest

from repro.traffic_manager.session import (
    EdgeSession,
    SessionFlow,
    constant_oracle,
    failing_oracle,
)


def make_flows(n, start=1.0, spacing=1.0, duration=5.0, size=1000.0):
    return [
        SessionFlow(
            flow_id=i,
            start_s=start + i * spacing,
            duration_s=duration,
            bytes_total=size,
        )
        for i in range(n)
    ]


class TestSessionFlow:
    def test_validation(self):
        with pytest.raises(ValueError):
            SessionFlow(flow_id=0, start_s=0, duration_s=0, bytes_total=1)
        with pytest.raises(ValueError):
            SessionFlow(flow_id=0, start_s=0, duration_s=1, bytes_total=-1)


class TestEdgeSession:
    def test_all_flows_go_to_best_destination(self):
        oracle = constant_oracle({"fast": 10.0, "slow": 50.0})
        session = EdgeSession(["fast", "slow"], oracle, measure_interval_s=0.5)
        metrics = session.run(make_flows(10), duration_s=30.0)
        assert metrics.flows_offered == 10
        assert metrics.flows_steered == 10
        assert metrics.bytes_by_destination == {"fast": 10_000.0}
        assert metrics.mean_latency_ms == pytest.approx(10.0)
        assert metrics.disruption_rate == 0.0

    def test_failure_disrupts_active_flows_and_redirects_new(self):
        oracle = failing_oracle(
            {"fast": 10.0, "slow": 50.0}, failures={"fast": 10.0}
        )
        session = EdgeSession(["fast", "slow"], oracle, measure_interval_s=0.5)
        # Long-lived flows starting before and after the failure.
        flows = make_flows(20, start=1.0, spacing=1.0, duration=100.0)
        metrics = session.run(flows, duration_s=40.0)
        assert metrics.flows_disrupted > 0  # pinned flows died with the path
        assert metrics.bytes_by_destination.get("slow", 0.0) > 0  # new flows moved
        # A flow arriving in the instant between the failure and the next
        # measurement tick may find its destination dark (detection delay).
        assert metrics.flows_steered + metrics.flows_unroutable == 20
        assert metrics.flows_steered >= 18

    def test_unroutable_when_everything_down(self):
        oracle = failing_oracle({"only": 10.0}, failures={"only": 0.0})
        session = EdgeSession(["only"], oracle, measure_interval_s=0.5)
        metrics = session.run(make_flows(3), duration_s=10.0)
        assert metrics.flows_unroutable == 3
        assert metrics.flows_steered == 0
        assert metrics.disruption_rate == 0.0

    def test_latency_weighted_by_bytes(self):
        oracle = constant_oracle({"a": 20.0})
        session = EdgeSession(["a"], oracle)
        flows = [
            SessionFlow(flow_id=0, start_s=1.0, duration_s=2.0, bytes_total=100.0),
            SessionFlow(flow_id=1, start_s=2.0, duration_s=2.0, bytes_total=300.0),
        ]
        metrics = session.run(flows, duration_s=10.0)
        assert metrics.total_bytes == 400.0
        assert metrics.mean_latency_ms == pytest.approx(20.0)

    def test_flows_beyond_duration_ignored(self):
        oracle = constant_oracle({"a": 20.0})
        session = EdgeSession(["a"], oracle)
        flows = [SessionFlow(flow_id=0, start_s=100.0, duration_s=1.0, bytes_total=1.0)]
        metrics = session.run(flows, duration_s=10.0)
        assert metrics.flows_offered == 0

    def test_validation(self):
        oracle = constant_oracle({"a": 1.0})
        with pytest.raises(ValueError):
            EdgeSession([], oracle)
        with pytest.raises(ValueError):
            EdgeSession(["a"], oracle, measure_interval_s=0)
        session = EdgeSession(["a"], oracle)
        with pytest.raises(ValueError):
            session.run([], duration_s=0)

    def test_unknown_destination_in_oracle_raises(self):
        oracle = constant_oracle({"a": 1.0})
        with pytest.raises(KeyError):
            oracle("ghost", 0.0)


class TestEnterpriseWorkloadIntegration:
    def test_enterprise_flows_through_session(self):
        """The Fig. 2 enterprise's workload rides the TM-Edge session."""
        from repro.enterprise import EnterpriseConfig, build_enterprise, generate_workload
        from repro.scenario import tiny_scenario

        scenario = tiny_scenario(seed=3)
        enterprise = build_enterprise(scenario, EnterpriseConfig(seed=1, n_branches=2))
        workload = generate_workload(enterprise, duration_s=600.0, start_s=0.0, seed=2)
        flows = [
            SessionFlow(
                flow_id=i,
                start_s=f.start_s,
                duration_s=f.duration_s,
                bytes_total=f.bandwidth_mbps * f.duration_s,
            )
            for i, f in enumerate(workload)
        ]
        oracle = constant_oracle({"anycast": 80.0, "painter-0": 25.0})
        session = EdgeSession(["anycast", "painter-0"], oracle)
        metrics = session.run(flows, duration_s=600.0)
        assert metrics.flows_steered == len(flows)
        assert metrics.bytes_by_destination.get("painter-0", 0.0) > 0
        assert metrics.mean_latency_ms == pytest.approx(25.0)
