"""Scenario auditing."""

import pytest

from repro.audit import AuditCheck, AuditReport, audit_scenario


class TestAuditReport:
    def test_passed_logic(self):
        report = AuditReport(
            checks=[
                AuditCheck(name="a", passed=True, detail="fine"),
                AuditCheck(name="b", passed=False, detail="broken"),
            ]
        )
        assert not report.passed
        assert [c.name for c in report.failures] == ["b"]
        rendered = report.render()
        assert "[ok ] a" in rendered
        assert "[FAIL] b" in rendered
        assert "FAILED (1 checks)" in rendered

    def test_empty_report_passes(self):
        assert AuditReport().passed


class TestAuditScenario:
    def test_generated_worlds_pass(self, scenario):
        report = audit_scenario(scenario)
        assert report.passed, report.render()
        names = {check.name for check in report.checks}
        assert names == {
            "graph-sanity",
            "ug-coverage",
            "anycast-routes",
            "anycast-bound",
            "bgp-compliance-agreement",
            "benefit-headroom",
        }

    def test_small_scenario_passes(self, small_scenario):
        assert audit_scenario(small_scenario).passed

    def test_detects_broken_world(self, scenario, monkeypatch):
        """A sabotaged oracle must be caught, not silently accepted."""
        monkeypatch.setattr(
            type(scenario.routing), "anycast_ingress", lambda self, ug: None
        )
        # Invalidate the scenario's anycast cache path by using a fresh copy
        # of the check (the audit re-queries the routing oracle directly).
        report = audit_scenario(scenario)
        assert not report.passed
        assert any("anycast" in check.name for check in report.failures)

    def test_cli_audit(self, capsys):
        from repro.cli import main

        assert main(["audit", "--preset", "tiny", "--seed", "3"]) == 0
        assert "audit PASSED" in capsys.readouterr().out
