"""Experiment harness: tables, grids, prefix subsets."""

import pytest

from repro.core.advertisement import AdvertisementConfig
from repro.experiments.harness import ExperimentResult, budget_grid, config_prefix_subset


class TestExperimentResult:
    def test_add_and_column(self):
        result = ExperimentResult("t", "test", columns=["a", "b"])
        result.add_row(1, 2.0)
        result.add_row(3, 4.0)
        assert result.column("a") == [1, 3]
        assert result.column("b") == [2.0, 4.0]

    def test_wrong_arity_rejected(self):
        result = ExperimentResult("t", "test", columns=["a", "b"])
        with pytest.raises(ValueError):
            result.add_row(1)

    def test_unknown_column(self):
        result = ExperimentResult("t", "test", columns=["a"])
        with pytest.raises(KeyError):
            result.column("zzz")

    def test_render_contains_everything(self):
        result = ExperimentResult("fig0", "demo", columns=["name", "value"])
        result.add_row("x", 1.5)
        result.add_note("a note")
        text = result.render()
        assert "fig0" in text and "demo" in text
        assert "name" in text and "1.500" in text
        assert "note: a note" in text

    def test_render_empty_table(self):
        result = ExperimentResult("fig0", "demo", columns=["only"])
        assert "only" in result.render()


class TestBudgetGrid:
    def test_includes_max(self):
        assert budget_grid(25)[-1] == 25

    def test_strictly_increasing(self):
        grid = budget_grid(500)
        assert grid == sorted(set(grid))

    def test_small_max(self):
        assert budget_grid(1) == [1]
        assert budget_grid(2) == [1, 2]

    def test_invalid(self):
        with pytest.raises(ValueError):
            budget_grid(0)


class TestConfigSubset:
    def test_truncation(self):
        config = AdvertisementConfig.from_pairs([(0, 1), (1, 2), (2, 3)])
        subset = config_prefix_subset(config, 2)
        assert subset.prefixes == [0, 1]
        assert subset.peerings_for(0) == frozenset({1})

    def test_full_subset_equals_original(self):
        config = AdvertisementConfig.from_pairs([(0, 1), (1, 2)])
        assert config_prefix_subset(config, 10) == config

    def test_zero_subset_empty(self):
        config = AdvertisementConfig.from_pairs([(0, 1)])
        assert config_prefix_subset(config, 0).prefix_count == 0


class TestExperimentsCliPlotting:
    def test_benefit_curve_experiments_get_plotted(self, monkeypatch, capsys):
        """The CLI appends an ASCII plot for strategy/budget tables."""
        from repro.experiments import __main__ as cli
        from repro.experiments.harness import ExperimentResult

        def fake_experiment():
            result = ExperimentResult(
                "figX", "demo", columns=["strategy", "budget_prefixes", "benefit_frac"]
            )
            result.add_row("painter", 1, 0.5)
            result.add_row("painter", 10, 0.9)
            result.add_row("baseline", 1, 0.2)
            result.add_row("baseline", 10, 0.4)
            return result

        monkeypatch.setattr(cli, "ALL_EXPERIMENTS", {"figX": fake_experiment})
        assert cli.main(["figX"]) == 0
        out = capsys.readouterr().out
        assert "legend" in out  # the plot rendered
        assert "painter" in out

    def test_non_curve_experiments_skip_plot(self, monkeypatch, capsys):
        from repro.experiments import __main__ as cli
        from repro.experiments.harness import ExperimentResult

        def fake_experiment():
            result = ExperimentResult("figY", "demo", columns=["a", "b"])
            result.add_row(1, 2)
            return result

        monkeypatch.setattr(cli, "ALL_EXPERIMENTS", {"figY": fake_experiment})
        assert cli.main(["figY"]) == 0
        assert "legend" not in capsys.readouterr().out


class TestParallelRunner:
    def test_unknown_experiment_rejected(self):
        from repro.experiments.harness import run_experiments_parallel

        with pytest.raises(KeyError):
            run_experiments_parallel(["no-such-experiment"], jobs=1)

    def test_parallel_matches_serial(self):
        """Workers must return exactly what an in-process run produces.

        Experiments build their worlds from explicit seeds, so fanning them
        across processes must not change a single row.
        """
        from repro.experiments.harness import run_experiments_parallel

        names = ["fig3", "fig8"]
        serial = run_experiments_parallel(names, jobs=1)
        parallel = run_experiments_parallel(names, jobs=2)
        assert list(parallel) == names  # requested order preserved
        for name in names:
            assert parallel[name].columns == serial[name].columns
            assert parallel[name].rows == serial[name].rows

    def test_parallel_merges_worker_perf_counters(self):
        from repro.experiments.harness import run_experiments_parallel
        from repro.perf import PERF

        PERF.reset()
        # fig15a solves Algorithm 1 in its worker; fig3 is pure measurement.
        run_experiments_parallel(["fig3", "fig15a"], jobs=2)
        # The workers' counters must have been folded into this process's
        # registry even though no solve ran here.
        assert PERF.counter("orchestrator.solve_calls").value > 0
