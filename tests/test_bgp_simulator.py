"""BGP propagation over the AS graph: policy, reachability, determinism."""

import pytest

from repro.bgp.simulator import BGPSimulator
from repro.topology.asn import Relationship
from repro.topology.graph import transit_path_exists

PREFIX = "184.164.224.0/24"


@pytest.fixture()
def sim(micro_graph):
    return BGPSimulator(micro_graph, origin_asn=1, tie_break_seed=0)


class TestPropagation:
    def test_origin_must_exist(self, micro_graph):
        with pytest.raises(KeyError):
            BGPSimulator(micro_graph, origin_asn=999)

    def test_announce_to_non_neighbor_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.propagate(PREFIX, [30])  # S1 is not a cloud neighbor

    def test_transit_announcement_reaches_everyone(self, sim, micro_graph):
        # T1 (AS 10) is the cloud's transit; customer routes go everywhere.
        routes = sim.propagate(PREFIX, [10])
        for asn in micro_graph:
            if asn == 1:
                continue
            assert asn in routes, f"AS{asn} should hear a transit announcement"

    def test_peer_announcement_reaches_only_cone(self, sim, micro_graph):
        # P3 (AS 22) peers with the cloud; its route reaches only its cone.
        routes = sim.propagate(PREFIX, [22])
        assert set(routes) == set(micro_graph.customer_cone(22))

    def test_paths_end_at_origin(self, sim):
        routes = sim.propagate(PREFIX, [10, 22])
        for asn, r in routes.items():
            assert r.origin_asn == 1
            assert asn not in r.as_path  # holder not on its own path

    def test_customer_route_preferred_over_provider(self, sim):
        # S2 (31) can reach the prefix via provider chain (21->10) or via its
        # other provider 22, which peers directly with the cloud; both are
        # provider routes for 31, but path via 22 is shorter.
        routes = sim.propagate(PREFIX, [10, 22])
        assert routes[31].as_path == (22, 1)

    def test_direct_peer_uses_direct_route(self, sim):
        routes = sim.propagate(PREFIX, [10, 22])
        assert routes[22].as_path == (1,)
        assert routes[22].relationship is Relationship.PEER

    def test_no_valley_paths(self, sim, micro_graph):
        """Every installed path must be valley-free (policy compliance)."""
        routes = sim.propagate(PREFIX, [10, 22])
        for asn, r in routes.items():
            hops = (asn,) + r.as_path
            # Verify each adjacent pair is connected and the path shape is
            # up*(peer)?down* when read from the holder to the origin.
            descended = False
            for a, b in zip(hops, hops[1:]):
                rel = micro_graph.relationship(a, b)
                assert rel is not None, f"no link {a}->{b}"
                if rel is Relationship.PROVIDER:
                    assert not descended, f"valley in path {hops}"
                else:
                    descended = True

    def test_deterministic_across_instances(self, micro_graph):
        a = BGPSimulator(micro_graph, 1, tie_break_seed=42)
        b = BGPSimulator(micro_graph, 1, tie_break_seed=42)
        ra = a.propagate(PREFIX, [10, 22])
        rb = b.propagate(PREFIX, [10, 22])
        assert {k: v.as_path for k, v in ra.items()} == {
            k: v.as_path for k, v in rb.items()
        }

    def test_duplicate_targets_deduplicated(self, sim):
        assert {
            k: v.as_path for k, v in sim.propagate(PREFIX, [10, 10, 22]).items()
        } == {k: v.as_path for k, v in sim.propagate(PREFIX, [10, 22]).items()}


class TestQueries:
    def test_reachable_ases(self, sim, micro_graph):
        reachable = sim.reachable_ases(PREFIX, [22])
        assert reachable == frozenset(micro_graph.customer_cone(22))

    def test_entry_neighbor(self, sim):
        routes = sim.propagate(PREFIX, [10, 22])
        assert sim.entry_neighbor(routes, 30) == 10  # S1 only via T1
        assert sim.entry_neighbor(routes, 31) == 22
        assert sim.entry_neighbor(routes, 22) == 22  # direct peer is its own entry
        assert sim.entry_neighbor(routes, 12345) is None

    def test_as_path_to_origin(self, sim):
        routes = sim.propagate(PREFIX, [10])
        assert sim.as_path_to_origin(routes, 30) == (20, 10, 1)
        assert sim.as_path_to_origin(routes, 99999) is None


class TestAgainstOracle:
    def test_reachability_matches_valley_free_oracle(self, scenario):
        """On a generated world: an AS hears an announcement to peer P iff a
        valley-free path from the AS to P exists (modulo the direct cloud
        link, which the oracle would route through)."""
        graph = scenario.graph
        sim = BGPSimulator(graph, origin_asn=1, tie_break_seed=0)
        deployment = scenario.deployment
        # Pick a non-transit peer with a modest cone.
        peers = [
            p.peer_asn
            for p in deployment.peerings
            if not p.is_transit and p.peer_asn != 1
        ]
        target = peers[0]
        routes = sim.propagate(PREFIX, [target])
        for asn in list(graph)[:80]:
            if asn == 1:
                continue
            expected = asn in graph.customer_cone(target)
            assert (asn in routes) == expected, f"AS{asn} vs cone of AS{target}"
