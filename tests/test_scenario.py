"""Scenario assembly and the top-level package surface."""

import pytest

import repro
from repro.scenario import azure_scenario, build_scenario, prototype_scenario, tiny_scenario
from repro.topology.builder import TopologyConfig
from repro.usergroups.generation import UserGroupConfig


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_top_level_exports(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name


class TestPresets:
    def test_tiny_preset(self):
        s = tiny_scenario(seed=1, n_ugs=25)
        assert len(s.user_groups) == 25
        assert len(s.deployment.pops) == 6

    def test_prototype_preset_scale(self):
        s = prototype_scenario(seed=1, n_ugs=50)
        # Paper prototype: 25 Vultr PoPs.
        assert len(s.deployment.pops) == 25
        assert len(s.deployment) > 100  # hundreds of ingresses

    def test_azure_preset_larger(self):
        azure = azure_scenario(seed=1, n_ugs=50)
        proto = prototype_scenario(seed=1, n_ugs=50)
        assert len(azure.deployment) > len(proto.deployment)


class TestScenarioInvariants:
    def test_anycast_cache_consistent(self, scenario):
        ug = scenario.user_groups[0]
        assert scenario.anycast_latency_ms(ug) == scenario.anycast_latency_ms(ug)

    def test_anycast_latencies_cover_all_ugs(self, scenario):
        latencies = scenario.anycast_latencies()
        assert set(latencies) == {ug.ug_id for ug in scenario.user_groups}
        assert all(v > 0 for v in latencies.values())

    def test_best_possible_below_anycast(self, scenario):
        for ug in scenario.user_groups:
            assert scenario.best_possible_latency_ms(ug) <= scenario.anycast_latency_ms(ug) + 1e-9

    def test_total_possible_benefit_monotone_with_inflation(self):
        """Worlds with more hidden inflation leave more on the table."""
        from repro.measurement.latency_model import LatencyModelConfig

        base_cfg = dict(
            topology_config=TopologyConfig(
                seed=2, n_pops=6, n_tier1=2, n_transit=4, n_regional=12, n_stub=50
            ),
            ug_config=UserGroupConfig(seed=3, n_ugs=50),
        )
        calm = build_scenario(
            "calm",
            latency_config=LatencyModelConfig(seed=2, inflation_prob_transit=0.05, inflation_prob_peer=0.02),
            **base_cfg,
        )
        stormy = build_scenario(
            "stormy",
            latency_config=LatencyModelConfig(seed=2, inflation_prob_transit=0.5, inflation_prob_peer=0.3),
            **base_cfg,
        )
        assert stormy.total_possible_benefit() > calm.total_possible_benefit()

    def test_day_variation_in_total_possible(self, scenario):
        base = scenario.total_possible_benefit(day=0)
        later = scenario.total_possible_benefit(day=5)
        assert later != base  # day dynamics shift the landscape


class TestExperimentRegistry:
    def test_all_experiments_registered(self):
        from repro.experiments import ALL_EXPERIMENTS

        expected = {
            "chaos", "communities", "controller", "hotpotato", "replay",
            "fig3", "fig6a", "fig6b", "fig6c", "fig7", "fig8", "fig9a", "fig9b",
            "fig10", "fig11a", "fig11b", "fig12", "fig14", "fig15a", "fig15b",
            "ext_congestion", "ext_egress", "ext_failover_sweep", "ext_ipv6", "ext_multipath",
            "optimality", "soak",
        }
        assert set(ALL_EXPERIMENTS) == expected

    def test_cli_rejects_unknown(self):
        from repro.experiments.__main__ import main

        assert main(["not-an-experiment"]) == 2

    def test_cli_runs_cheap_experiment(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["fig10"]) == 0
        output = capsys.readouterr().out
        assert "fig10" in output and "PAINTER downtime" in output
