"""Depth tests for corners the module suites don't reach."""

import math

import pytest

from repro.core.advertisement import AdvertisementConfig
from repro.core.benefit import realized_benefit
from repro.steering.granularity import (
    GRANULARITY_BUCKETS,
    PopGranularity,
    _bucket_shares,
)


class TestBucketShares:
    def test_unit_equal_to_whole_pop(self):
        shares = _bucket_shares([10.0], pop_volume=10.0)
        assert shares[-1] == pytest.approx(1.0)
        assert sum(shares) == pytest.approx(1.0)

    def test_zero_pop_volume(self):
        assert _bucket_shares([1.0], pop_volume=0.0) == tuple(
            0.0 for _ in GRANULARITY_BUCKETS
        )

    def test_tiny_units_in_finest_bucket(self):
        shares = _bucket_shares([1e-7] * 10, pop_volume=1.0)
        assert shares[0] == pytest.approx(1e-6)
        assert all(s == 0 for s in shares[1:])

    def test_share_finer_than(self):
        granularity = PopGranularity(
            pop_name="p", mechanism="m", bucket_shares=(0.1, 0.2, 0.3, 0.2, 0.2)
        )
        assert granularity.share_finer_than(0.001) == pytest.approx(0.3)
        assert granularity.share_finer_than(1.1) == pytest.approx(1.0)


class TestRealizedBenefitModes:
    def test_day_changes_realized(self, scenario):
        config = AdvertisementConfig.from_pairs(
            (0, pid) for pid in sorted(scenario.catalog.ingress_ids(scenario.user_groups[0]))[:2]
        )
        day0 = realized_benefit(scenario, config, day=0)
        later = {realized_benefit(scenario, config, day=d) for d in range(1, 6)}
        assert len(later | {day0}) > 1

    def test_prefix_choice_partial_mapping(self, scenario):
        """UGs absent from the pinning map fall back to anycast (0 gain)."""
        ug = scenario.user_groups[0]
        config = AdvertisementConfig.from_pairs(
            (0, pid) for pid in sorted(scenario.catalog.ingress_ids(ug))[:2]
        )
        pinned_all = realized_benefit(
            scenario, config, prefix_choice={u.ug_id: 0 for u in scenario.user_groups}
        )
        pinned_none = realized_benefit(scenario, config, prefix_choice={})
        free = realized_benefit(scenario, config)
        assert pinned_none == 0.0
        assert pinned_all <= free + 1e-9


class TestEnterpriseSloHelpers:
    def test_painter_latency_for_site_uses_best_prefix(self, scenario):
        from repro.core.orchestrator import PainterOrchestrator
        from repro.enterprise import EnterpriseConfig, build_enterprise
        from repro.enterprise.slo import painter_latency_for_site

        enterprise = build_enterprise(scenario, EnterpriseConfig(seed=2, n_branches=2))
        config = PainterOrchestrator(scenario, prefix_budget=3).solve()
        for site in enterprise.sites:
            latency = painter_latency_for_site(scenario, site, config)
            assert latency <= scenario.anycast_latency_ms(site.user_group) + 1e-9
            assert latency > 0


class TestFailoverSummaryApi:
    def test_summary_matches_run(self):
        from repro.experiments.fig10 import failover_summary

        outcome = failover_summary()
        assert outcome.detection_time_s is not None
        assert outcome.recovery_time_s is not None
        assert outcome.recovery_time_s >= outcome.config.failure_time_s


class TestInstallationHelpers:
    def test_pop_octet_stable_and_bounded(self, scenario):
        from repro.core.installation import pop_octet

        pops = scenario.deployment.pops
        octets = [pop_octet(p) for p in pops]
        assert octets == [pop_octet(p) for p in pops]  # stable
        assert all(0 <= o < 250 for o in octets)
        assert len(set(octets)) == len(pops)  # distinct within a deployment


class TestConvergenceProperties:
    @pytest.mark.parametrize("seed", range(5))
    def test_traces_well_formed_across_seeds(self, seed):
        from repro.bgp.convergence import simulate_withdrawal

        trace = simulate_withdrawal(30.0, seed=seed)
        times = [e.time_s for e in trace.events]
        assert times == sorted(times)
        assert not trace.is_reachable_at(trace.withdrawal_time_s + 1e-6)
        assert trace.is_reachable_at(trace.reconvergence_time_s + 1.0)
        assert trace.latency_penalty_at(trace.reconvergence_time_s + 60.0) == 0.0


class TestWorkloadEdgeCases:
    def test_single_site_enterprise(self, scenario):
        from repro.enterprise import Enterprise, STANDARD_SERVICES, Site, SiteKind
        from repro.enterprise.workload import generate_workload

        enterprise = Enterprise(name="solo", services=list(STANDARD_SERVICES))
        enterprise.add_site(
            Site(
                name="only",
                kind=SiteKind.HEADQUARTERS,
                user_group=scenario.user_groups[0],
                headcount=50,
            )
        )
        flows = generate_workload(enterprise, duration_s=1800.0, seed=1)
        assert flows
        assert {f.site_name for f in flows} == {"only"}
