"""BGP route objects, decision process, export policy."""

import pytest
from hypothesis import given, strategies as st

from repro.bgp.route import Route, better_route, decision_key, may_export
from repro.topology.asn import Relationship


def route(path, rel=Relationship.CUSTOMER, prefix="10.0.0.0/24"):
    return Route(prefix=prefix, as_path=tuple(path), relationship=rel)


class TestRoute:
    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            route([])

    def test_looped_path_rejected(self):
        with pytest.raises(ValueError):
            route([1, 2, 1])

    def test_accessors(self):
        r = route([5, 6, 7], Relationship.PEER)
        assert r.learned_from == 5
        assert r.origin_asn == 7
        assert r.path_length == 3
        assert r.contains_asn(6)
        assert not r.contains_asn(99)

    def test_extend_through(self):
        r = route([2, 1])
        extended = r.extend_through(3, Relationship.PROVIDER)
        assert extended.as_path == (3, 2, 1)
        assert extended.relationship is Relationship.PROVIDER
        assert extended.prefix == r.prefix

    def test_extend_through_loop_rejected(self):
        r = route([2, 1])
        with pytest.raises(ValueError):
            r.extend_through(2, Relationship.PEER)

    def test_local_preference_follows_relationship(self):
        assert (
            route([1], Relationship.CUSTOMER).local_preference
            > route([1], Relationship.PEER).local_preference
            > route([1], Relationship.PROVIDER).local_preference
        )


class TestDecision:
    def test_customer_beats_shorter_provider(self):
        customer = route([2, 3, 4, 1], Relationship.CUSTOMER)
        provider = route([5, 1], Relationship.PROVIDER)
        assert better_route(customer, 0.9, provider, 0.1)

    def test_shorter_path_wins_same_relationship(self):
        short = route([2, 1], Relationship.PEER)
        long = route([3, 4, 1], Relationship.PEER)
        assert better_route(short, 0.9, long, 0.1)

    def test_tie_break_used_last(self):
        a = route([2, 1], Relationship.PEER)
        b = route([3, 1], Relationship.PEER)
        assert better_route(a, 0.1, b, 0.2)
        assert not better_route(a, 0.2, b, 0.1)

    def test_anything_beats_none(self):
        assert better_route(route([1]), 0.5, None, 0.0)

    def test_decision_key_total_order(self):
        routes = [
            (route([2, 1], Relationship.PROVIDER), 0.5),
            (route([3, 1], Relationship.PEER), 0.5),
            (route([4, 5, 1], Relationship.CUSTOMER), 0.5),
        ]
        ordered = sorted(routes, key=lambda rt: decision_key(rt[0], rt[1]))
        assert ordered[0][0].relationship is Relationship.CUSTOMER
        assert ordered[-1][0].relationship is Relationship.PROVIDER


class TestExportPolicy:
    @pytest.mark.parametrize("target", list(Relationship))
    def test_customer_routes_exported_everywhere(self, target):
        assert may_export(Relationship.CUSTOMER, target)

    @pytest.mark.parametrize("source", [Relationship.PEER, Relationship.PROVIDER])
    def test_peer_provider_routes_only_to_customers(self, source):
        assert may_export(source, Relationship.CUSTOMER)
        assert not may_export(source, Relationship.PEER)
        assert not may_export(source, Relationship.PROVIDER)


rels = st.sampled_from(list(Relationship))


class TestRouteProperties:
    @given(
        st.lists(st.integers(min_value=1, max_value=1000), min_size=1, max_size=8, unique=True),
        rels,
    )
    def test_route_roundtrip_properties(self, path, rel):
        r = route(path, rel)
        assert r.learned_from == path[0]
        assert r.origin_asn == path[-1]
        assert r.path_length == len(path)

    @given(
        st.lists(st.integers(min_value=2, max_value=1000), min_size=1, max_size=7, unique=True),
        rels,
        rels,
    )
    def test_extension_preserves_suffix(self, path, rel_a, rel_b):
        r = route(path, rel_a)
        extended = r.extend_through(1, rel_b)
        assert extended.as_path[1:] == r.as_path
        assert extended.path_length == r.path_length + 1
