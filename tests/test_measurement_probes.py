"""Probe fleet: coverage, volume bias, neighborhood queries."""

import pytest

from repro.measurement.probes import ProbeFleet, ProbeFleetConfig


class TestConfigValidation:
    def test_bad_coverage(self):
        with pytest.raises(ValueError):
            ProbeFleetConfig(coverage_fraction=0.0)

    def test_bad_bias(self):
        with pytest.raises(ValueError):
            ProbeFleetConfig(volume_bias=-1)


class TestFleet:
    def test_coverage_count(self, small_scenario):
        fleet = ProbeFleet(
            small_scenario.user_groups, ProbeFleetConfig(seed=1, coverage_fraction=0.3)
        )
        expected = round(len(small_scenario.user_groups) * 0.3)
        assert len(fleet.probe_ugs()) == expected

    def test_deterministic(self, small_scenario):
        cfg = ProbeFleetConfig(seed=2, coverage_fraction=0.25)
        a = ProbeFleet(small_scenario.user_groups, cfg)
        b = ProbeFleet(small_scenario.user_groups, cfg)
        assert a.probe_ug_ids == b.probe_ug_ids

    def test_volume_bias_overrepresents_heavy_ugs(self, small_scenario):
        """Probes cover more traffic volume than UG count share."""
        fleet = ProbeFleet(
            small_scenario.user_groups,
            ProbeFleetConfig(seed=3, coverage_fraction=0.3, volume_bias=1.5),
        )
        count_share = len(fleet.probe_ugs()) / len(small_scenario.user_groups)
        assert fleet.covered_volume_fraction() > count_share

    def test_has_probe_consistent(self, small_scenario):
        fleet = ProbeFleet(small_scenario.user_groups, ProbeFleetConfig(seed=1))
        for ug in small_scenario.user_groups:
            assert fleet.has_probe(ug) == (ug.ug_id in fleet.probe_ug_ids)

    def test_probes_near_radius(self, small_scenario):
        from repro.topology.geo import haversine_km

        fleet = ProbeFleet(small_scenario.user_groups, ProbeFleetConfig(seed=1))
        ug = small_scenario.user_groups[0]
        for probe in fleet.probes_near(ug, radius_km=1500):
            assert haversine_km(probe.location, ug.location) <= 1500
            assert probe.ug_id != ug.ug_id

    def test_probes_near_latency_filter(self, small_scenario):
        fleet = ProbeFleet(small_scenario.user_groups, ProbeFleetConfig(seed=1))
        anycast = small_scenario.anycast_latencies()
        ug = small_scenario.user_groups[0]
        near = fleet.probes_near(
            ug, radius_km=3000, anycast_latency_ms=anycast, latency_tolerance_ms=10.0
        )
        for probe in near:
            assert abs(anycast[probe.ug_id] - anycast[ug.ug_id]) <= 10.0
        unrestricted = fleet.probes_near(ug, radius_km=3000)
        assert len(near) <= len(unrestricted)

    def test_full_coverage(self, scenario):
        fleet = ProbeFleet(scenario.user_groups, ProbeFleetConfig(seed=1, coverage_fraction=1.0))
        assert len(fleet.probe_ugs()) == len(scenario.user_groups)
        assert fleet.covered_volume_fraction() == pytest.approx(1.0)
