"""Markdown report generation."""

import pytest

from repro.experiments.harness import ExperimentResult
from repro.reporting import build_report, result_to_markdown, run_and_report


def _result(identifier="figX", rows=2):
    result = ExperimentResult(identifier, "demo table", columns=["name", "value"])
    for index in range(rows):
        result.add_row(f"row{index}", float(index))
    result.add_note("a note")
    return result


class TestResultToMarkdown:
    def test_structure(self):
        text = result_to_markdown(_result())
        assert text.startswith("## figX — demo table")
        assert "| name | value |" in text
        assert "| row0 | 0.000 |" in text
        assert "> a note" in text

    def test_row_elision(self):
        text = result_to_markdown(_result(rows=10), max_rows=3)
        assert "…7 more rows elided." in text
        assert "row9" not in text

    def test_pipe_escaping(self):
        result = ExperimentResult("f", "t", columns=["c"])
        result.add_row("a|b")
        assert "a\\|b" in result_to_markdown(result)


class TestBuildReport:
    def test_contents_and_sections(self):
        report = build_report([_result("a"), _result("b")], timestamp="now")
        assert report.startswith("# PAINTER reproduction report")
        assert "Generated now." in report
        assert "- [a](#user-content-a)" in report
        assert "## b — demo table" in report

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            build_report([])

    def test_preamble_included(self):
        report = build_report([_result()], preamble="Context here.", timestamp="t")
        assert "Context here." in report


class TestRunAndReport:
    def test_runs_selected_experiments(self, scenario):
        report = run_and_report(["fig10", "fig12"], scenario=scenario)
        assert "fig10" in report and "fig12" in report

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_and_report(["nope"])

    def test_scenario_kwarg_only_passed_where_accepted(self, scenario):
        # fig10 does not take a scenario; this must not crash.
        report = run_and_report(["fig10"], scenario=scenario)
        assert "PAINTER downtime" in report
