"""More property-based suites: DNS traces, selection, multipath, tunnels."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.dns.trace import CLOUD_PROFILES, TraceFlow, generate_trace
from repro.dns.records import DNSRecord
from repro.traffic_manager.multipath import MultipathConnection, Subflow
from repro.traffic_manager.selection import LowestLatencySelector, SelectionPolicyConfig
from repro.traffic_manager.tunnel import Packet, TMPoPNat, decapsulate, encapsulate


class TestTraceFlowProperties:
    @given(
        start=st.floats(min_value=0, max_value=7200, allow_nan=False),
        duration=st.floats(min_value=0.1, max_value=86400, allow_nan=False),
        total=st.floats(min_value=0, max_value=1e9, allow_nan=False),
        offset=st.floats(min_value=-3600, max_value=86400, allow_nan=False),
    )
    @settings(max_examples=80, deadline=None)
    def test_bytes_after_bounded_and_monotone(self, start, duration, total, offset):
        record = DNSRecord(hostname="h", address="a", ttl_s=60, issued_at_s=0.0)
        flow = TraceFlow(
            cloud="c", record=record, start_s=start, duration_s=duration, bytes_total=total
        )
        late = flow.bytes_after(offset)
        assert 0.0 <= late <= total
        assert flow.bytes_after(offset + 100.0) <= late + 1e-6

    @given(st.integers(min_value=1, max_value=300), st.integers(min_value=0, max_value=5))
    @settings(max_examples=20, deadline=None)
    def test_trace_generation_invariants(self, n_flows, seed):
        flows = generate_trace(CLOUD_PROFILES[1], n_flows=n_flows, seed=seed)
        assert len(flows) == n_flows
        for flow in flows:
            assert flow.duration_s > 0
            assert flow.bytes_total >= 0
            assert flow.start_s >= flow.record.issued_at_s


latency_rounds = st.lists(
    st.dictionaries(
        st.sampled_from(["a", "b", "c"]),
        st.one_of(st.floats(min_value=1, max_value=500), st.just(math.inf)),
        min_size=1,
        max_size=3,
    ),
    min_size=1,
    max_size=25,
)


class TestSelectorProperties:
    @given(latency_rounds)
    @settings(max_examples=60, deadline=None)
    def test_selection_always_live_or_none(self, rounds):
        selector = LowestLatencySelector(SelectionPolicyConfig())
        for latencies in rounds:
            selected = selector.update(latencies)
            live = {k for k, v in latencies.items() if not math.isinf(v)}
            if live:
                assert selected in live
            else:
                assert selected is None

    @given(latency_rounds)
    @settings(max_examples=60, deadline=None)
    def test_switch_count_bounded_by_rounds(self, rounds):
        selector = LowestLatencySelector(SelectionPolicyConfig())
        for latencies in rounds:
            selector.update(latencies)
        assert 0 <= selector.switch_count <= len(rounds)


subflows_strategy = st.lists(
    st.builds(
        Subflow,
        prefix=st.uuids().map(str),
        rtt_ms=st.floats(min_value=1, max_value=400),
        capacity_mbps=st.floats(min_value=0, max_value=1000),
    ),
    min_size=1,
    max_size=6,
    unique_by=lambda s: s.prefix,
)


class TestMultipathProperties:
    @given(subflows_strategy, st.floats(min_value=0, max_value=5000))
    @settings(max_examples=60, deadline=None)
    def test_schedule_conserves_demand(self, subflows, demand):
        connection = MultipathConnection(subflows)
        allocation = connection.schedule(demand)
        total = sum(allocation.values())
        assert total <= demand + 1e-6
        assert total <= connection.aggregate_capacity_mbps() + 1e-6
        for prefix, amount in allocation.items():
            subflow = next(s for s in subflows if s.prefix == prefix)
            assert amount <= subflow.capacity_mbps + 1e-9

    @given(subflows_strategy, st.floats(min_value=0.1, max_value=5000))
    @settings(max_examples=40, deadline=None)
    def test_failing_a_subflow_never_increases_delivery(self, subflows, demand):
        connection = MultipathConnection(subflows)
        before = connection.delivered_fraction(demand)
        for subflow in subflows:
            after = connection.fail_subflow(subflow.prefix).delivered_fraction(demand)
            assert after <= before + 1e-9


packet_strategy = st.builds(
    Packet,
    src_ip=st.from_regex(r"10\.[0-9]{1,2}\.[0-9]{1,2}\.[0-9]{1,2}", fullmatch=True),
    dst_ip=st.just("1.1.1.1"),
    src_port=st.integers(min_value=1, max_value=65535),
    dst_port=st.integers(min_value=1, max_value=65535),
    proto=st.sampled_from(["tcp", "udp"]),
    payload_bytes=st.integers(min_value=1, max_value=9000),
)


class TestTunnelProperties:
    @given(packet_strategy)
    @settings(max_examples=60, deadline=None)
    def test_encap_decap_roundtrip(self, packet):
        outer = encapsulate(packet, edge_ip="203.0.113.1", tunnel_dst_ip="184.164.224.1")
        assert decapsulate(outer) == packet
        assert outer.wire_bytes > packet.payload_bytes

    @given(st.lists(packet_strategy, min_size=1, max_size=20, unique_by=lambda p: (p.src_ip, p.src_port)))
    @settings(max_examples=30, deadline=None)
    def test_nat_journey_restores_every_client(self, packets):
        nat = TMPoPNat(nat_ips=["100.64.0.1"])
        for packet in packets:
            tunneled = encapsulate(packet, "203.0.113.1", "184.164.224.1")
            toward = nat.ingress(tunneled)
            reply = Packet(
                src_ip=packet.dst_ip,
                dst_ip=toward.src_ip,
                src_port=packet.dst_port,
                dst_port=toward.src_port,
                proto=packet.proto,
                payload_bytes=1,
            )
            final = decapsulate(nat.egress(reply))
            assert final.dst_ip == packet.src_ip
            assert final.dst_port == packet.src_port
