"""repro.telemetry units: tracer nesting, metrics kinds, journal round-trips."""

import json
import math

import pytest

from repro.telemetry import (
    JOURNAL_VERSION,
    METRICS,
    MetricsRegistry,
    NOOP_SPAN,
    RunJournal,
    Tracer,
    journal_to_result,
    load_journal,
    telemetry_session,
)
from repro.telemetry.journal import LoadedJournal


class TestTracer:
    def test_disabled_returns_shared_noop(self):
        tracer = Tracer()
        assert tracer.span("anything") is NOOP_SPAN
        assert tracer.span("else", tag=1) is NOOP_SPAN
        with tracer.span("noop") as span:
            span.tag("ignored", True)  # must not raise

    def test_spans_nest_with_parent_links(self):
        tracer = Tracer()
        finished = []
        tracer.enable(finished.append)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.depth == 1
                assert tracer.current is inner
            assert tracer.current is outer
        assert tracer.current is None
        # Completion order: inner closes first.
        assert [s.name for s in finished] == ["inner", "outer"]
        assert finished[0].parent_id == finished[1].span_id
        assert finished[1].parent_id is None

    def test_span_times_accumulate(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("timed") as span:
            sum(range(1000))
        assert span.wall_s >= 0.0
        assert span.cpu_s >= 0.0

    def test_tags_from_kwargs_and_tag_calls(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("tagged", preset="azure") as span:
            span.tag("result", 7)
        assert span.tags == {"preset": "azure", "result": 7}
        record = span.to_record()
        assert record["name"] == "tagged"
        assert record["tags"]["result"] == 7

    def test_disable_resets_ids(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("a") as a:
            pass
        tracer.disable()
        tracer.enable()
        with tracer.span("b") as b:
            pass
        assert a.span_id == b.span_id == 1


class TestMetricsRegistry:
    def test_gauge_last_value_wins(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("live")
        gauge.set(10)
        gauge.set(3)
        assert reg.gauge("live").value == 3.0
        reg.reset()
        assert gauge.value == 0.0

    def test_histogram_buckets_and_stats(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat", bounds=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 5.0, 50.0, 500.0):
            hist.observe(v)
        assert hist.count == 5
        assert hist.counts == [1, 2, 1, 1]
        assert hist.min == 0.5
        assert hist.max == 500.0
        assert hist.mean == pytest.approx(112.1)
        assert hist.quantile(0.5) == 10.0

    def test_histogram_bounds_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("h", bounds=(1.0, 2.0))
        with pytest.raises(ValueError):
            reg.histogram("h", bounds=(1.0, 3.0))
        with pytest.raises(ValueError):
            reg.histogram("bad", bounds=(2.0, 1.0))

    def test_snapshot_merge_round_trip(self):
        a = MetricsRegistry()
        a.counter("c").add(3)
        a.gauge("g").set(7)
        a.histogram("h", bounds=(1.0, 10.0)).observe(5.0)
        a.timer("t").add(0.5)
        b = MetricsRegistry()
        b.counter("c").add(1)
        b.histogram("h", bounds=(1.0, 10.0)).observe(50.0)
        b.merge(a.snapshot())
        assert b.counter("c").value == 4
        assert b.gauge("g").value == 7.0
        hist = b.histogram("h")
        assert hist.count == 2
        assert hist.counts == [0, 1, 1]
        assert b.timer("t").total_s == pytest.approx(0.5)

    def test_merge_tolerates_empty_histogram_snapshot(self):
        """A forked worker ships never-observed histograms (min/max None)."""
        a = MetricsRegistry()
        a.histogram("h", bounds=(1.0, 10.0))  # created but never observed
        b = MetricsRegistry()
        b.histogram("h", bounds=(1.0, 10.0)).observe(5.0)
        b.merge(a.snapshot())
        hist = b.histogram("h")
        assert hist.count == 1
        assert hist.min == 5.0
        assert hist.max == 5.0

    def test_prometheus_export_shape(self):
        reg = MetricsRegistry()
        reg.counter("orchestrator.solve_calls").add(2)
        reg.gauge("replay.live_flows").set(123.0)
        reg.cache("evaluator.memo").hits += 5
        reg.timer("tm.forward").add(0.25)
        hist = reg.histogram("tm.batch", bounds=(10.0, 100.0))
        hist.observe(5.0)
        hist.observe(50.0)
        hist.observe(5000.0)
        text = reg.to_prometheus()
        assert "orchestrator_solve_calls_total 2" in text
        assert "replay_live_flows 123" in text
        assert "evaluator_memo_hits_total 5" in text
        assert "tm_forward_calls_total 1" in text
        assert 'tm_batch_bucket{le="10"} 1' in text
        assert 'tm_batch_bucket{le="100"} 2' in text
        assert 'tm_batch_bucket{le="+Inf"} 3' in text
        assert "tm_batch_count 3" in text

    def test_render_includes_new_sections(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(2)
        reg.histogram("h").observe(3.0)
        text = reg.render()
        assert "-- gauges --" in text
        assert "-- histograms --" in text
        md = reg.to_markdown()
        assert "| gauge | value |" in md
        assert "| histogram |" in md

    def test_perf_shim_is_same_registry(self):
        from repro.perf import PERF, PerfRegistry

        assert PERF is METRICS
        assert PerfRegistry is MetricsRegistry


class TestRunJournal:
    def test_jsonl_round_trip(self, tmp_path):
        journal = RunJournal("unit", meta={"preset": "tiny"})
        journal.record_event("advertisement", iteration=0, prefixes=3)
        journal.record_event("fault", fault_kind="pop_outage")
        path = tmp_path / "run.jsonl"
        journal.write(str(path))
        loaded = load_journal(str(path))
        assert loaded.run_name == "unit"
        assert loaded.header["journal_version"] == JOURNAL_VERSION
        assert loaded.header["meta"] == {"preset": "tiny"}
        assert len(loaded.events()) == 2
        assert loaded.events("fault")[0]["fault_kind"] == "pop_outage"
        seqs = [r["seq"] for r in loaded.timeline()]
        assert seqs == sorted(seqs)

    def test_reserved_event_fields_rejected(self):
        journal = RunJournal("r")
        with pytest.raises(ValueError, match="reserved"):
            journal.record_event("fault", kind="pop_outage")

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(
            json.dumps({"kind": "header", "journal_version": JOURNAL_VERSION + 1})
            + "\n"
        )
        with pytest.raises(ValueError, match="version"):
            load_journal(str(path))

    def test_missing_header_rejected(self):
        with pytest.raises(ValueError, match="header"):
            LoadedJournal({"kind": "span"}, [])

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_journal(str(path))

    def test_timings_excluded_by_default(self):
        with telemetry_session("t") as journal:
            from repro.telemetry import TRACER

            with TRACER.span("x"):
                pass
        (span,) = journal.spans()
        assert "wall_s" not in span
        assert "cpu_s" not in span

    def test_timings_included_when_requested(self):
        with telemetry_session("t", include_timings=True) as journal:
            from repro.telemetry import TRACER

            with TRACER.span("x"):
                pass
        (span,) = journal.spans()
        assert span["wall_s"] >= 0.0
        assert span["cpu_s"] >= 0.0

    def test_session_restores_tracer_state(self):
        from repro.telemetry import TRACER

        assert not TRACER.enabled
        with telemetry_session("t"):
            assert TRACER.enabled
        assert not TRACER.enabled

    def test_to_result_renders_breakdown(self, tmp_path):
        from repro.telemetry import TRACER

        with telemetry_session("breakdown", include_timings=True) as journal:
            with TRACER.span("phase.a"):
                with TRACER.span("phase.b"):
                    pass
            journal.record_event("iteration_result", realized_benefit=12.5)
        path = tmp_path / "b.jsonl"
        journal.write(str(path))
        result = journal_to_result(load_journal(str(path)))
        text = result.render()
        assert "phase.a" in text
        assert "phase.b" in text
        assert "total wall (s)" in text
        assert "final realized benefit: 12.5000" in text

    def test_to_result_without_spans_notes_it(self, tmp_path):
        journal = RunJournal("quiet")
        path = tmp_path / "q.jsonl"
        journal.write(str(path))
        text = journal_to_result(load_journal(str(path))).render()
        assert "no spans" in text
