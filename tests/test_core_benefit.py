"""Benefit math: Eq. 1/2, ranges, realized improvements."""

import pytest

from repro.core.advertisement import AdvertisementConfig
from repro.core.benefit import (
    BenefitEvaluator,
    BenefitRange,
    best_prefix_choices,
    realized_benefit,
    realized_improvement,
)
from repro.core.routing_model import RoutingModel


@pytest.fixture()
def evaluator(scenario):
    return BenefitEvaluator(scenario, RoutingModel(scenario.catalog))


def _config_for(scenario, ug, k=3):
    """A single-prefix config over the UG's best few ingresses."""
    model = scenario.latency_model
    deployment = scenario.deployment
    best = sorted(
        scenario.catalog.ingress_ids(ug),
        key=lambda pid: model.latency_ms(ug, deployment.peering(pid)),
    )[:k]
    return AdvertisementConfig.from_pairs([(0, pid) for pid in best])


class TestBenefitRange:
    def test_ordering_enforced(self):
        with pytest.raises(ValueError):
            BenefitRange(lower=5, mean=4, estimated=4.5, upper=6)

    def test_uncertainty(self):
        rng = BenefitRange(lower=1, mean=2, estimated=2.5, upper=4)
        assert rng.uncertainty == pytest.approx(1.5)


class TestExpectedImprovement:
    def test_empty_config_zero(self, scenario, evaluator):
        config = AdvertisementConfig()
        for ug in scenario.user_groups[:10]:
            assert evaluator.expected_improvement(ug, config) == 0.0
        assert evaluator.expected_benefit(config) == 0.0

    def test_never_negative(self, scenario, evaluator):
        """Anycast fallback floors improvement at zero (§3.1)."""
        # A config over the UG's *worst* ingresses still scores >= 0.
        model = scenario.latency_model
        deployment = scenario.deployment
        ug = scenario.user_groups[0]
        worst = sorted(
            scenario.catalog.ingress_ids(ug),
            key=lambda pid: -model.latency_ms(ug, deployment.peering(pid)),
        )[:3]
        config = AdvertisementConfig.from_pairs([(0, pid) for pid in worst])
        assert evaluator.expected_improvement(ug, config) >= 0.0

    def test_best_ingress_config_achieves_gap(self, scenario, evaluator):
        ug = scenario.user_groups[0]
        config = _config_for(scenario, ug, k=1)
        expected = evaluator.expected_improvement(ug, config)
        gap = scenario.anycast_latency_ms(ug) - scenario.best_possible_latency_ms(ug)
        assert expected == pytest.approx(max(0.0, gap))

    def test_benefit_weighted_sum(self, scenario, evaluator):
        ug = scenario.user_groups[0]
        config = _config_for(scenario, ug, k=1)
        total = evaluator.expected_benefit(config)
        manual = sum(
            u.volume * evaluator.expected_improvement(u, config)
            for u in scenario.user_groups
        )
        assert total == pytest.approx(manual)


class TestRanges:
    def test_range_ordering_invariant(self, scenario, evaluator):
        ug = scenario.user_groups[0]
        config = _config_for(scenario, ug, k=4)
        rng = evaluator.benefit_range(ug, config)
        assert rng.lower <= rng.mean <= rng.upper
        assert rng.lower <= rng.estimated <= rng.upper

    def test_single_ingress_range_degenerate(self, scenario, evaluator):
        ug = scenario.user_groups[0]
        config = _config_for(scenario, ug, k=1)
        rng = evaluator.benefit_range(ug, config)
        assert rng.lower == rng.mean == rng.estimated == rng.upper

    def test_empty_config_zero_range(self, scenario, evaluator):
        rng = evaluator.benefit_range(scenario.user_groups[0], AdvertisementConfig())
        assert rng.upper == 0.0

    def test_evaluation_aggregates(self, scenario, evaluator):
        ug = scenario.user_groups[0]
        config = _config_for(scenario, ug, k=3)
        evaluation = evaluator.evaluate(config)
        assert evaluation.lower <= evaluation.mean <= evaluation.upper
        assert evaluation.lower <= evaluation.estimated <= evaluation.upper
        assert set(evaluation.per_ug_estimated) == {
            u.ug_id for u in scenario.user_groups
        }

    def test_zero_inflation_scale_collapses_to_closest(self, scenario):
        # Regression: inflation_scale_km=0 used to divide by zero inside
        # the exp weight; it now degrades to a hard cutoff at the closest
        # ingress and the range collapses to a 0-width point.
        evaluator = BenefitEvaluator(
            scenario, RoutingModel(scenario.catalog), inflation_scale_km=0.0
        )
        ug = scenario.user_groups[0]
        config = _config_for(scenario, ug, k=4)
        rng = evaluator.benefit_range(ug, config)
        assert rng.lower <= rng.estimated <= rng.upper
        evaluation = evaluator.evaluate(config)
        assert evaluation.lower <= evaluation.estimated <= evaluation.upper

    def test_all_zero_weights_degenerate_range(self, scenario, evaluator, monkeypatch):
        # Regression: when every candidate weight vanishes the estimated
        # mean must not raise ZeroDivisionError; the range collapses to the
        # closest ingress's improvement instead.
        monkeypatch.setattr(
            type(evaluator), "_inflation_weight", lambda self, excess_km: 0.0
        )
        ug = scenario.user_groups[0]
        config = _config_for(scenario, ug, k=4)
        rng = evaluator.benefit_range(ug, config)
        assert rng.lower == rng.mean == rng.estimated == rng.upper

    def test_as_fraction_of(self, scenario, evaluator):
        ug = scenario.user_groups[0]
        config = _config_for(scenario, ug, k=2)
        evaluation = evaluator.evaluate(config)
        scaled = evaluation.as_fraction_of(2.0)
        assert scaled.estimated == pytest.approx(evaluation.estimated / 2.0)
        with pytest.raises(ValueError):
            evaluation.as_fraction_of(0.0)


class TestRealized:
    def test_realized_nonnegative(self, scenario):
        ug = scenario.user_groups[0]
        config = _config_for(scenario, ug, k=3)
        for u in scenario.user_groups[:20]:
            assert realized_improvement(scenario, u, config) >= 0.0

    def test_realized_bounded_by_possible(self, scenario):
        ug = scenario.user_groups[0]
        config = _config_for(scenario, ug, k=3)
        for u in scenario.user_groups[:20]:
            possible = scenario.anycast_latency_ms(u) - scenario.best_possible_latency_ms(u)
            assert realized_improvement(scenario, u, config) <= possible + 1e-9

    def test_empty_config_zero_realized(self, scenario):
        assert realized_benefit(scenario, AdvertisementConfig()) == 0.0

    def test_fixed_prefix_never_beats_dynamic(self, scenario):
        ug = scenario.user_groups[0]
        config = _config_for(scenario, ug, k=2)
        config.add(1, sorted(scenario.catalog.ingress_ids(ug))[0])
        for u in scenario.user_groups[:15]:
            dynamic = realized_improvement(scenario, u, config)
            for prefix in config.prefixes:
                pinned = realized_improvement(scenario, u, config, fixed_prefix=prefix)
                assert pinned <= dynamic + 1e-9

    def test_best_prefix_choices_are_optimal(self, scenario):
        ug = scenario.user_groups[0]
        config = _config_for(scenario, ug, k=2)
        config.add(1, sorted(scenario.catalog.ingress_ids(ug))[-1])
        choices = best_prefix_choices(scenario, config)
        for u in scenario.user_groups[:15]:
            if u.ug_id not in choices:
                continue
            chosen = realized_improvement(
                scenario, u, config, fixed_prefix=choices[u.ug_id]
            )
            assert chosen == pytest.approx(realized_improvement(scenario, u, config))

    def test_full_exposure_realizes_everything(self, scenario):
        """One prefix per peering at full budget = the oracle bound."""
        config = AdvertisementConfig.from_pairs(
            (idx, p.peering_id) for idx, p in enumerate(scenario.deployment.peerings)
        )
        for u in scenario.user_groups[:20]:
            possible = scenario.anycast_latency_ms(u) - scenario.best_possible_latency_ms(u)
            assert realized_improvement(scenario, u, config) == pytest.approx(
                max(0.0, possible)
            )
