"""Shared fixtures: small deterministic worlds reused across the suite."""

from __future__ import annotations

import os

import pytest

try:
    from hypothesis import settings as _hyp_settings
except ImportError:  # pragma: no cover - hypothesis is a test-only dependency
    _hyp_settings = None

if _hyp_settings is not None:
    # CI runs with HYPOTHESIS_PROFILE=ci: no deadline (shared runners are
    # noisy timers) and derandomized example generation, so a red property
    # test reproduces identically on re-run instead of flaking.
    _hyp_settings.register_profile("ci", deadline=None, derandomize=True)
    _hyp_settings.register_profile("dev", deadline=None)
    _hyp_settings.load_profile(
        os.environ.get(
            "HYPOTHESIS_PROFILE", "ci" if os.environ.get("CI") else "dev"
        )
    )

from repro.scenario import Scenario, build_scenario, tiny_scenario
from repro.topology.asn import ASRole, AutonomousSystem, Relationship
from repro.topology.builder import TopologyConfig
from repro.topology.cloud import CloudDeployment
from repro.topology.geo import metro_by_name
from repro.topology.graph import ASGraph
from repro.usergroups.generation import UserGroupConfig


@pytest.fixture(scope="session")
def scenario() -> Scenario:
    """The standard tiny world (6 PoPs, ~30 peerings, 60 UGs)."""
    return tiny_scenario(seed=3)


@pytest.fixture(scope="session")
def small_scenario() -> Scenario:
    """A slightly larger world for analyses needing more diversity."""
    return build_scenario(
        name="small",
        topology_config=TopologyConfig(
            seed=7,
            n_pops=10,
            n_tier1=3,
            n_transit=6,
            n_regional=24,
            n_stub=120,
        ),
        ug_config=UserGroupConfig(seed=8, n_ugs=120),
    )


@pytest.fixture()
def micro_graph() -> ASGraph:
    """A hand-built AS graph with known structure.

    Topology (provider -> customer edges point down)::

            T1 ===== T2          (tier-1 peering)
            /  \\      \\
          P1    P2     P3        (regional providers)
          |      |    /  |
          S1    S2 --+   S3      (stubs; S2 is multihomed to P2 and P3)

    Cloud (AS 1) buys transit from T1 and peers with P3.
    """
    graph = ASGraph()
    metro = metro_by_name("new-york")
    for asn, role in [
        (1, ASRole.CLOUD),
        (10, ASRole.TIER1),
        (11, ASRole.TIER1),
        (20, ASRole.REGIONAL),
        (21, ASRole.REGIONAL),
        (22, ASRole.REGIONAL),
        (30, ASRole.STUB),
        (31, ASRole.STUB),
        (32, ASRole.STUB),
    ]:
        graph.add_as(AutonomousSystem(asn=asn, role=role, home_metro=metro))
    graph.add_peering_link(10, 11)
    graph.add_provider_customer(10, 20)
    graph.add_provider_customer(10, 21)
    graph.add_provider_customer(11, 22)
    graph.add_provider_customer(20, 30)
    graph.add_provider_customer(21, 31)
    graph.add_provider_customer(22, 31)
    graph.add_provider_customer(22, 32)
    graph.add_provider_customer(10, 1)  # T1 is the cloud's transit
    graph.add_peering_link(1, 22)  # cloud peers with P3 (AS 22)
    return graph


@pytest.fixture()
def micro_deployment() -> CloudDeployment:
    """Two-PoP deployment matching :func:`micro_graph`'s neighbors."""
    deployment = CloudDeployment(name="micro")
    pop_a = deployment.add_pop("pop-a", metro_by_name("new-york"))
    pop_b = deployment.add_pop("pop-b", metro_by_name("london"))
    deployment.add_peering(pop_a, 10, Relationship.PROVIDER)
    deployment.add_peering(pop_b, 10, Relationship.PROVIDER)
    deployment.add_peering(pop_a, 22, Relationship.PEER)
    return deployment
