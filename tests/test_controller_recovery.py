"""Out-of-process crash recovery: SIGKILL the controller, then resume.

The in-process suite (``test_controller_daemon.py``) proves the loop's
logic; this one proves the *durability* claim with a real process losing
its memory.  A controller run via the CLI is killed with ``SIGKILL`` by
its own crash-injection hook at each of the three interesting points of
an iteration — mid-journal-append (a torn record on disk), after the
journal is durable but before the checkpoint, and after the checkpoint —
and then restarted against the same checkpoint directory.  In every case
the resumed run must land on exactly the configuration and journal bytes
of a never-interrupted reference run, and no corrupt checkpoint or
journal file may survive.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys

import pytest

from repro.controller.checkpoint import _CHECKPOINT_RE

pytestmark = pytest.mark.skipif(
    os.name != "posix", reason="SIGKILL crash injection requires POSIX"
)

CRASH_POINTS = ("mid_journal", "before_checkpoint", "after_checkpoint")


def controller_cmd(checkpoint_dir, output, *extra):
    return [
        sys.executable,
        "-m",
        "repro",
        "controller",
        "--preset",
        "tiny",
        "--seed",
        "3",
        "--budget",
        "4",
        "--synthetic",
        "5",
        "--delta-seed",
        "7",
        "--checkpoint-dir",
        str(checkpoint_dir),
        "--output",
        str(output),
        *extra,
    ]


def run_cli(cmd):
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    return subprocess.run(
        cmd, capture_output=True, text=True, env=env, cwd=os.getcwd()
    )


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """One uninterrupted run: the ground truth for every crash variant."""
    root = tmp_path_factory.mktemp("reference")
    output = root / "final.json"
    proc = run_cli(controller_cmd(root / "cp", output))
    assert proc.returncode == 0, proc.stderr
    return {
        "config": json.loads(output.read_text()),
        "journal": (root / "cp" / "journal.jsonl").read_bytes(),
        "stdout": proc.stdout,
    }


class TestKillAndResume:
    @pytest.mark.parametrize("crash_point", CRASH_POINTS)
    def test_resume_matches_uninterrupted_run(
        self, tmp_path, reference, crash_point
    ):
        checkpoint_dir = tmp_path / "cp"
        output = tmp_path / "final.json"

        crashed = run_cli(
            controller_cmd(
                checkpoint_dir,
                output,
                "--crash-at",
                "2",
                "--crash-point",
                crash_point,
            )
        )
        # SIGKILL'd processes report -9 (or 137 through a shell wrapper).
        assert crashed.returncode in (-signal.SIGKILL, 128 + signal.SIGKILL)
        assert not output.exists()

        resumed = run_cli(controller_cmd(checkpoint_dir, output))
        assert resumed.returncode == 0, resumed.stderr
        assert "resumed from checkpoint" in resumed.stdout

        assert json.loads(output.read_text()) == reference["config"]
        assert (
            checkpoint_dir / "journal.jsonl"
        ).read_bytes() == reference["journal"]

    @pytest.mark.parametrize("crash_point", CRASH_POINTS)
    def test_no_corrupt_files_survive(self, tmp_path, crash_point):
        """Every checkpoint on disk after a crash+resume loads cleanly."""
        from repro.controller import CheckpointStore

        checkpoint_dir = tmp_path / "cp"
        output = tmp_path / "final.json"
        run_cli(
            controller_cmd(
                checkpoint_dir,
                output,
                "--crash-at",
                "1",
                "--crash-point",
                crash_point,
            )
        )
        resumed = run_cli(controller_cmd(checkpoint_dir, output))
        assert resumed.returncode == 0, resumed.stderr

        store = CheckpointStore(checkpoint_dir)
        paths = store.list_paths()
        assert paths, "resumed run left no checkpoints"
        for path in paths:
            assert _CHECKPOINT_RE.match(path.name)
            store.load(path)  # raises CheckpointError on any corruption

        # The journal parses line-for-line: no torn tail survived resume.
        lines = (checkpoint_dir / "journal.jsonl").read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert records[0]["kind"] == "header"
        seqs = [r["seq"] for r in records[1:]]
        assert seqs == list(range(len(seqs)))

    def test_double_crash_then_resume(self, tmp_path, reference):
        """Crashing the *resumed* run too must still converge."""
        checkpoint_dir = tmp_path / "cp"
        output = tmp_path / "final.json"
        first = run_cli(
            controller_cmd(
                checkpoint_dir, output, "--crash-at", "1",
                "--crash-point", "mid_journal",
            )
        )
        assert first.returncode != 0
        second = run_cli(
            controller_cmd(
                checkpoint_dir, output, "--crash-at", "3",
                "--crash-point", "before_checkpoint",
            )
        )
        assert second.returncode != 0
        final = run_cli(controller_cmd(checkpoint_dir, output))
        assert final.returncode == 0, final.stderr
        assert json.loads(output.read_text()) == reference["config"]
        assert (
            checkpoint_dir / "journal.jsonl"
        ).read_bytes() == reference["journal"]
