"""Differential telemetry harness: determinism and non-interference gates.

Two properties make the journal trustworthy as a record of a run:

* **determinism** — the same seeded scenario journaled twice produces
  byte-identical JSONL (timings are excluded by default precisely so this
  holds);
* **non-interference** — running with telemetry enabled changes nothing
  about the solver's or the TM data plane's outputs, and running with it
  disabled (the default) costs nothing and records nothing.
"""

import pytest

from repro.core.orchestrator import OrchestratorConfig, PainterOrchestrator
from repro.experiments.chaos import run_chaos
from repro.experiments.replay import ReplayConfig, run_traffic_replay
from repro.scenario import azure_scenario
from repro.telemetry import TRACER, telemetry_session

BUDGET = 3
ITERATIONS = 2


@pytest.fixture(scope="module")
def azure_small():
    return azure_scenario(seed=0, n_ugs=60)


def _journaled_learn(scenario):
    with telemetry_session("determinism", meta={"preset": "azure", "seed": 0}) as j:
        orchestrator = PainterOrchestrator(
            scenario, OrchestratorConfig(prefix_budget=BUDGET)
        )
        result = orchestrator.learn(iterations=ITERATIONS)
    return result, j.to_jsonl()


class TestJournalDeterminism:
    def test_identical_seeds_identical_journals(self, azure_small):
        """The determinism gate: same seeded azure run → same bytes."""
        result_a, jsonl_a = _journaled_learn(azure_small)
        result_b, jsonl_b = _journaled_learn(azure_small)
        assert jsonl_a == jsonl_b
        assert result_a.realized_benefits == result_b.realized_benefits

    def test_journal_is_nonempty_and_versioned(self, azure_small):
        import json

        _result, jsonl = _journaled_learn(azure_small)
        lines = jsonl.strip().split("\n")
        header = json.loads(lines[0])
        assert header["journal_version"] == 1
        assert header["meta"]["preset"] == "azure"
        records = [json.loads(line) for line in lines[1:]]
        names = {r["name"] for r in records if r["kind"] == "span"}
        assert "orchestrator.solve" in names
        assert "orchestrator.prefix_scan" in names
        assert "orchestrator.execute_and_observe" in names
        events = {r["event"] for r in records if r["kind"] == "event"}
        assert {"advertisement", "measurement_round", "iteration_result"} <= events
        # Arrival order is the timeline: seq strictly increases.
        seqs = [r["seq"] for r in records]
        assert seqs == list(range(len(records)))

    def test_chaos_journal_deterministic(self):
        """Fault storms (with injected faults and retries) journal stably."""

        def run():
            with telemetry_session("chaos") as j:
                run_chaos(storms=2, duration_s=60.0, seed=7, intensity=1.5)
            return j.to_jsonl()

        assert run() == run()

    def test_replay_journal_deterministic(self):
        config = ReplayConfig(
            preset="tiny", arrivals_per_step=20_000, steps=3,
            prefix_budget=3, fail_step=2,
        )

        def run():
            with telemetry_session("replay") as j:
                run_traffic_replay(config)
            return j.to_jsonl()

        assert run() == run()


class TestTelemetryNonInterference:
    def test_tracer_disabled_by_default(self):
        assert not TRACER.enabled

    def test_solver_output_identical_with_and_without_telemetry(self, azure_small):
        """No-op-mode gate: telemetry must not perturb the solved configs."""
        orchestrator = PainterOrchestrator(
            azure_small, OrchestratorConfig(prefix_budget=BUDGET)
        )
        plain = orchestrator.learn(iterations=ITERATIONS)
        traced, _jsonl = _journaled_learn(azure_small)
        assert plain.realized_benefits == traced.realized_benefits
        for a, b in zip(plain.iterations, traced.iterations):
            assert a.config == b.config
            assert a.new_preferences == b.new_preferences

    def test_tm_outputs_identical_with_and_without_telemetry(self):
        config = ReplayConfig(
            preset="tiny", arrivals_per_step=20_000, steps=3,
            prefix_budget=3, fail_step=2,
        )
        plain = run_traffic_replay(config)
        with telemetry_session("replay"):
            traced = run_traffic_replay(config)
        assert plain.flows_by_destination == traced.flows_by_destination
        assert plain.bytes_by_destination == traced.bytes_by_destination
        assert plain.flows_remapped == traced.flows_remapped
        assert plain.failed_prefix == traced.failed_prefix
        assert [s.admitted for s in plain.step_stats] == [
            s.admitted for s in traced.step_stats
        ]
        assert [s.unroutable for s in plain.step_stats] == [
            s.unroutable for s in traced.step_stats
        ]

    def test_chaos_outcomes_identical_with_and_without_telemetry(self):
        plain = run_chaos(storms=1, duration_s=60.0, seed=3)
        with telemetry_session("chaos"):
            traced = run_chaos(storms=1, duration_s=60.0, seed=3)
        assert plain.rows == traced.rows
