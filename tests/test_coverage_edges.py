"""Edge-case units for dns/, egress/coexistence, and steering/pecan.

These modules had happy-path coverage only; this file pins the error
branches and boundary behavior (validation, degenerate inputs, tie-break
rules) that the broader figure-level tests never reach.
"""

from __future__ import annotations

import math

import pytest

from repro.dns.records import DNSRecord
from repro.dns.resolvers import ResolverAssignment, ResolverConfig
from repro.dns.trace import (
    CLOUD_PROFILES,
    TraceFlow,
    bytes_yet_to_be_sent_curve,
    extant_vs_cached_ratio,
    generate_trace,
    stale_traffic_fraction,
)
from repro.egress.coexistence import (
    CoexistenceResult,
    DirectionalModel,
    EgressOptimizer,
    evaluate_coexistence,
)
from repro.steering.pecan import best_single_isp, compare_pecan_to_painter, pecan_config


def _flow(start_s, duration_s, bytes_total, ttl_s=60.0, issued_at_s=0.0):
    record = DNSRecord(
        hostname="svc.example", address="203.0.113.9", ttl_s=ttl_s,
        issued_at_s=issued_at_s,
    )
    return TraceFlow(
        cloud="cloud-x", record=record, start_s=start_s,
        duration_s=duration_s, bytes_total=bytes_total,
    )


class TestTraceEdges:
    def test_flow_validation(self):
        with pytest.raises(ValueError):
            _flow(0.0, 0.0, 100.0)  # non-positive duration
        with pytest.raises(ValueError):
            _flow(0.0, 10.0, -1.0)  # negative bytes

    def test_bytes_after_boundaries(self):
        # Record expires at 60; flow spans [100, 200).
        flow = _flow(100.0, 100.0, 1000.0)
        assert flow.bytes_after(0.0) == 1000.0  # threshold before start
        assert flow.bytes_after(40.0) == 1000.0  # threshold == start
        assert flow.bytes_after(90.0) == 500.0  # mid-flow, constant rate
        assert flow.bytes_after(140.0) == 0.0  # threshold == end
        assert flow.bytes_after(500.0) == 0.0  # long after

    def test_started_after_expiry(self):
        assert _flow(61.0, 10.0, 1.0).started_after_expiry
        assert not _flow(59.0, 10.0, 1.0).started_after_expiry

    def test_generate_trace_rejects_empty(self):
        with pytest.raises(ValueError):
            generate_trace(CLOUD_PROFILES[0], n_flows=0)

    def test_curve_rejects_zero_byte_trace(self):
        with pytest.raises(ValueError):
            bytes_yet_to_be_sent_curve([_flow(0.0, 10.0, 0.0)], [0.0])

    def test_extant_cached_ratio_infinite_without_cached_starts(self):
        # A single flow that outlived its record: no cached-start bytes.
        flow = _flow(30.0, 100.0, 1000.0)
        assert extant_vs_cached_ratio([flow]) == math.inf

    def test_stale_fraction_matches_curve_point(self):
        flows = generate_trace(CLOUD_PROFILES[1], n_flows=50, seed=4)
        offset = 60.0
        fraction = stale_traffic_fraction(flows, offset)
        assert fraction == bytes_yet_to_be_sent_curve(flows, [offset])[0][1]
        assert 0.0 <= fraction <= 1.0


class TestResolverEdges:
    def test_uncorrelated_assignment_path(self, scenario):
        assignment = ResolverAssignment(
            scenario, ResolverConfig(seed=5, benefit_correlated=False)
        )
        assert all(
            assignment.resolver_for(ug) is not None
            for ug in scenario.user_groups
        )

    def test_everyone_public_when_fraction_is_one(self, scenario):
        assignment = ResolverAssignment(
            scenario, ResolverConfig(public_resolver_fraction=1.0)
        )
        for ug in scenario.user_groups:
            assert assignment.resolver_for(ug).supports_ecs

    def test_single_cluster_cannot_be_disparate(self, scenario):
        # A radius spanning the globe makes one local resolver, so the
        # disparate branch (needing >= 2) can never trigger.
        assignment = ResolverAssignment(
            scenario,
            ResolverConfig(
                public_resolver_fraction=0.0,
                disparate_assignment_prob=1.0,
                local_radius_km=50_000.0,
            ),
        )
        names = {assignment.resolver_for(ug).name for ug in scenario.user_groups}
        assert len(names) == 1
        assert not next(iter(names)).startswith("public")

    def test_unknown_ug_raises_keyerror(self, scenario):
        assignment = ResolverAssignment(scenario)

        class FakeUG:
            ug_id = 10**9

        with pytest.raises(KeyError, match="no resolver"):
            assignment.resolver_for(FakeUG())


class TestCoexistenceEdges:
    def test_split_preserves_rtt_and_is_deterministic(self, scenario):
        model = DirectionalModel(scenario, seed=2)
        ug = scenario.user_groups[0]
        peering = scenario.catalog.ingresses(ug)[0]
        first = model.split(ug, peering)
        again = model.split(ug, peering)
        rtt = scenario.latency_model.latency_ms(ug, peering)
        assert first.rtt_ms == pytest.approx(rtt)
        assert (first.ingress_ms, first.egress_ms) == (
            again.ingress_ms, again.egress_ms,
        )

    def test_zero_asymmetry_splits_evenly(self, scenario):
        model = DirectionalModel(scenario, asymmetry=0.0)
        ug = scenario.user_groups[0]
        peering = scenario.catalog.ingresses(ug)[0]
        split = model.split(ug, peering)
        assert split.ingress_ms == pytest.approx(split.egress_ms)

    @pytest.mark.parametrize("bad", [-0.01, 0.5, 1.0])
    def test_asymmetry_validation(self, scenario, bad):
        with pytest.raises(ValueError):
            DirectionalModel(scenario, asymmetry=bad)

    def test_optimized_egress_never_worse_than_default(self, scenario):
        model = DirectionalModel(scenario, seed=3)
        optimizer = EgressOptimizer(scenario, model)
        for ug in scenario.user_groups[:10]:
            assert optimizer.best_egress_ms(ug) <= optimizer.default_egress_ms(ug)

    def test_additivity_degenerate_when_no_gain(self):
        result = CoexistenceResult(
            neither=100.0, painter_only=100.0, egress_only=100.0, both=100.0
        )
        assert result.painter_gain == 0.0
        assert result.additivity == 1.0  # no individual gain: defined as 1

    def test_combination_ordering(self, scenario):
        from repro.core.orchestrator import OrchestratorConfig, PainterOrchestrator

        config = PainterOrchestrator(
            scenario, OrchestratorConfig(prefix_budget=3)
        ).solve()
        result = evaluate_coexistence(scenario, config)
        assert result.both <= result.painter_only <= result.neither
        assert result.both <= result.egress_only <= result.neither


class TestPecanEdges:
    def test_no_transit_peerings_raises(self, scenario, monkeypatch):
        monkeypatch.setattr(
            scenario.deployment, "transit_peerings", lambda: []
        )
        with pytest.raises(RuntimeError, match="no transit"):
            best_single_isp(scenario)

    def test_best_isp_is_an_actual_transit(self, scenario):
        isp = best_single_isp(scenario)
        transit_asns = {
            p.peer_asn for p in scenario.deployment.transit_peerings()
        }
        assert isp in transit_asns

    def test_unknown_isp_rejected(self, scenario):
        with pytest.raises(ValueError, match="no peerings"):
            pecan_config(scenario, budget=3, isp_asn=64_999)

    def test_config_confined_to_single_isp_and_budget(self, scenario):
        isp = best_single_isp(scenario)
        config = pecan_config(scenario, budget=2, isp_asn=isp)
        assert config.prefix_count <= 2
        for prefix in config.prefixes:
            for pid in config.peerings_for(prefix):
                assert scenario.deployment.peering(pid).peer_asn == isp

    def test_compare_reports_consistent_isp(self, scenario):
        from repro.core.orchestrator import OrchestratorConfig, PainterOrchestrator

        painter = PainterOrchestrator(
            scenario, OrchestratorConfig(prefix_budget=3)
        ).solve()
        pecan_benefit, painter_benefit, isp = compare_pecan_to_painter(
            scenario, 3, painter
        )
        assert isp == best_single_isp(scenario)
        assert painter_benefit >= pecan_benefit
