"""AS-path prepending: the advertisement attribute that steers at a distance."""

import pytest

from repro.bgp.route import Route
from repro.bgp.simulator import BGPSimulator
from repro.topology.asn import Relationship

PREFIX = "184.164.230.0/24"


class TestRoutePrepend:
    def test_prepend_lengthens_decision_path(self):
        plain = Route(prefix=PREFIX, as_path=(1,), relationship=Relationship.PEER)
        padded = Route(
            prefix=PREFIX, as_path=(1,), relationship=Relationship.PEER, prepend=3
        )
        assert padded.path_length == plain.path_length + 3

    def test_negative_prepend_rejected(self):
        with pytest.raises(ValueError):
            Route(prefix=PREFIX, as_path=(1,), relationship=Relationship.PEER, prepend=-1)

    def test_prepend_survives_extension(self):
        route = Route(
            prefix=PREFIX, as_path=(1,), relationship=Relationship.PEER, prepend=2
        )
        extended = route.extend_through(9, Relationship.PROVIDER)
        assert extended.prepend == 2
        assert extended.path_length == 4


class TestSimulatorPrepend:
    def test_prepending_shifts_route_choice(self, micro_graph):
        """S2 (AS 31) normally prefers the short path via P3 (AS 22); heavy
        prepending on the AS 22 session pushes it onto the T1 path."""
        sim = BGPSimulator(micro_graph, origin_asn=1, tie_break_seed=0)
        baseline = sim.propagate(PREFIX, [10, 22])
        assert baseline[31].as_path == (22, 1)
        shifted = sim.propagate(PREFIX, [10, 22], prepend={22: 5})
        assert shifted[31].as_path == (21, 10, 1)

    def test_prepending_does_not_break_reachability(self, micro_graph):
        sim = BGPSimulator(micro_graph, origin_asn=1, tie_break_seed=0)
        plain = sim.propagate(PREFIX, [10, 22])
        padded = sim.propagate(PREFIX, [10, 22], prepend={10: 4, 22: 4})
        assert set(plain) == set(padded)

    def test_prepend_only_affects_that_session(self, micro_graph):
        sim = BGPSimulator(micro_graph, origin_asn=1, tie_break_seed=0)
        routes = sim.propagate(PREFIX, [10, 22], prepend={22: 5})
        # Routes entering via AS 10 carry no prepend.
        for asn, route in routes.items():
            if route.as_path[-2:] == (10, 1):
                assert route.prepend == 0
            if route.as_path[-2:] == (22, 1):
                assert route.prepend == 5
