"""User groups: model, generation, policy-compliant ingresses."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.topology.builder import TopologyConfig, build_topology
from repro.topology.geo import metro_by_name
from repro.usergroups.generation import UserGroupConfig, generate_user_groups, total_volume, zipf_weights
from repro.usergroups.ingresses import IngressCatalog, policy_compliant_peerings
from repro.usergroups.usergroup import UserGroup


class TestUserGroup:
    def test_negative_volume_rejected(self):
        with pytest.raises(ValueError):
            UserGroup(ug_id=0, asn=100, metro=metro_by_name("paris"), volume=-1.0)

    def test_key_and_location(self):
        ug = UserGroup(ug_id=0, asn=100, metro=metro_by_name("paris"), volume=0.5)
        assert ug.key == (100, "paris")
        assert ug.location == metro_by_name("paris").location


class TestZipf:
    def test_weights_sum_to_one(self):
        assert sum(zipf_weights(100, 1.1)) == pytest.approx(1.0)

    def test_weights_decreasing(self):
        weights = zipf_weights(50, 1.0)
        assert weights == sorted(weights, reverse=True)

    def test_heavy_tail(self):
        weights = zipf_weights(1000, 1.1)
        assert weights[0] > 0.1 * sum(weights[:100])

    @pytest.mark.parametrize("bad", [0, -3])
    def test_bad_n_rejected(self, bad):
        with pytest.raises(ValueError):
            zipf_weights(bad, 1.0)

    @given(st.integers(min_value=1, max_value=500), st.floats(min_value=0.2, max_value=2.5))
    @settings(max_examples=30, deadline=None)
    def test_zipf_always_a_distribution(self, n, exponent):
        weights = zipf_weights(n, exponent)
        assert len(weights) == n
        assert all(w > 0 for w in weights)
        assert sum(weights) == pytest.approx(1.0)


@pytest.fixture(scope="module")
def topology():
    return build_topology(
        TopologyConfig(seed=4, n_pops=8, n_tier1=2, n_transit=5, n_regional=16, n_stub=80)
    )


class TestGeneration:
    def test_count_and_unique_keys(self, topology):
        ugs = generate_user_groups(topology, UserGroupConfig(seed=1, n_ugs=100))
        assert len(ugs) == 100
        keys = [ug.key for ug in ugs]
        assert len(keys) == len(set(keys))

    def test_volumes_normalized(self, topology):
        ugs = generate_user_groups(topology, UserGroupConfig(seed=1, n_ugs=100))
        assert total_volume(ugs) == pytest.approx(1.0)

    def test_deterministic(self, topology):
        cfg = UserGroupConfig(seed=6, n_ugs=50)
        a = generate_user_groups(topology, cfg)
        b = generate_user_groups(topology, cfg)
        assert [(ug.key, ug.volume) for ug in a] == [(ug.key, ug.volume) for ug in b]

    def test_asns_are_edge_ases(self, topology):
        ugs = generate_user_groups(topology, UserGroupConfig(seed=1, n_ugs=60))
        edge = set(topology.edge_asns())
        assert all(ug.asn in edge for ug in ugs)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            UserGroupConfig(n_ugs=0)
        with pytest.raises(ValueError):
            UserGroupConfig(zipf_exponent=0)


class TestPolicyCompliance:
    def test_transit_always_compliant(self, topology):
        ugs = generate_user_groups(topology, UserGroupConfig(seed=2, n_ugs=40))
        transit_ids = {p.peering_id for p in topology.deployment.transit_peerings()}
        for ug in ugs:
            compliant = {p.peering_id for p in policy_compliant_peerings(ug, topology)}
            assert transit_ids <= compliant

    def test_direct_peering_compliant(self, topology):
        deployment = topology.deployment
        direct_asns = [
            asn for asn in deployment.peer_asns() if asn in set(topology.edge_asns())
        ]
        if not direct_asns:
            pytest.skip("no edge AS peers directly in this seed")
        asn = direct_asns[0]
        ug = UserGroup(ug_id=0, asn=asn, metro=metro_by_name("paris"), volume=0.1)
        compliant = {p.peering_id for p in policy_compliant_peerings(ug, topology)}
        for peering in deployment.peerings_with(asn):
            assert peering.peering_id in compliant

    def test_cone_rule(self, topology):
        """Non-transit peerings are compliant iff the UG is in the cone."""
        ugs = generate_user_groups(topology, UserGroupConfig(seed=2, n_ugs=40))
        graph = topology.graph
        for ug in ugs[:15]:
            compliant = {p.peering_id for p in policy_compliant_peerings(ug, topology)}
            for peering in topology.deployment.peerings:
                if peering.is_transit or peering.peer_asn == ug.asn:
                    continue
                expected = graph.in_customer_cone(ug.asn, of=peering.peer_asn)
                assert (peering.peering_id in compliant) == expected


class TestIngressCatalog:
    def test_matches_direct_computation(self, topology):
        ugs = generate_user_groups(topology, UserGroupConfig(seed=2, n_ugs=30))
        catalog = IngressCatalog(topology, ugs)
        for ug in ugs:
            direct = {p.peering_id for p in policy_compliant_peerings(ug, topology)}
            assert catalog.ingress_ids(ug) == direct

    def test_compliant_subset(self, topology):
        ugs = generate_user_groups(topology, UserGroupConfig(seed=2, n_ugs=10))
        catalog = IngressCatalog(topology, ugs)
        ug = ugs[0]
        all_ids = catalog.ingress_ids(ug)
        some = list(all_ids)[:3] + [10_000]
        subset = catalog.compliant_subset(ug, some)
        assert subset == frozenset(list(all_ids)[:3])

    def test_unknown_ug_raises(self, topology):
        ugs = generate_user_groups(topology, UserGroupConfig(seed=2, n_ugs=10))
        catalog = IngressCatalog(topology, ugs)
        stranger = UserGroup(ug_id=999, asn=ugs[0].asn, metro=ugs[0].metro, volume=0.0)
        with pytest.raises(KeyError):
            catalog.ingress_ids(stranger)

    def test_coverage_stats(self, topology):
        ugs = generate_user_groups(topology, UserGroupConfig(seed=2, n_ugs=30))
        catalog = IngressCatalog(topology, ugs)
        stats = catalog.coverage_stats()
        assert 0 < stats["min"] <= stats["mean"] <= stats["max"]

    def test_is_compliant(self, topology):
        ugs = generate_user_groups(topology, UserGroupConfig(seed=2, n_ugs=10))
        catalog = IngressCatalog(topology, ugs)
        ug = ugs[0]
        for peering in topology.deployment.peerings:
            assert catalog.is_compliant(ug, peering) == (
                peering.peering_id in catalog.ingress_ids(ug)
            )
