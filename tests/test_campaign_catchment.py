"""Measurement campaigns and anycast catchment analysis."""

import pytest

from repro.measurement.campaign import (
    CampaignConfig,
    MeasurementCampaign,
    campaign_targets,
)
from repro.measurement.ping import Pinger
from repro.steering.catchment import CatchmentAnalysis


class TestCampaignConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            CampaignConfig(probes_per_second=0)
        with pytest.raises(ValueError):
            CampaignConfig(samples_per_target=0)


class TestCampaign:
    @pytest.fixture(scope="class")
    def campaign_result(self, scenario):
        pinger = Pinger(scenario.latency_model, jitter_mean_ms=1.0, seed=2)
        campaign = MeasurementCampaign(
            pinger, CampaignConfig(probes_per_second=1000.0, samples_per_target=7)
        )
        targets = campaign_targets(scenario, max_targets_per_ug=5)
        return targets, campaign.run(targets)

    def test_every_target_measured(self, campaign_result):
        targets, result = campaign_result
        assert result.targets_measured == len(targets)
        assert result.targets_unreachable == 0
        assert result.probes_sent == 7 * len(targets)

    def test_min_bounds_truth(self, scenario, campaign_result):
        _targets, result = campaign_result
        for (ug_id, peering_id), measured in list(result.latencies_ms.items())[:30]:
            ug = next(u for u in scenario.user_groups if u.ug_id == ug_id)
            truth = scenario.latency_model.latency_ms(
                ug, scenario.deployment.peering(peering_id)
            )
            assert measured >= truth
            assert measured - truth < 15.0  # min-of-7 gets close

    def test_rate_limit_sets_duration(self, scenario):
        pinger = Pinger(scenario.latency_model, jitter_mean_ms=0.0, seed=2)
        slow = MeasurementCampaign(
            pinger, CampaignConfig(probes_per_second=10.0, samples_per_target=2)
        )
        targets = campaign_targets(scenario, max_targets_per_ug=1)[:10]
        result = slow.run(targets)
        # 20 probes at 10/s span ~1.9 s of simulated time.
        assert result.duration_s == pytest.approx((len(targets) * 2 - 1) / 10.0)

    def test_lossy_targets_counted_unreachable(self, scenario):
        pinger = Pinger(scenario.latency_model, loss_rate=0.999999, seed=2)
        campaign = MeasurementCampaign(
            pinger, CampaignConfig(probes_per_second=1000.0, samples_per_target=2)
        )
        targets = campaign_targets(scenario, max_targets_per_ug=1)[:5]
        result = campaign.run(targets)
        assert result.targets_unreachable == 5
        assert result.latencies_ms == {}

    def test_feeds_orchestrator(self, scenario, campaign_result):
        from repro.core.benefit import realized_benefit
        from repro.core.orchestrator import PainterOrchestrator

        _targets, result = campaign_result
        orchestrator = PainterOrchestrator(
            scenario, prefix_budget=3, latency_of=result.latency_of
        )
        config = orchestrator.solve()
        assert config.prefix_count >= 1
        assert realized_benefit(scenario, config) > 0


class TestCatchment:
    @pytest.fixture(scope="class")
    def analysis(self, scenario):
        return CatchmentAnalysis(scenario)

    def test_every_ug_lands_somewhere(self, scenario, analysis):
        assert len(analysis.entries) == len(scenario.user_groups)
        assert sum(analysis.catchment_sizes().values()) == len(scenario.user_groups)

    def test_volumes_conserved(self, scenario, analysis):
        total = sum(analysis.catchment_volumes().values())
        assert total == pytest.approx(sum(ug.volume for ug in scenario.user_groups))

    def test_inflation_nonnegative(self, analysis):
        for entry in analysis.entries:
            assert entry.inflation_km >= -1e-9
            if entry.landed_at_closest:
                assert entry.inflation_km == pytest.approx(0.0)

    def test_fraction_within_monotone(self, analysis):
        fractions = [analysis.fraction_within_km(km) for km in (0, 500, 1000, 20000)]
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0

    def test_inflated_tail_exists(self, analysis):
        """Some UGs are hauled far past their closest PoP — the Fig. 1
        pathology PAINTER exists to fix."""
        percentiles = analysis.inflation_percentiles((0.5, 0.99))
        assert percentiles[0.99] > percentiles[0.5]
        worst = analysis.worst_entries(3)
        assert worst[0].inflation_km >= worst[-1].inflation_km

    def test_most_ugs_land_reasonably_close(self, analysis):
        # The anycast-works-for-most-users observation [21, 54].
        assert analysis.fraction_within_km(3000) > 0.5


class TestCampaignFaults:
    """Loss/timeout semantics under a FaultSchedule (chaos tentpole)."""

    def test_dark_pop_exhausts_retries(self, scenario):
        from repro.faults import FaultSchedule, PopOutage

        pinger = Pinger(scenario.latency_model, jitter_mean_ms=0.0, seed=2)
        config = CampaignConfig(
            probes_per_second=1000.0, samples_per_target=2, max_retries=2
        )
        campaign = MeasurementCampaign(pinger, config)
        ug, peering = campaign_targets(scenario, max_targets_per_ug=1)[0]
        schedule = FaultSchedule(
            events=(PopOutage(start_s=0.0, pop_name=peering.pop.name),)
        )
        result = campaign.run([(ug, peering)], faults=schedule)
        assert result.targets_unreachable == 1
        assert result.targets_measured == 0
        # Every sample burns its full retry budget: 2 samples × 3 attempts.
        assert result.attempts_for(ug, peering.peering_id) == 2 * 3
        assert result.probes_lost == 6
        assert result.retries == 4
        assert result.loss_rate == 1.0

    def test_loss_window_survived_by_backoff(self, scenario):
        from repro.faults import FaultSchedule, ProbeLoss

        pinger = Pinger(scenario.latency_model, jitter_mean_ms=0.0, seed=2)
        config = CampaignConfig(
            probes_per_second=1000.0, samples_per_target=1,
            max_retries=2, retry_backoff_s=0.25,
        )
        campaign = MeasurementCampaign(pinger, config)
        ug, peering = campaign_targets(scenario, max_targets_per_ug=1)[0]
        # Total loss for 0.5 s: attempts at t=0 and t=0.25 die, the
        # exponentially backed-off third attempt (t=0.75) gets through.
        schedule = FaultSchedule(
            events=(ProbeLoss(start_s=0.0, duration_s=0.5, loss_rate=1.0),)
        )
        result = campaign.run([(ug, peering)], faults=schedule)
        assert result.targets_measured == 1
        assert result.attempts_for(ug, peering.peering_id) == 3
        assert result.retries == 2
        assert result.probes_lost == 2
        assert (ug.ug_id, peering.peering_id) in result.latencies_ms

    def test_stale_window_serves_previous_day(self, scenario):
        from repro.faults import FaultSchedule, StaleMeasurement

        pinger = Pinger(scenario.latency_model, jitter_mean_ms=0.0, seed=2)
        campaign = MeasurementCampaign(
            pinger, CampaignConfig(probes_per_second=1000.0, samples_per_target=3)
        )
        targets = campaign_targets(scenario, max_targets_per_ug=1)[:5]
        schedule = FaultSchedule(
            events=(StaleMeasurement(start_s=0.0, duration_s=3600.0, fraction=1.0),)
        )
        result = campaign.run(targets, day=1, faults=schedule, seed=4)
        fresh = campaign.run(targets, day=0)
        assert result.targets_measured == len(targets)
        assert result.stale_targets == set(result.latencies_ms)
        # Day-1 probes inside the stale window report day-0 values.
        assert result.latencies_ms == fresh.latencies_ms

    def test_clean_run_attempt_accounting(self, scenario):
        pinger = Pinger(scenario.latency_model, jitter_mean_ms=0.0, seed=2)
        campaign = MeasurementCampaign(
            pinger, CampaignConfig(probes_per_second=1000.0, samples_per_target=4)
        )
        targets = campaign_targets(scenario, max_targets_per_ug=1)[:8]
        result = campaign.run(targets)
        assert result.loss_rate == 0.0
        assert result.retries == 0
        assert result.stale_targets == set()
        for ug, peering in targets:
            assert result.attempts_for(ug, peering.peering_id) == 4
