"""Differential verification: warm-start re-solve vs a cold solve.

``PainterOrchestrator.solve_warm`` promises results **bit-identical** to a
from-scratch solve of the same (mutated) world, for every delta the
controller can apply: volume shifts, peering toggles, and PoP outages.
This suite is the proof:

* every mutation path is applied to a live orchestrator and warm-solved,
  then replayed onto a *fresh* orchestrator (no memo) and cold-solved —
  the configurations must match exactly;
* the volume-patch fast path (bit-exact memoized-summation patching, see
  ``patch_marginal``) must actually engage for volume-only dirt, and its
  reuse accounting must be visible in ``last_warm_stats``;
* an interrupted solve (an exception mid-``_solve``) must not swallow the
  dirty state it consumed — the retry still sees every pending delta.
"""

from __future__ import annotations

import pytest

from repro.core.orchestrator import OrchestratorConfig, PainterOrchestrator
from repro.scenario import prototype_scenario, tiny_scenario


def config_pairs(config):
    return sorted(
        [prefix, pid]
        for prefix in config.prefixes
        for pid in config.peerings_for(prefix)
    )


def fresh_reference(make_scenario, mutate, budget):
    """Cold-solve a brand-new orchestrator on an identically mutated world."""
    scenario = make_scenario()
    orch = PainterOrchestrator(scenario, OrchestratorConfig(prefix_budget=budget))
    mutate(orch)
    try:
        return config_pairs(orch.solve_warm())
    finally:
        orch.close()


@pytest.fixture
def warm_orch():
    orch = PainterOrchestrator(
        tiny_scenario(seed=3), OrchestratorConfig(prefix_budget=4)
    )
    yield orch
    orch.close()


class TestWarmEqualsCold:
    def test_noop_resolve_is_identical_and_fully_reused(self, warm_orch):
        first = warm_orch.solve_warm()
        assert warm_orch.last_warm_stats.mode == "cold"
        second = warm_orch.solve_warm()
        stats = warm_orch.last_warm_stats
        assert stats.mode == "warm"
        assert config_pairs(second) == config_pairs(first)
        assert stats.fresh_evals == 0
        assert stats.reused_evals > 0
        assert not stats.diverged

    @pytest.mark.parametrize("multiplier", [0.0, 0.3, 1.7, 10.0])
    def test_volume_shift_matches_fresh_cold_solve(self, warm_orch, multiplier):
        warm_orch.solve_warm()
        scenario = warm_orch._scenario
        ug = scenario.user_groups[len(scenario.user_groups) // 2]
        new_volume = ug.volume * multiplier

        def mutate(orch):
            orch.apply_volume_shift(ug.ug_id, new_volume)

        mutate(warm_orch)
        warm = config_pairs(warm_orch.solve_warm())
        assert warm_orch.last_warm_stats.mode == "warm"
        assert warm == fresh_reference(
            lambda: tiny_scenario(seed=3), mutate, budget=4
        )

    def test_peering_down_and_up_match_fresh_cold_solve(self, warm_orch):
        base = config_pairs(warm_orch.solve_warm())
        victim = base[0][1]  # a peering the solution actually uses

        warm_orch.set_peering_enabled(victim, False)
        down = config_pairs(warm_orch.solve_warm())
        assert warm_orch.last_warm_stats.mode == "warm"
        assert all(pid != victim for _, pid in down)
        assert down == fresh_reference(
            lambda: tiny_scenario(seed=3),
            lambda orch: orch.set_peering_enabled(victim, False),
            budget=4,
        )

        warm_orch.set_peering_enabled(victim, True)
        restored = config_pairs(warm_orch.solve_warm())
        assert restored == base

    def test_mixed_delta_stream_stays_identical(self, warm_orch):
        """Interleaved shifts and toggles across several warm re-solves."""
        warm_orch.solve_warm()
        scenario = warm_orch._scenario
        ugs = scenario.user_groups
        mutations = []

        def apply_and_check(mutate):
            mutations.append(mutate)
            mutate(warm_orch)
            warm = config_pairs(warm_orch.solve_warm())

            def replay_all(orch):
                for m in mutations:
                    m(orch)

            assert warm == fresh_reference(
                lambda: tiny_scenario(seed=3), replay_all, budget=4
            )

        # Capture target volumes eagerly: volume shifts mutate the shared
        # UserGroup in place, so re-reading ``.volume`` at replay time
        # would compound the shift.
        v_first = ugs[0].volume * 2.5
        v_last = ugs[-1].volume * 0.1
        apply_and_check(lambda o: o.apply_volume_shift(ugs[0].ug_id, v_first))
        some_pid = sorted(warm_orch._affected)[0]
        apply_and_check(lambda o: o.set_peering_enabled(some_pid, False))
        apply_and_check(lambda o: o.apply_volume_shift(ugs[-1].ug_id, v_last))
        apply_and_check(lambda o: o.set_peering_enabled(some_pid, True))

    def test_prototype_volume_shift_matches(self):
        orch = PainterOrchestrator(
            prototype_scenario(seed=1), OrchestratorConfig(prefix_budget=6)
        )
        try:
            orch.solve_warm()
            ug = orch._scenario.user_groups[7]
            target = ug.volume * 3.0  # captured before the in-place shift
            orch.apply_volume_shift(ug.ug_id, target)
            warm = config_pairs(orch.solve_warm())
            stats = orch.last_warm_stats
        finally:
            orch.close()
        assert stats.mode == "warm"
        assert warm == fresh_reference(
            lambda: prototype_scenario(seed=1),
            lambda o: o.apply_volume_shift(ug.ug_id, target),
            budget=6,
        )


class TestVolumePatchPath:
    def test_patch_path_engages_for_volume_only_dirt(self):
        orch = PainterOrchestrator(
            prototype_scenario(seed=1), OrchestratorConfig(prefix_budget=6)
        )
        try:
            orch.solve_warm()
            ug = orch._scenario.user_groups[5]
            orch.apply_volume_shift(ug.ug_id, ug.volume * 1.5)
            orch.solve_warm()
            stats = orch.last_warm_stats
        finally:
            orch.close()
        assert stats.mode == "warm"
        # Volume-only dirt must ride the memoized-summation patch, not the
        # fresh path: refreshes of dirtied peerings are patched.
        assert stats.patched_evals > 0

    def test_structural_dirt_disables_patching_for_that_peering(self):
        orch = PainterOrchestrator(
            tiny_scenario(seed=3), OrchestratorConfig(prefix_budget=4)
        )
        try:
            orch.solve_warm()
            ug = orch._scenario.user_groups[0]
            pids = orch._scenario.catalog.ingress_ids(ug)
            target = ug.volume * 2.0  # captured before the in-place shift
            orch.apply_volume_shift(ug.ug_id, target)
            victim = sorted(pids)[0]
            orch.set_peering_enabled(victim, False)
            orch.set_peering_enabled(victim, True)
            # The toggled peering is structurally dirty: it must not be
            # counted twice in the dirty accounting.
            assert victim in orch.dirty_peerings
            config = config_pairs(orch.solve_warm())
        finally:
            orch.close()
        assert config == fresh_reference(
            lambda: tiny_scenario(seed=3),
            lambda o: o.apply_volume_shift(ug.ug_id, target),
            budget=4,
        )

    def test_chained_shifts_patch_patched_details(self):
        """A patched refresh's detail must itself be patchable next round."""
        orch = PainterOrchestrator(
            prototype_scenario(seed=1), OrchestratorConfig(prefix_budget=6)
        )
        try:
            orch.solve_warm()
            ugs = orch._scenario.user_groups
            shifts = []
            for step, (index, mult) in enumerate(
                [(5, 1.5), (5, 0.5), (11, 4.0), (5, 2.0)]
            ):
                ug = ugs[index]
                shifts.append((ug.ug_id, ug.volume * mult))
                orch.apply_volume_shift(ug.ug_id, ug.volume * mult)
                warm = config_pairs(orch.solve_warm())
                assert orch.last_warm_stats.mode == "warm", f"step {step}"

                def replay(o, upto=list(shifts)):
                    for ug_id, vol in upto:
                        o.apply_volume_shift(ug_id, vol)

                assert warm == fresh_reference(
                    lambda: prototype_scenario(seed=1), replay, budget=6
                ), f"step {step}"
        finally:
            orch.close()


class TestDirtStateRobustness:
    def test_interrupted_solve_restores_dirty_state(self, monkeypatch):
        orch = PainterOrchestrator(
            tiny_scenario(seed=3), OrchestratorConfig(prefix_budget=4)
        )
        try:
            orch.solve_warm()
            ug = orch._scenario.user_groups[0]
            target = ug.volume * 2.0  # captured before the in-place shift
            orch.apply_volume_shift(ug.ug_id, target)
            dirty_before = set(orch.dirty_peerings)
            assert dirty_before

            def boom(*args, **kwargs):
                raise RuntimeError("interrupted mid-solve")

            monkeypatch.setattr(orch, "_solve", boom)
            with pytest.raises(RuntimeError):
                orch.solve_warm()
            monkeypatch.undo()
            # The failed attempt must not have eaten the dirt: the retry
            # still sees it and produces the correct (mutated) result.
            assert set(orch.dirty_peerings) == dirty_before
            retry = config_pairs(orch.solve_warm())
        finally:
            orch.close()
        assert retry == fresh_reference(
            lambda: tiny_scenario(seed=3),
            lambda o: o.apply_volume_shift(ug.ug_id, target),
            budget=4,
        )

    def test_budget_change_invalidates_memo(self):
        scenario = tiny_scenario(seed=3)
        orch = PainterOrchestrator(scenario, OrchestratorConfig(prefix_budget=4))
        try:
            orch.solve_warm()
            orch._budget = 3  # simulate an operator reconfiguration
            orch.solve_warm()
            assert orch.last_warm_stats.mode == "cold"
        finally:
            orch.close()

    def test_volume_shift_validates_inputs(self):
        orch = PainterOrchestrator(
            tiny_scenario(seed=3), OrchestratorConfig(prefix_budget=4)
        )
        try:
            with pytest.raises(ValueError):
                orch.apply_volume_shift(orch._scenario.user_groups[0].ug_id, -1.0)
            with pytest.raises(KeyError):
                orch.apply_volume_shift(10**9, 5.0)
        finally:
            orch.close()
