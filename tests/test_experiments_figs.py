"""Every figure experiment runs on a tiny world and keeps the paper's shape.

These are fast sanity versions of the benchmarks: each experiment gets a
small scenario, and the assertions check the *qualitative* claims — who
wins, which direction curves move — not absolute numbers.
"""

import math

import pytest

from repro.experiments.fig3 import run_fig3
from repro.experiments.fig6 import run_fig6a, run_fig6b, run_fig6c
from repro.experiments.fig7 import run_fig7
from repro.experiments.fig9 import run_fig9a, run_fig9b
from repro.experiments.fig10 import run_fig10
from repro.experiments.fig11 import run_fig11a, run_fig11b
from repro.experiments.fig12 import run_fig12
from repro.experiments.fig14 import run_fig14
from repro.experiments.fig15 import run_fig15a, run_fig15b


@pytest.fixture(scope="module")
def world():
    from repro.scenario import tiny_scenario

    return tiny_scenario(seed=3)


class TestFig3:
    def test_shape(self):
        result = run_fig3(n_flows=1200, seed=0)
        clouds = set(result.column("cloud"))
        assert clouds == {"cloud-a", "cloud-b", "cloud-c"}
        rows = {(r[0], r[1]): r[2] for r in result.rows}
        # Cloud A keeps most bytes past 5 minutes; others far less.
        assert rows[("cloud-a", 300.0)] > 0.6
        assert rows[("cloud-b", 300.0)] < 0.4
        # Curves decrease with offset.
        assert rows[("cloud-a", -60.0)] >= rows[("cloud-a", 3600.0)]


class TestFig6:
    def test_fig6a_painter_dominates(self, world):
        result = run_fig6a(scenario=world, painter_max_budget=5, learning_iterations=1)
        by_strategy = {}
        for row in result.rows:
            strategy, budget, _pct, benefit = row[0], row[1], row[2], row[3]
            by_strategy.setdefault(strategy, {})[budget] = benefit
        painter = by_strategy["painter"]
        opp = by_strategy["one_per_peering"]
        shared = sorted(set(painter) & set(opp))
        assert shared
        assert all(painter[b] >= opp[b] - 0.05 for b in shared)
        # Benefit fractions are valid.
        for benefit in result.column("benefit_frac"):
            assert -1e-9 <= benefit <= 1.0 + 1e-9

    def test_fig6b_improvement_grows_with_budget(self, world):
        result = run_fig6b(scenario=world, painter_max_budget=5, learning_iterations=2)
        painter = [
            (row[1], row[3]) for row in result.rows if row[0] == "painter"
        ]
        budgets = [b for b, _v in painter]
        values = [v for _b, v in painter]
        assert budgets == sorted(budgets)
        assert values[-1] >= values[0]

    def test_fig6c_learning_helps(self, world):
        result = run_fig6c(scenario=world, painter_max_budget=4, iterations=3)
        full_budget = max(result.column("budget_prefixes"))
        per_iter = {
            row[0]: row[2] for row in result.rows if row[1] == full_budget
        }
        # Exploratory iterations can dip on this tiny world; the best
        # measured iteration must stay close to (or beat) the first, and the
        # table must cover every iteration.
        assert set(per_iter) == {0, 1, 2}
        assert max(per_iter.values()) >= 0.9 * per_iter[0]


class TestFig7:
    def test_static_never_beats_dynamic(self, world):
        result = run_fig7(scenario=world, budgets=(2, 4), days=(0, 7, 14), learning_iterations=1)
        table = {}
        for budget, day, mode, benefit in result.rows:
            table[(budget, day, mode)] = benefit
        for (budget, day, mode), benefit in table.items():
            assert 0.0 <= benefit <= 1.0 + 1e-9
            if mode == "static":
                assert benefit <= table[(budget, day, "dynamic")] + 1e-9


class TestFig9:
    def test_granularity_table(self, world):
        result = run_fig9a(scenario=world, top_pops=3)
        mechanisms = set(result.column("mechanism"))
        assert mechanisms == {"bgp", "dns", "painter"}
        for row in result.rows:
            assert sum(row[2:]) == pytest.approx(1.0, abs=1e-6)

    def test_dns_loses_benefit(self, world):
        result = run_fig9b(scenario=world, painter_max_budget=4, learning_iterations=1)
        for fraction in result.column("dns_fraction_of_painter"):
            assert fraction <= 1.0 + 1e-9


class TestFig10:
    def test_notes_capture_timescales(self):
        result = run_fig10()
        notes = " ".join(result.notes)
        assert "PAINTER downtime" in notes
        assert "DNS failover" in notes
        actives = [row[1] for row in result.rows]
        assert "2.2.2.0/24" in actives and "3.3.3.0/24" in actives


class TestFig11:
    def test_exposure_positive(self, world):
        result = run_fig11a(scenario=world)
        rows = {row[0]: row[1:] for row in result.rows}
        # Median difference (index 2 = p50) positive for best paths.
        assert rows["best_paths_diff"][2] > 0
        assert rows["all_paths_diff"][2] >= rows["best_paths_diff"][2]

    def test_avoidance_ordering(self, world):
        result = run_fig11b(scenario=world)
        rows = {row[0]: row for row in result.rows}
        assert rows["painter"][4] >= rows["sdwan"][4] - 0.05


class TestFig12:
    def test_coverage_monotone(self, world):
        result = run_fig12(scenario=world, uncertainties_km=(100, 300, 600))
        coverage = result.column("coverage_frac")
        assert coverage == sorted(coverage)
        for value in coverage:
            assert 0.0 <= value <= 1.0


class TestFig14:
    def test_ranges_ordered(self, world):
        result = run_fig14(scenario=world, painter_max_budget=4)
        for row in result.rows:
            _strategy, _budget, lower, mean, estimated, upper = row
            assert lower <= mean <= upper + 1e-9
            assert lower <= estimated <= upper + 1e-9

    def test_one_per_peering_no_uncertainty(self, world):
        result = run_fig14(scenario=world, painter_max_budget=3)
        for row in result.rows:
            if row[0] == "one_per_peering":
                assert row[2] == pytest.approx(row[5], abs=1e-9)


class TestFig15:
    def test_scaling_runs(self):
        result = run_fig15a(scales=(0.3, 0.6), max_budget=6, seed=1)
        assert len(result.rows) == 2
        peerings = result.column("n_peerings")
        assert peerings[1] > peerings[0]

    def test_d_reuse_tradeoff(self, world):
        result = run_fig15b(scenario=world, d_reuse_sweep_km=(500, 3000), max_budget=5)
        reuse = result.column("reuse_factor")
        needed = result.column("prefixes_99pct")
        # Reuse always happens (that is the point of Algorithm 1)...
        assert all(r >= 1.0 for r in reuse)
        # ...but a larger D_reuse treats more co-advertised ingresses as
        # plausible destinations, which dilutes each prefix's expected
        # benefit and spreads the gains across more prefixes: reaching 99%
        # of the final benefit must not get *cheaper* as D_reuse grows.
        assert needed[0] <= needed[-1]


class TestChaos:
    @pytest.fixture(scope="class")
    def chaos(self):
        from repro.experiments.chaos import run_chaos

        return run_chaos(storms=3, duration_s=100.0, seed=0)

    def test_shape(self, chaos):
        assert chaos.experiment_id == "chaos"
        assert len(chaos.rows) == 3
        assert "painter_downtime_ms" in chaos.columns
        assert "dns_downtime_s" in chaos.columns

    def test_metrics_sane(self, chaos):
        by_col = dict(zip(chaos.columns, zip(*chaos.rows)))
        assert all(v >= 0.0 for v in by_col["painter_downtime_ms"])
        assert all(v >= 0.0 for v in by_col["anycast_downtime_s"])
        assert all(v >= 0.0 for v in by_col["dns_downtime_s"])
        # Across the storm set, RTT-timescale failover accumulates far less
        # downtime than TTL-bound DNS steering facing identical weather.
        painter_s = sum(by_col["painter_downtime_ms"]) / 1000.0
        assert painter_s < sum(by_col["dns_downtime_s"])

    def test_deterministic(self, chaos):
        from repro.experiments.chaos import run_chaos

        again = run_chaos(storms=3, duration_s=100.0, seed=0)
        assert again.rows == chaos.rows

    def test_render_mentions_damping(self, chaos):
        rendered = chaos.render()
        assert "route-flap-damped" in rendered
