"""Ground-truth routing oracle: ingress selection, anycast, determinism."""

import pytest

from repro.routing.ground_truth import GroundTruthRouting


class TestIngressSelection:
    def test_ingress_is_always_advertised_and_compliant(self, scenario):
        routing = scenario.routing
        catalog = scenario.catalog
        all_ids = sorted(p.peering_id for p in scenario.deployment.peerings)
        subsets = [frozenset(all_ids[:5]), frozenset(all_ids[5:15]), frozenset(all_ids)]
        for ug in scenario.user_groups[:25]:
            for advertised in subsets:
                ingress = routing.ingress_for(ug, advertised)
                if ingress is None:
                    continue
                assert ingress.peering_id in advertised
                assert catalog.is_compliant(ug, ingress)

    def test_empty_advertisement_unreachable(self, scenario):
        assert scenario.routing.ingress_for(scenario.user_groups[0], frozenset()) is None

    def test_deterministic(self, scenario):
        routing = scenario.routing
        advertised = frozenset(p.peering_id for p in scenario.deployment.peerings[:12])
        for ug in scenario.user_groups[:20]:
            assert routing.ingress_for(ug, advertised) == routing.ingress_for(
                ug, advertised
            )

    def test_single_peering_advertisement(self, scenario):
        """Advertising via one compliant peering lands the UG there."""
        routing = scenario.routing
        for ug in scenario.user_groups[:15]:
            pid = min(scenario.catalog.ingress_ids(ug))
            ingress = routing.ingress_for(ug, frozenset({pid}))
            assert ingress is not None
            assert ingress.peering_id == pid

    def test_non_compliant_only_advertisement_unreachable(self, scenario):
        routing = scenario.routing
        catalog = scenario.catalog
        for ug in scenario.user_groups:
            non_compliant = [
                p.peering_id
                for p in scenario.deployment.peerings
                if p.peering_id not in catalog.ingress_ids(ug)
            ]
            if not non_compliant:
                continue
            assert routing.ingress_for(ug, frozenset(non_compliant[:3])) is None
            return
        pytest.skip("every UG is compliant with every peering in this seed")


class TestAnycast:
    def test_every_ug_has_anycast_route(self, scenario):
        for ug in scenario.user_groups:
            assert scenario.routing.anycast_ingress(ug) is not None
            assert scenario.routing.anycast_latency_ms(ug) > 0

    def test_anycast_latency_matches_ingress(self, scenario):
        routing = scenario.routing
        for ug in scenario.user_groups[:20]:
            ingress = routing.anycast_ingress(ug)
            latency = routing.anycast_latency_ms(ug)
            assert latency == scenario.latency_model.latency_ms(ug, ingress)

    def test_default_as_path_ends_at_cloud(self, scenario):
        routing = scenario.routing
        for ug in scenario.user_groups[:20]:
            path = routing.default_as_path(ug)
            assert path is not None
            assert path[-1] == 1  # the cloud ASN

    def test_anycast_at_least_best_possible(self, scenario):
        """Anycast can never beat the best policy-compliant ingress."""
        for ug in scenario.user_groups:
            assert (
                scenario.anycast_latency_ms(ug)
                >= scenario.best_possible_latency_ms(ug) - 1e-9
            )


class TestExitPolicies:
    def test_some_cold_potato_inflation_exists(self, small_scenario):
        """Some UGs must be dragged to far exits — the PAINTER motivation."""
        routing = small_scenario.routing
        inflated = 0
        for ug in small_scenario.user_groups:
            anycast = small_scenario.anycast_latency_ms(ug)
            best = small_scenario.best_possible_latency_ms(ug)
            if anycast - best > 20.0:
                inflated += 1
        assert inflated >= len(small_scenario.user_groups) // 20

    def test_day_passes_through_to_latency(self, scenario):
        routing = scenario.routing
        ug = scenario.user_groups[0]
        advertised = scenario.routing.anycast_peering_ids
        base = routing.latency_for(ug, advertised, day=0)
        later = [routing.latency_for(ug, advertised, day=d) for d in range(1, 10)]
        assert any(value != base for value in later)
