"""Discrete-event engine: ordering, cancellation, bounds."""

import pytest

from repro.simulation.events import EventLoop


class TestScheduling:
    def test_events_run_in_time_order(self):
        loop = EventLoop()
        order = []
        loop.schedule_at(2.0, lambda lp: order.append("b"))
        loop.schedule_at(1.0, lambda lp: order.append("a"))
        loop.schedule_at(3.0, lambda lp: order.append("c"))
        loop.run_all()
        assert order == ["a", "b", "c"]

    def test_fifo_for_equal_times(self):
        loop = EventLoop()
        order = []
        for tag in ("first", "second", "third"):
            loop.schedule_at(1.0, lambda lp, t=tag: order.append(t))
        loop.run_all()
        assert order == ["first", "second", "third"]

    def test_clock_advances(self):
        loop = EventLoop()
        seen = []
        loop.schedule_at(5.0, lambda lp: seen.append(lp.now_s))
        loop.run_all()
        assert seen == [5.0]
        assert loop.now_s == 5.0

    def test_schedule_in_relative(self):
        loop = EventLoop()
        seen = []
        loop.schedule_at(2.0, lambda lp: lp.schedule_in(3.0, lambda l2: seen.append(l2.now_s)))
        loop.run_all()
        assert seen == [5.0]

    def test_scheduling_in_past_rejected(self):
        loop = EventLoop()
        loop.schedule_at(5.0, lambda lp: None)
        loop.run_all()
        with pytest.raises(ValueError):
            loop.schedule_at(1.0, lambda lp: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventLoop().schedule_in(-1.0, lambda lp: None)


class TestRunUntil:
    def test_stops_at_boundary(self):
        loop = EventLoop()
        ran = []
        loop.schedule_at(1.0, lambda lp: ran.append(1))
        loop.schedule_at(10.0, lambda lp: ran.append(10))
        loop.run_until(5.0)
        assert ran == [1]
        assert loop.now_s == 5.0
        assert loop.pending_events == 1
        loop.run_until(20.0)
        assert ran == [1, 10]

    def test_boundary_inclusive(self):
        loop = EventLoop()
        ran = []
        loop.schedule_at(5.0, lambda lp: ran.append(5))
        loop.run_until(5.0)
        assert ran == [5]


class TestCancel:
    def test_cancelled_event_skipped(self):
        loop = EventLoop()
        ran = []
        event = loop.schedule_at(1.0, lambda lp: ran.append("cancelled"))
        loop.schedule_at(2.0, lambda lp: ran.append("kept"))
        loop.cancel(event)
        loop.run_all()
        assert ran == ["kept"]
        assert loop.processed_events == 1


class TestSafety:
    def test_runaway_schedule_detected(self):
        loop = EventLoop()

        def reschedule(lp):
            lp.schedule_in(0.1, reschedule)

        loop.schedule_at(0.0, reschedule)
        with pytest.raises(RuntimeError):
            loop.run_all(max_events=100)


class TestEdgeCases:
    def test_cancel_already_fired_event_is_harmless(self):
        loop = EventLoop()
        ran = []
        event = loop.schedule_at(1.0, lambda lp: ran.append("fired"))
        loop.schedule_at(2.0, lambda lp: ran.append("later"))
        loop.run_until(1.5)
        assert ran == ["fired"]
        loop.cancel(event)  # event already popped: no effect on anything else
        loop.run_all()
        assert ran == ["fired", "later"]
        assert loop.processed_events == 2

    def test_schedule_at_exactly_now(self):
        loop = EventLoop()
        loop.schedule_at(5.0, lambda lp: None)
        loop.run_all()
        ran = []
        loop.schedule_at(5.0, lambda lp: ran.append(lp.now_s))  # == now_s
        loop.run_all()
        assert ran == [5.0]
        assert loop.now_s == 5.0

    def test_schedule_at_now_from_within_callback(self):
        loop = EventLoop()
        order = []

        def first(lp):
            order.append("first")
            lp.schedule_at(lp.now_s, lambda l2: order.append("second"))

        loop.schedule_at(1.0, first)
        loop.run_all()
        assert order == ["first", "second"]

    def test_callback_exception_does_not_corrupt_loop(self):
        loop = EventLoop()
        ran = []

        def explode(lp):
            raise RuntimeError("boom")

        loop.schedule_at(1.0, explode)
        loop.schedule_at(2.0, lambda lp: ran.append(lp.now_s))
        with pytest.raises(RuntimeError, match="boom"):
            loop.run_all()
        # The failing event is consumed; clock and heap stay consistent.
        assert loop.now_s == 1.0
        assert loop.pending_events == 1
        loop.run_all()
        assert ran == [2.0]
        assert loop.now_s == 2.0
