"""Extension modules: cost accounting, load balancing, multipath, regional anycast."""

import math

import pytest

from repro.core.advertisement import AdvertisementConfig
from repro.core.baselines import regional_anycast
from repro.core.cost import (
    ConfigurationCost,
    configuration_cost,
    cost_per_benefit_usd,
    prefixes_saved_vs_one_per_peering,
)
from repro.traffic_manager.load_balancing import (
    DestinationLoad,
    LoadAwareSelector,
    effective_latency_ms,
    greedy_spread,
)
from repro.traffic_manager.multipath import (
    MultipathConnection,
    Subflow,
    failover_comparison,
)


class TestCost:
    def test_basic_pricing(self):
        config = AdvertisementConfig.from_pairs([(0, 1), (0, 2), (1, 3)])
        cost = configuration_cost(config, price_per_prefix_usd=20_000)
        assert cost.prefixes == 3  # 2 unicast + anycast
        assert cost.announcements == 3
        assert cost.address_cost_usd == 60_000
        assert cost.fib_slots == 3 * 70_000

    def test_exclude_anycast(self):
        config = AdvertisementConfig.from_pairs([(0, 1)])
        cost = configuration_cost(config, include_anycast=False)
        assert cost.prefixes == 1

    def test_reuse_savings(self):
        config = AdvertisementConfig.from_pairs([(0, 1), (0, 2), (0, 3), (1, 4)])
        assert prefixes_saved_vs_one_per_peering(config) == 2

    def test_cost_per_benefit(self):
        config = AdvertisementConfig.from_pairs([(0, 1)])
        assert cost_per_benefit_usd(config, benefit_ms=40_000.0) == pytest.approx(1.0)
        assert cost_per_benefit_usd(config, benefit_ms=0.0) is None

    def test_validation(self):
        config = AdvertisementConfig.from_pairs([(0, 1)])
        with pytest.raises(ValueError):
            configuration_cost(config, price_per_prefix_usd=-1)
        with pytest.raises(ValueError):
            configuration_cost(config, dfz_routers=0)

    def test_hypergiant_fraction(self):
        config = AdvertisementConfig.from_pairs([(i, i) for i in range(49)])
        cost = configuration_cost(config)
        assert cost.fraction_of_hypergiant_footprint == pytest.approx(0.1)


class TestLoadBalancing:
    def test_effective_latency_shape(self):
        assert effective_latency_ms(10.0, 0.0) == 10.0
        assert effective_latency_ms(10.0, 0.5) == 20.0
        assert effective_latency_ms(10.0, 1.0) == math.inf
        assert effective_latency_ms(10.0, 0.9) > effective_latency_ms(10.0, 0.8)

    def test_destination_load_validation(self):
        with pytest.raises(ValueError):
            DestinationLoad(prefix="a", capacity=0.0)
        with pytest.raises(ValueError):
            DestinationLoad(prefix="a", capacity=1.0, load=-1.0)

    def test_flows_spill_to_second_path_under_load(self):
        selector = LoadAwareSelector()
        selector.add_destination("fast", capacity=10, base_rtt_ms=10.0)
        selector.add_destination("slow", capacity=100, base_rtt_ms=20.0)
        counts = greedy_spread(selector, n_flows=40)
        assert counts["fast"] >= 1
        assert counts["slow"] >= 1  # congestion pushed flows to the slow path
        assert selector.max_utilization() < 1.0

    def test_single_path_saturates_then_none(self):
        selector = LoadAwareSelector()
        selector.add_destination("only", capacity=3, base_rtt_ms=10.0)
        assert greedy_spread(selector, n_flows=10) == {"only": 3}
        assert selector.assign_flow() is None

    def test_release_frees_capacity(self):
        selector = LoadAwareSelector()
        selector.add_destination("only", capacity=1, base_rtt_ms=10.0)
        assert selector.assign_flow() == "only"
        assert selector.assign_flow() is None
        selector.release_flow("only")
        assert selector.assign_flow() == "only"

    def test_duplicate_destination_rejected(self):
        selector = LoadAwareSelector()
        selector.add_destination("a", capacity=1, base_rtt_ms=1.0)
        with pytest.raises(ValueError):
            selector.add_destination("a", capacity=1, base_rtt_ms=1.0)

    def test_unknown_destination_rejected(self):
        selector = LoadAwareSelector()
        with pytest.raises(KeyError):
            selector.release_flow("ghost")
        with pytest.raises(KeyError):
            selector.update_rtt("ghost", 5.0)

    def test_balanced_spread_across_equal_paths(self):
        selector = LoadAwareSelector()
        selector.add_destination("a", capacity=50, base_rtt_ms=10.0)
        selector.add_destination("b", capacity=50, base_rtt_ms=10.0)
        counts = greedy_spread(selector, n_flows=60)
        assert abs(counts["a"] - counts["b"]) <= 2


class TestMultipath:
    def _subflows(self):
        return [
            Subflow(prefix="p1", rtt_ms=20.0, capacity_mbps=50.0),
            Subflow(prefix="p2", rtt_ms=30.0, capacity_mbps=100.0),
            Subflow(prefix="p3", rtt_ms=80.0, capacity_mbps=40.0),
        ]

    def test_aggregate_capacity(self):
        connection = MultipathConnection(self._subflows())
        assert connection.aggregate_capacity_mbps() == 190.0
        assert connection.best_rtt_ms() == 20.0

    def test_lowest_rtt_first_scheduling(self):
        connection = MultipathConnection(self._subflows())
        allocation = connection.schedule(120.0)
        assert allocation == {"p1": 50.0, "p2": 70.0}

    def test_capacity_limited_delivery(self):
        connection = MultipathConnection(self._subflows())
        assert connection.delivered_fraction(500.0) == pytest.approx(190.0 / 500.0)
        assert connection.delivered_fraction(100.0) == 1.0

    def test_failover_shifts_instantly(self):
        connection = MultipathConnection(self._subflows())
        degraded = connection.fail_subflow("p1")
        allocation = degraded.schedule(120.0)
        assert "p1" not in allocation
        assert sum(allocation.values()) == 120.0

    def test_failover_comparison_beats_single_path(self):
        multipath_ms, single_ms = failover_comparison(
            self._subflows(), failed_prefix="p1", demand_mbps=50.0,
            single_path_detection_ms=26.0,
        )
        assert multipath_ms <= single_ms + 30.0  # same order; typically lower
        assert multipath_ms == 30.0  # next-lowest subflow RTT

    def test_all_paths_dead_is_infinite(self):
        subflows = [Subflow(prefix="p1", rtt_ms=20.0, capacity_mbps=10.0)]
        multipath_ms, single_ms = failover_comparison(
            subflows, failed_prefix="p1", demand_mbps=1.0, single_path_detection_ms=26.0
        )
        assert math.isinf(multipath_ms)

    def test_validation(self):
        with pytest.raises(ValueError):
            MultipathConnection([])
        with pytest.raises(ValueError):
            MultipathConnection(
                [Subflow("p", 10.0, 1.0), Subflow("p", 20.0, 1.0)]
            )
        connection = MultipathConnection(self._subflows())
        with pytest.raises(KeyError):
            connection.fail_subflow("ghost")
        with pytest.raises(ValueError):
            connection.schedule(-1.0)


class TestRegionalAnycast:
    def test_one_region_per_prefix(self, scenario):
        config = regional_anycast(scenario, budget=4)
        deployment = scenario.deployment
        for prefix in config.prefixes:
            regions = {
                deployment.peering(pid).pop.metro.region
                for pid in config.peerings_for(prefix)
            }
            assert len(regions) == 1

    def test_covers_all_region_peerings(self, scenario):
        config = regional_anycast(scenario, budget=10)
        deployment = scenario.deployment
        for prefix in config.prefixes:
            peerings = config.peerings_for(prefix)
            region = deployment.peering(next(iter(peerings))).pop.metro.region
            expected = {
                p.peering_id for p in deployment.peerings if p.pop.metro.region == region
            }
            assert peerings == expected

    def test_budget_validation(self, scenario):
        import pytest

        with pytest.raises(ValueError):
            regional_anycast(scenario, budget=0)
