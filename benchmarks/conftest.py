"""Shared benchmark fixtures.

Each benchmark regenerates one of the paper's figures/tables on a
moderately-sized scenario (large enough to show the paper's shape, small
enough to run in CI) and records the headline series in
``benchmark.extra_info`` so the saved benchmark JSON doubles as an
experiment artifact.
"""

from __future__ import annotations

import pytest

from repro.scenario import Scenario, build_scenario
from repro.topology.builder import TopologyConfig
from repro.usergroups.generation import UserGroupConfig


def pytest_collection_modifyitems(items) -> None:
    """Everything under benchmarks/ belongs to the ``bench`` tier.

    Tier-1 deselects it via the addopts marker filter; CI's benchmark job
    opts back in with ``-m bench``.  Soak benchmarks additionally carry
    the ``soak`` marker so the soak-smoke CI job can select just the
    throughput gate with ``-m 'bench and soak'``.
    """
    for item in items:
        item.add_marker(pytest.mark.bench)
        if "soak" in item.nodeid.rpartition("/")[2]:
            item.add_marker(pytest.mark.soak)


@pytest.fixture(scope="session")
def bench_scenario() -> Scenario:
    """Prototype-like world sized for benchmarking."""
    return build_scenario(
        name="bench-prototype",
        topology_config=TopologyConfig(
            seed=0,
            n_pops=15,
            n_tier1=4,
            n_transit=8,
            n_regional=36,
            n_stub=180,
        ),
        ug_config=UserGroupConfig(seed=1, n_ugs=200),
    )


@pytest.fixture(scope="session")
def bench_azure_scenario() -> Scenario:
    """Azure-flavored world (more PoPs/peerings) sized for benchmarking."""
    return build_scenario(
        name="bench-azure",
        topology_config=TopologyConfig(
            seed=0,
            n_pops=25,
            n_tier1=5,
            n_transit=14,
            n_regional=70,
            n_stub=320,
            regional_peering_prob=0.7,
        ),
        ug_config=UserGroupConfig(seed=1, n_ugs=300),
    )
