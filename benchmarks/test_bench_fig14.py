"""Bench: Fig. 14 — full benefit ranges per strategy over budget."""

from repro.experiments.fig14 import run_fig14


def test_bench_fig14(benchmark, bench_scenario):
    result = benchmark.pedantic(
        lambda: run_fig14(scenario=bench_scenario, painter_max_budget=10),
        rounds=1,
        iterations=1,
    )
    by_strategy = {}
    for strategy, budget, lower, mean, estimated, upper in result.rows:
        by_strategy.setdefault(strategy, []).append((budget, lower, mean, estimated, upper))

    # One-per-Peering has zero uncertainty (one ingress per prefix).
    for _b, lower, _m, _e, upper in by_strategy["one_per_peering"]:
        assert abs(upper - lower) < 1e-9

    # One-per-PoP has wide ranges (many possibly-poor ingresses per prefix);
    # PAINTER's upper-estimated gap is small.
    def avg_gap(strategy, lo_idx, hi_idx):
        rows = by_strategy[strategy]
        return sum(r[hi_idx] - r[lo_idx] for r in rows) / len(rows)

    painter_gap = avg_gap("painter", 3, 4)  # upper - estimated
    opop_gap = avg_gap("one_per_pop", 3, 4)
    assert painter_gap < opop_gap
    benchmark.extra_info["painter_upper_minus_estimated"] = round(painter_gap, 4)
    benchmark.extra_info["one_per_pop_upper_minus_estimated"] = round(opop_gap, 4)
    print()
    print(result.render())
