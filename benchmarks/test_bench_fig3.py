"""Bench: Fig. 3 — traffic sent after DNS record expiration."""

from repro.experiments.fig3 import run_fig3


def test_bench_fig3(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig3(n_flows=4000, seed=0), rounds=1, iterations=1
    )
    rows = {(r[0], r[1]): r[2] for r in result.rows}
    # Paper shape: ~80% of Cloud A bytes sent >= 5 min after expiry; the
    # other clouds ~20% at >= 1 min.
    assert rows[("cloud-a", 300.0)] > 0.6
    assert rows[("cloud-b", 60.0)] < 0.5
    assert rows[("cloud-c", 60.0)] < 0.5
    benchmark.extra_info["cloud_a_stale_5min"] = round(rows[("cloud-a", 300.0)], 3)
    benchmark.extra_info["cloud_b_stale_1min"] = round(rows[("cloud-b", 60.0)], 3)
    benchmark.extra_info["cloud_c_stale_1min"] = round(rows[("cloud-c", 60.0)], 3)
    print()
    print(result.render())
