"""Warm-start reconvergence gate on the azure preset.

The controller's headline number: after a single-UG volume delta, a
warm-started re-solve must reconverge in at most 25% of the cold-solve
wall time — while remaining bit-identical to a from-scratch solve of the
mutated world.  Both halves are asserted here, so a regression in either
the memoized-summation patch path or its exactness fails the gate.
"""

from __future__ import annotations

import time

from repro.core.orchestrator import OrchestratorConfig, PainterOrchestrator
from repro.scenario import azure_scenario

try:  # LP optimality envelope (needs scipy; see repro.optimality.gates)
    import scipy  # noqa: F401

    from repro.optimality import assert_lp_sound

    HAVE_LP_GATE = True
except ImportError:  # pragma: no cover - scipy installed in CI bench jobs
    HAVE_LP_GATE = False

#: ISSUE acceptance criterion: warm single-delta reconvergence wall time
#: as a fraction of the cold solve.  Measured 0.14-0.22 at merge time.
MAX_WARM_RATIO = 0.25

BUDGET = 10


def config_pairs(config):
    return sorted(
        [prefix, pid]
        for prefix in config.prefixes
        for pid in config.peerings_for(prefix)
    )


def one_trial():
    """Cold solve, one-UG shift, warm re-solve; returns the timings."""
    scenario = azure_scenario(seed=0)
    orch = PainterOrchestrator(scenario, OrchestratorConfig(prefix_budget=BUDGET))
    try:
        start = time.perf_counter()
        orch.solve_warm()
        cold_s = time.perf_counter() - start

        ug = scenario.user_groups[len(scenario.user_groups) // 2]
        target = ug.volume * 1.5
        orch.apply_volume_shift(ug.ug_id, target)

        start = time.perf_counter()
        warm_config = orch.solve_warm()
        warm_s = time.perf_counter() - start
        stats = orch.last_warm_stats
    finally:
        orch.close()
    return cold_s, warm_s, warm_config, ug.ug_id, target, stats


def test_bench_warm_restart_ratio(benchmark):
    trials = []

    def run():
        trials.append(one_trial())
        return trials[-1]

    # Two trials; the gate takes the better ratio so a one-off scheduler
    # hiccup in either timed region cannot fail an otherwise-healthy run.
    benchmark.pedantic(run, rounds=2, iterations=1)
    cold_s, warm_s, warm_config, ug_id, target, stats = min(
        trials, key=lambda t: t[1] / t[0]
    )

    # Exactness: the warm result must equal a cold solve of the same world.
    reference = PainterOrchestrator(
        azure_scenario(seed=0), OrchestratorConfig(prefix_budget=BUDGET)
    )
    reference.apply_volume_shift(ug_id, target)
    try:
        assert config_pairs(warm_config) == config_pairs(reference.solve_warm())
        # Optimality envelope on the warm result against the same world's
        # evaluator: warm-start replay may not inflate benefit past the LP
        # relaxation at the config's distinct-peering budget.
        if HAVE_LP_GATE:
            envelope = assert_lp_sound(reference.evaluator, warm_config)
            benchmark.extra_info["benefit"] = round(envelope.benefit, 4)
            benchmark.extra_info["lp_bound"] = round(envelope.bound, 4)
            benchmark.extra_info["optimality_utilization"] = round(
                envelope.utilization, 4
            )
        else:
            benchmark.extra_info["lp_bound"] = "scipy unavailable"
    finally:
        reference.close()

    # The patch path (not wholesale fresh evaluation) carried the re-solve.
    assert stats.mode == "warm"
    assert stats.patched_evals > 0
    assert stats.reused_evals > 0

    ratio = warm_s / cold_s
    benchmark.extra_info["cold_s"] = round(cold_s, 3)
    benchmark.extra_info["warm_s"] = round(warm_s, 3)
    benchmark.extra_info["ratio"] = round(ratio, 3)
    benchmark.extra_info["reused_evals"] = stats.reused_evals
    benchmark.extra_info["patched_evals"] = stats.patched_evals
    benchmark.extra_info["fresh_evals"] = stats.fresh_evals
    assert ratio <= MAX_WARM_RATIO, (
        f"warm re-solve took {warm_s:.2f}s vs cold {cold_s:.2f}s "
        f"(ratio {ratio:.3f} > {MAX_WARM_RATIO})"
    )
