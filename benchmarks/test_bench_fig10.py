"""Bench: Fig. 10 — failover at RTT timescales vs anycast vs DNS."""

from repro.experiments.fig10 import failover_summary, run_fig10


def test_bench_fig10(benchmark):
    outcome = benchmark.pedantic(failover_summary, rounds=1, iterations=1)
    # The paper's timescale separation: tens of ms / ~1 s / ~60 s.
    assert outcome.painter_downtime_ms < 100.0
    assert 0.3 <= outcome.anycast_loss_s <= 3.0
    assert 5.0 <= outcome.anycast_reconvergence_s <= 30.0
    assert outcome.dns_downtime_s == 60.0
    benchmark.extra_info["painter_downtime_ms"] = round(outcome.painter_downtime_ms, 1)
    benchmark.extra_info["anycast_loss_s"] = round(outcome.anycast_loss_s, 2)
    benchmark.extra_info["anycast_reconvergence_s"] = round(
        outcome.anycast_reconvergence_s, 1
    )
    benchmark.extra_info["dns_downtime_s"] = outcome.dns_downtime_s
    print()
    print(run_fig10().render())
