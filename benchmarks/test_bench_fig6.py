"""Bench: Fig. 6 — benefit vs prefix budget against baselines, plus learning."""

from repro.experiments.fig6 import run_fig6a, run_fig6b, run_fig6c


def _series(result, strategy, value_col=3):
    return {
        row[1]: row[value_col] for row in result.rows if row[0] == strategy
    }


def test_bench_fig6a(benchmark, bench_azure_scenario):
    result = benchmark.pedantic(
        lambda: run_fig6a(
            scenario=bench_azure_scenario, painter_max_budget=15, learning_iterations=2
        ),
        rounds=1,
        iterations=1,
    )
    painter = _series(result, "painter")
    opp = _series(result, "one_per_peering")
    # PAINTER reaches 75% of possible benefit with at most 1/3 the prefixes
    # One-per-Peering needs (paper: "saves 3x the number of prefixes").
    painter_75 = min((b for b, v in painter.items() if v >= 0.75), default=None)
    opp_75 = min((b for b, v in opp.items() if v >= 0.75), default=None)
    assert painter_75 is not None
    assert opp_75 is None or painter_75 * 3 <= opp_75
    # PAINTER dominates every baseline at shared budgets.  (At one or two
    # prefixes the greedy optimizes Eq. 2's uniform expectation while the
    # plot's "estimated" metric weights by inflation probability, so tiny
    # budgets can disagree; the paper's dominance claim concerns the curve.)
    for strategy in ("one_per_pop", "one_per_pop_w_reuse", "regional_transit"):
        other = _series(result, strategy)
        for budget in set(painter) & set(other):
            if budget >= 3:
                assert painter[budget] >= other[budget] - 0.05, (strategy, budget)
    benchmark.extra_info["painter_prefixes_for_75pct"] = painter_75
    benchmark.extra_info["one_per_peering_prefixes_for_75pct"] = opp_75
    print()
    print(result.render())


def test_bench_fig6b(benchmark, bench_scenario):
    result = benchmark.pedantic(
        lambda: run_fig6b(
            scenario=bench_scenario, painter_max_budget=12, learning_iterations=3
        ),
        rounds=1,
        iterations=1,
    )
    painter = _series(result, "painter")
    opp = _series(result, "one_per_peering")
    best_painter = max(painter.values())
    # 90% of PAINTER's achieved improvement requires ~10x the prefixes under
    # One-per-Peering (paper: "roughly 10% as many prefixes").
    painter_90 = min(b for b, v in painter.items() if v >= 0.9 * best_painter)
    opp_90 = min(
        (b for b, v in opp.items() if v >= 0.9 * best_painter), default=None
    )
    assert opp_90 is None or opp_90 >= 2 * painter_90
    benchmark.extra_info["painter_avg_improvement_ms"] = round(best_painter, 1)
    benchmark.extra_info["painter_prefixes_for_90pct"] = painter_90
    benchmark.extra_info["one_per_peering_prefixes_for_90pct"] = opp_90
    print()
    print(result.render())


def test_bench_fig6c(benchmark, bench_scenario):
    result = benchmark.pedantic(
        lambda: run_fig6c(scenario=bench_scenario, painter_max_budget=10, iterations=4),
        rounds=1,
        iterations=1,
    )
    full_budget = max(result.column("budget_prefixes"))
    per_iter = {row[0]: row[2] for row in result.rows if row[1] == full_budget}
    uncertainties = {
        row[0]: row[3]
        for row in result.rows
        if row[1] == full_budget and isinstance(row[3], float)
    }
    # Learning improves realized benefit and narrows uncertainty.
    assert max(per_iter[i] for i in per_iter if i > 0) >= per_iter[0] - 1e-9
    assert uncertainties[max(uncertainties)] <= uncertainties[0] + 1e-9
    benchmark.extra_info["improvement_by_iteration_ms"] = {
        k: round(v, 1) for k, v in per_iter.items()
    }
    benchmark.extra_info["uncertainty_by_iteration"] = {
        k: round(v, 3) for k, v in uncertainties.items()
    }
    print()
    print(result.render())
