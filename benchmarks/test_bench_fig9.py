"""Bench: Fig. 9 — steering granularity and the cost of DNS steering."""

from repro.experiments.fig9 import run_fig9a, run_fig9b


def test_bench_fig9a(benchmark, bench_scenario):
    result = benchmark.pedantic(
        lambda: run_fig9a(scenario=bench_scenario, top_pops=10), rounds=1, iterations=1
    )
    all_rows = {row[1]: row[2:] for row in result.rows if row[0] == "all"}
    # PAINTER controls everything at the finest granularity; BGP is coarsest.
    assert all_rows["painter"][0] + all_rows["painter"][1] > 0.95
    bgp_coarse = all_rows["bgp"][-1] + all_rows["bgp"][-2]
    painter_coarse = all_rows["painter"][-1] + all_rows["painter"][-2]
    assert bgp_coarse > painter_coarse
    benchmark.extra_info["painter_finest_share"] = round(
        all_rows["painter"][0] + all_rows["painter"][1], 3
    )
    benchmark.extra_info["bgp_coarse_share"] = round(bgp_coarse, 3)
    print()
    print(result.render())


def test_bench_fig9b(benchmark, bench_scenario):
    result = benchmark.pedantic(
        lambda: run_fig9b(
            scenario=bench_scenario, painter_max_budget=12, learning_iterations=2
        ),
        rounds=1,
        iterations=1,
    )
    fractions = result.column("dns_fraction_of_painter")
    # DNS steering sacrifices a large share of the benefit (paper: ~half).
    assert min(fractions) < 0.9
    assert all(f <= 1.0 + 1e-9 for f in fractions)
    benchmark.extra_info["dns_fraction_range"] = (
        round(min(fractions), 3),
        round(max(fractions), 3),
    )
    print()
    print(result.render())
