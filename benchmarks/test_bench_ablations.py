"""Ablations of PAINTER's design choices (DESIGN.md's ablation list).

* **prefix reuse** — Algorithm 1 with reuse disabled needs far more prefixes
  for the same benefit;
* **learning** — iteration 1 vs the converged routing model;
* **improvement weighting** — the inflation-probability "estimated" metric
  vs the unweighted mean over candidates (Fig. 14's Mean line).
"""

from repro.core.benefit import realized_benefit
from repro.core.orchestrator import OrchestratorConfig, PainterOrchestrator


def test_bench_ablation_prefix_reuse(benchmark, bench_scenario):
    budget = 8

    def run():
        # Learning matters here: unlearned reuse can land UGs on the wrong
        # co-advertised ingress (exactly the incorrect assumptions §3.1
        # describes); after a few iterations the model knows where reuse is
        # safe.  Both arms get the same learning budget.
        with_orch = PainterOrchestrator(
            bench_scenario, OrchestratorConfig(prefix_budget=budget, allow_reuse=True)
        )
        with_orch.learn(iterations=3)
        without_orch = PainterOrchestrator(
            bench_scenario, OrchestratorConfig(prefix_budget=budget, allow_reuse=False)
        )
        without_orch.learn(iterations=3)
        return with_orch.solve(), without_orch.solve()

    with_reuse, without_reuse = benchmark.pedantic(run, rounds=1, iterations=1)
    assert with_reuse.reuse_factor() > 1.0
    assert without_reuse.reuse_factor() == 1.0
    benefit_with = realized_benefit(bench_scenario, with_reuse)
    benefit_without = realized_benefit(bench_scenario, without_reuse)
    # At a fixed budget, learned reuse covers more peerings per prefix and
    # must hold its own against dedicating a prefix per peering.
    assert benefit_with >= 0.9 * benefit_without
    benchmark.extra_info["pairs_with_reuse"] = with_reuse.pair_count
    benchmark.extra_info["pairs_without_reuse"] = without_reuse.pair_count
    benchmark.extra_info["benefit_ratio"] = round(
        benefit_with / max(benefit_without, 1e-9), 3
    )


def test_bench_ablation_learning(benchmark, bench_scenario):
    def run():
        orchestrator = PainterOrchestrator(bench_scenario, OrchestratorConfig(prefix_budget=8))
        return orchestrator.learn(iterations=4)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    first = result.realized_benefits[0]
    best_later = max(result.realized_benefits[1:])
    assert best_later >= first - 1e-9
    assert result.uncertainties[-1] <= result.uncertainties[0] + 1e-9
    benchmark.extra_info["benefit_by_iteration"] = [
        round(b, 2) for b in result.realized_benefits
    ]
    benchmark.extra_info["uncertainty_by_iteration"] = [
        round(u, 3) for u in result.uncertainties
    ]


def test_bench_ablation_estimated_vs_mean(benchmark, bench_scenario):
    """The inflation weighting matters: for configs that expose possibly-poor
    ingresses, the weighted estimate sits well above the pessimistic mean."""

    def run():
        from repro.core.baselines import one_per_pop

        orchestrator = PainterOrchestrator(bench_scenario, OrchestratorConfig(prefix_budget=8))
        config = orchestrator.solve()
        painter_eval = orchestrator.evaluator.evaluate(config)
        pop_eval = orchestrator.evaluator.evaluate(
            one_per_pop(bench_scenario, 8)
        )
        return painter_eval, pop_eval

    painter_eval, pop_eval = benchmark.pedantic(run, rounds=1, iterations=1)
    # One-per-PoP's wide candidate sets create a big estimated-vs-mean gap;
    # PAINTER's targeted advertisements keep the two close.
    painter_gap = painter_eval.estimated - painter_eval.mean
    pop_gap = pop_eval.estimated - pop_eval.mean
    assert pop_gap >= 0
    benchmark.extra_info["painter_estimated_minus_mean"] = round(painter_gap, 3)
    benchmark.extra_info["one_per_pop_estimated_minus_mean"] = round(pop_gap, 3)
