"""Bench: Fig. 11 — path exposure and AS avoidance vs SD-WAN."""

from repro.experiments.fig11 import run_fig11a, run_fig11b


def test_bench_fig11a(benchmark, bench_scenario):
    result = benchmark.pedantic(
        lambda: run_fig11a(scenario=bench_scenario), rounds=1, iterations=1
    )
    rows = {row[0]: row[1:] for row in result.rows}
    median_best_diff = rows["best_paths_diff"][2]
    median_sdwan = rows["sdwan_paths"][2]
    # Paper: PAINTER exposes ~23 more paths than SD-WAN for most UGs, and
    # SD-WAN typically offers 2-3 paths.
    assert median_best_diff >= 10
    assert 1 <= median_sdwan <= 4
    assert rows["all_paths_diff"][2] >= median_best_diff
    benchmark.extra_info["median_extra_paths"] = median_best_diff
    benchmark.extra_info["median_sdwan_paths"] = median_sdwan
    print()
    print(result.render())


def test_bench_fig11b(benchmark, bench_scenario):
    result = benchmark.pedantic(
        lambda: run_fig11b(scenario=bench_scenario), rounds=1, iterations=1
    )
    rows = {row[0]: row for row in result.rows}
    painter_full = rows["painter"][4]
    sdwan_full = rows["sdwan"][4]
    # Paper: 90.7% vs 69.5% of UGs can avoid every default-path AS.
    assert painter_full > sdwan_full
    assert painter_full > 0.8
    benchmark.extra_info["painter_fully_avoidable"] = round(painter_full, 3)
    benchmark.extra_info["sdwan_fully_avoidable"] = round(sdwan_full, 3)
    print()
    print(result.render())
