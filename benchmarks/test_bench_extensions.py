"""Bench: Fig. 8 and the extension experiments."""

from repro.experiments.extensions import (
    run_ext_congestion,
    run_ext_egress,
    run_ext_failover_sweep,
    run_ext_ipv6,
    run_ext_multipath,
)
from repro.experiments.fig8 import run_fig8


def test_bench_fig8(benchmark, bench_scenario):
    result = benchmark.pedantic(
        lambda: run_fig8(scenario=bench_scenario), rounds=1, iterations=1
    )
    rows = {row[0]: row for row in result.rows}
    assert rows["painter"][3] > rows["sdwan"][3]  # more paths
    assert rows["painter"][4] < rows["dns"][4]  # faster failover
    benchmark.extra_info["painter_paths_median"] = rows["painter"][3]
    benchmark.extra_info["painter_failover_s"] = rows["painter"][4]
    print()
    print(result.render())


def test_bench_ext_congestion(benchmark, bench_scenario):
    result = benchmark.pedantic(
        lambda: run_ext_congestion(scenario=bench_scenario), rounds=1, iterations=1
    )
    final = result.rows[-1]
    assert final[4] == 1.0  # spread still delivers at the highest demand
    assert final[2] < 1.0  # single path long saturated
    benchmark.extra_info["single_delivered_at_peak"] = final[2]
    print()
    print(result.render())


def test_bench_ext_multipath(benchmark, bench_scenario):
    result = benchmark.pedantic(
        lambda: run_ext_multipath(scenario=bench_scenario), rounds=1, iterations=1
    )
    assert all(row[3] >= 0.99 for row in result.rows)
    print()
    print(result.render())


def test_bench_ext_ipv6(benchmark, bench_scenario):
    result = benchmark.pedantic(
        lambda: run_ext_ipv6(scenario=bench_scenario), rounds=1, iterations=1
    )
    exposable = result.column("exposable_path_frac")
    assert exposable[0] < 0.85  # realistic v6 peering loses paths
    benchmark.extra_info["exposable_at_realistic_v6"] = round(exposable[0], 3)
    print()
    print(result.render())


def test_bench_ext_egress(benchmark, bench_scenario):
    result = benchmark.pedantic(
        lambda: run_ext_egress(scenario=bench_scenario), rounds=1, iterations=1
    )
    gains = {row[0]: row[2] for row in result.rows}
    assert gains["both"] >= max(gains["painter_only"], gains["egress_only"])
    benchmark.extra_info["combined_gain_ms"] = round(gains["both"], 2)
    print()
    print(result.render())


def test_bench_ext_failover_sweep(benchmark):
    result = benchmark.pedantic(run_ext_failover_sweep, rounds=1, iterations=1)
    painter = result.column("painter_downtime_ms")
    assert painter == sorted(painter)  # RTT-proportional
    print()
    print(result.render())
