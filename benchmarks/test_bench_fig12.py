"""Bench: Fig. 12 — geolocation uncertainty vs coverage and accuracy."""

from repro.experiments.fig12 import run_fig12


def test_bench_fig12(benchmark, bench_scenario):
    result = benchmark.pedantic(
        lambda: run_fig12(
            scenario=bench_scenario,
            uncertainties_km=(100, 200, 300, 400, 450, 500, 600, 700),
        ),
        rounds=1,
        iterations=1,
    )
    coverage = dict(zip(result.column("uncertainty_km"), result.column("coverage_frac")))
    errors = dict(
        zip(result.column("uncertainty_km"), result.column("median_abs_error_ms"))
    )
    # Coverage grows with allowed uncertainty; ~80% at the paper's 450 km.
    values = [coverage[gp] for gp in sorted(coverage)]
    assert values == sorted(values)
    assert coverage[450] > 0.6
    # Error grows with uncertainty and stays small (paper: ~2 ms median).
    assert errors[700] >= errors[100]
    assert errors[450] < 5.0
    benchmark.extra_info["coverage_at_450km"] = round(coverage[450], 3)
    benchmark.extra_info["median_error_at_450km_ms"] = round(errors[450], 2)
    print()
    print(result.render())
