"""Bench: Fig. 15 — deployment-size scaling and the D_reuse tradeoff."""

from repro.experiments.fig15 import run_fig15a, run_fig15b


def test_bench_fig15a(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig15a(scales=(0.4, 0.7, 1.0), max_budget=20, seed=0),
        rounds=1,
        iterations=1,
    )
    peerings = result.column("n_peerings")
    p90 = result.column("prefixes_90pct")
    # Bigger deployments need at least as many prefixes (paper: linear-ish).
    assert peerings == sorted(peerings)
    assert all(n != -1 for n in p90)
    assert p90[-1] >= p90[0]
    benchmark.extra_info["prefixes_90pct_by_scale"] = dict(
        zip(result.column("scale"), p90)
    )
    print()
    print(result.render())


def test_bench_fig15b(benchmark, bench_scenario):
    result = benchmark.pedantic(
        lambda: run_fig15b(
            scenario=bench_scenario,
            d_reuse_sweep_km=(500, 1000, 1500, 2000, 2500, 3000),
            max_budget=15,
        ),
        rounds=1,
        iterations=1,
    )
    d_values = result.column("d_reuse_km")
    uncertainty = result.column("uncertainty_frac")
    reuse = result.column("reuse_factor")
    # Larger D_reuse: less reuse, less uncertainty (the paper's tradeoff).
    assert reuse[-1] < reuse[0]
    assert uncertainty[-1] <= uncertainty[0]
    benchmark.extra_info["uncertainty_by_d_reuse"] = {
        d: round(u, 4) for d, u in zip(d_values, uncertainty)
    }
    benchmark.extra_info["reuse_by_d_reuse"] = {
        d: round(r, 2) for d, r in zip(d_values, reuse)
    }
    print()
    print(result.render())
