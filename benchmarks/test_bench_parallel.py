"""Wall-clock gate for the sharded parallel solve (``repro.parallel``).

Runs the azure-preset solve serially and with a four-worker shard pool and
gates on a >= 2x speedup — with the non-negotiable precondition that the
two configurations are bit-identical (the parallel path is only allowed to
be *fast*, never *different*).  Timings, speedup, and the pool's IPC
counters land in ``benchmark.extra_info`` so the saved benchmark JSON
doubles as the experiment artifact CI uploads.

Skipped below four CPU cores: sharding can't beat serial on hardware that
time-slices the shards over one core.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.core.orchestrator import OrchestratorConfig, PainterOrchestrator
from repro.perf import PERF
from repro.scenario import azure_scenario
from repro.telemetry import telemetry_session

try:  # LP optimality envelope (needs scipy; see repro.optimality.gates)
    import scipy  # noqa: F401

    from repro.optimality import assert_lp_sound

    HAVE_LP_GATE = True
except ImportError:  # pragma: no cover - scipy installed in CI bench jobs
    HAVE_LP_GATE = False

WORKERS = 4

#: Minimum acceptable wall-clock ratio (serial / parallel) at 4 workers.
MIN_SPEEDUP = 2.0

GOLDEN_PATH = (
    Path(__file__).parent.parent / "tests" / "data" / "golden_solve_configs.json"
)


def _pairs(config):
    return sorted(
        [prefix, pid]
        for prefix in config.prefixes
        for pid in config.peerings_for(prefix)
    )


@pytest.mark.skipif(
    (os.cpu_count() or 1) < WORKERS,
    reason=f"parallel speedup gate needs >= {WORKERS} CPU cores",
)
def test_bench_parallel_solve_azure(benchmark):
    golden = json.loads(GOLDEN_PATH.read_text())["azure_seed0"]
    scenario = azure_scenario(seed=0)
    budget = golden["budget"]

    # Serial reference, timed outside the benchmark fixture: the gate is a
    # ratio of two runs in the same process on the same warm scenario.
    serial_orch = PainterOrchestrator(
        scenario, OrchestratorConfig(prefix_budget=budget)
    )
    start = time.perf_counter()
    serial_config = serial_orch.solve()
    serial_s = time.perf_counter() - start

    journals = []

    def run():
        PERF.reset()
        orchestrator = PainterOrchestrator(
            scenario, OrchestratorConfig(prefix_budget=budget, workers=WORKERS)
        )
        try:
            # Telemetry live during the timed region, as in the serial
            # bench: the gate also bounds tracing overhead.
            with telemetry_session("bench-parallel", include_timings=True) as j:
                begin = time.perf_counter()
                config = orchestrator.solve()
                elapsed = time.perf_counter() - begin
        finally:
            orchestrator.close()
        journals.append(j)
        return config, elapsed

    config, parallel_s = benchmark.pedantic(run, rounds=1, iterations=1)

    # Correctness before speed: bit-identical to both golden and serial.
    pairs = _pairs(config)
    assert pairs == golden["pairs"]
    assert pairs == _pairs(serial_config)

    # The pool must actually have run (no silent serial fallback).
    assert PERF.counter("parallel.solve_calls").value == 1
    assert PERF.counter("parallel.fallbacks").value == 0

    speedup = serial_s / parallel_s
    assert speedup >= MIN_SPEEDUP, (
        f"parallel solve ({WORKERS} workers) took {parallel_s:.2f}s vs "
        f"{serial_s:.2f}s serial — {speedup:.2f}x, need >= {MIN_SPEEDUP}x"
    )

    benchmark.extra_info["serial_s"] = round(serial_s, 3)
    benchmark.extra_info["parallel_s"] = round(parallel_s, 3)
    benchmark.extra_info["workers"] = WORKERS
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["refresh_roundtrips"] = PERF.counter(
        "parallel.refresh_roundtrips"
    ).value
    benchmark.extra_info["speculative_hits"] = PERF.counter(
        "parallel.speculative_hits"
    ).value
    benchmark.extra_info["pairs"] = len(pairs)

    # Optimality envelope on the (bit-identical) parallel result: sharding
    # may only be fast, never push benefit past the LP relaxation.
    if HAVE_LP_GATE:
        envelope = assert_lp_sound(serial_orch.evaluator, config)
        benchmark.extra_info["benefit"] = round(envelope.benefit, 4)
        benchmark.extra_info["lp_bound"] = round(envelope.bound, 4)
        benchmark.extra_info["optimality_utilization"] = round(
            envelope.utilization, 4
        )
    else:
        benchmark.extra_info["lp_bound"] = "scipy unavailable"

    # Journal parity with the serial path: one prefix_scan span per prefix.
    journal = journals[-1]
    scans = [
        s for s in journal.spans() if s["name"] == "orchestrator.prefix_scan"
    ]
    assert len(scans) >= len(config.prefixes)
    benchmark.extra_info["journal_records"] = len(journal)
