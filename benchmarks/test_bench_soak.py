"""Throughput gate for the soak harness on the azure preset.

Pins the soak acceptance claim: a short simulated day on the azure-preset
world — diurnal load, a flash crowd, a rolling regional storm, online warm
re-solves, failover remaps, per-UG SLO accounting — steers at least 100k
flows/s through the vector data plane and closes flow accounting with
zero errors.  The rate measures ``forward()`` wall time only (solver time
is gated elsewhere); the accounting gate covers the whole composed run.

Carries the ``bench`` and ``soak`` markers (via benchmarks/conftest.py),
so CI's soak-smoke job selects exactly this gate with
``-m 'bench and soak'``.
"""

from __future__ import annotations

from repro.soak import SoakConfig, run_soak

#: The ISSUE's acceptance floor for data-plane steering throughput.
MIN_FLOWS_PER_S = 100_000.0

WINDOWS = 6
ARRIVALS_PER_WINDOW = 120_000


def test_bench_soak_azure(benchmark):
    cfg = SoakConfig(
        preset="azure",
        seed=0,
        windows=WINDOWS,
        window_s=86_400.0 / WINDOWS,
        arrivals_per_window=ARRIVALS_PER_WINDOW,
        flow_lifetime_windows=2,
        prefix_budget=4,
        plane="vector",
        shifts_per_window=8,
        storm_regions=1,
        flash_crowds=1,
    )

    result = benchmark.pedantic(
        lambda: run_soak(cfg), rounds=1, iterations=1
    )

    summary = result.summary()
    # Scale: the diurnal curve must actually offer a day's worth of flows.
    assert summary["offered"] >= WINDOWS * ARRIVALS_PER_WINDOW * 0.5

    # Accounting: the gate requires zero errors over the whole day.
    result.ledger.check_invariants()
    assert summary["accounting_errors"] == 0

    # Throughput: steering sustains the floor across the entire run.
    assert result.flows_per_s >= MIN_FLOWS_PER_S, (
        f"{result.flows_per_s:,.0f} flows/s over {result.flows_forwarded:,} "
        f"flows; floor is {MIN_FLOWS_PER_S:,.0f}"
    )

    benchmark.extra_info["flows_per_s"] = result.flows_per_s
    benchmark.extra_info["flows_forwarded"] = result.flows_forwarded
    benchmark.extra_info["fleet_p99_ms"] = summary["fleet_p99_ms"]
    benchmark.extra_info["total_downtime_s"] = summary["total_downtime_s"]
    benchmark.extra_info["fingerprint"] = summary["fingerprint"]
