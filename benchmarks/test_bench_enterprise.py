"""Bench: the enterprise/SLO workload (the paper's §1-§2 motivation)."""

from repro.core.orchestrator import OrchestratorConfig, PainterOrchestrator
from repro.enterprise import (
    EnterpriseConfig,
    analyze_slos,
    build_enterprise,
    generate_workload,
    summarize_slos,
)


def test_bench_enterprise_slo(benchmark, bench_scenario):
    def run():
        enterprise = build_enterprise(
            bench_scenario, EnterpriseConfig(seed=3, n_branches=5)
        )
        orchestrator = PainterOrchestrator(bench_scenario, OrchestratorConfig(prefix_budget=8))
        orchestrator.learn(iterations=2)
        config = orchestrator.solve()
        outcomes = analyze_slos(bench_scenario, enterprise, config)
        return enterprise, outcomes

    enterprise, outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    summary = summarize_slos(enterprise, outcomes)
    # PAINTER cannot hurt and typically converts some misses into hits.
    assert summary.painter_met_fraction >= summary.anycast_met_fraction
    assert summary.mean_improvement_ms >= 0.0
    benchmark.extra_info["anycast_met"] = round(summary.anycast_met_fraction, 3)
    benchmark.extra_info["painter_met"] = round(summary.painter_met_fraction, 3)
    benchmark.extra_info["mean_improvement_ms"] = round(summary.mean_improvement_ms, 1)


def test_bench_enterprise_workload(benchmark, bench_scenario):
    enterprise = build_enterprise(bench_scenario, EnterpriseConfig(seed=3, n_branches=5))
    flows = benchmark.pedantic(
        lambda: generate_workload(enterprise, duration_s=3600.0, seed=1),
        rounds=1,
        iterations=1,
    )
    assert len(flows) > 100
    sites = {flow.site_name for flow in flows}
    assert sites == {site.name for site in enterprise.sites}
    benchmark.extra_info["flows_per_hour"] = len(flows)
