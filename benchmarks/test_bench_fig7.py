"""Bench: Fig. 7 — benefit retention over a month without reconfiguration."""

from repro.experiments.fig7 import run_fig7


def test_bench_fig7(benchmark, bench_scenario):
    result = benchmark.pedantic(
        lambda: run_fig7(
            scenario=bench_scenario,
            budgets=(2, 6, 12),
            days=(0, 7, 14, 21, 28),
            learning_iterations=2,
        ),
        rounds=1,
        iterations=1,
    )
    table = {(row[0], row[1], row[2]): row[3] for row in result.rows}
    budgets = sorted({row[0] for row in result.rows})
    top = budgets[-1]
    day0 = table[(top, 0, "dynamic")]
    late_dynamic = [table[(top, d, "dynamic")] for d in (7, 14, 21, 28)]
    late_static = [table[(top, d, "static")] for d in (7, 14, 21, 28)]
    # Dynamic retains benefit (paper: <= ~3% degradation over a month).
    assert min(late_dynamic) >= day0 - 0.10
    # Static prefix choices do measurably worse (paper: ~10% worse).
    avg_dynamic = sum(late_dynamic) / len(late_dynamic)
    avg_static = sum(late_static) / len(late_static)
    assert avg_static <= avg_dynamic
    benchmark.extra_info["day0_benefit_frac"] = round(day0, 3)
    benchmark.extra_info["avg_late_dynamic"] = round(avg_dynamic, 3)
    benchmark.extra_info["avg_late_static"] = round(avg_static, 3)
    print()
    print(result.render())
