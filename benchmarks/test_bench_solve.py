"""Wall-clock benchmark of Algorithm 1 on the azure preset.

Pins the headline claim of the lazy-greedy fast path: ``solve()`` on
``azure_scenario(seed=0)`` must run at least 3x faster than the pre-fast-path
baseline while still producing the golden advertisement configuration, and
its perf counters must show the heap actually skipped the work a naive
greedy would have done.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core.orchestrator import OrchestratorConfig, PainterOrchestrator
from repro.perf import PERF
from repro.scenario import azure_scenario
from repro.telemetry import telemetry_session

try:  # LP optimality envelope (needs scipy; see repro.optimality.gates)
    import scipy  # noqa: F401

    from repro.optimality import assert_lp_sound

    HAVE_LP_GATE = True
except ImportError:  # pragma: no cover - scipy installed in CI bench jobs
    HAVE_LP_GATE = False

#: Measured before the evaluation fast path landed (same machine class as
#: CI): dense per-pair scoring with no latency-matrix precompute, no
#: incremental prefix scans, and no vectorized marginals.
PRE_PR_BASELINE_S = 60.9

GOLDEN_PATH = Path(__file__).parent.parent / "tests" / "data" / "golden_solve_configs.json"


def test_bench_solve_azure(benchmark):
    golden = json.loads(GOLDEN_PATH.read_text())["azure_seed0"]
    scenario = azure_scenario(seed=0)

    journals = []
    orchestrators = []

    def run():
        PERF.reset()
        orchestrator = PainterOrchestrator(scenario, OrchestratorConfig(prefix_budget=golden["budget"]))
        # Telemetry live during the timed region: the 3x gate therefore
        # also bounds tracing overhead on the solver's hot path.
        with telemetry_session("bench-solve", include_timings=True) as journal:
            start = time.perf_counter()
            config = orchestrator.solve()
            elapsed = time.perf_counter() - start
        journals.append(journal)
        orchestrators.append(orchestrator)
        return config, elapsed

    config, elapsed = benchmark.pedantic(run, rounds=1, iterations=1)

    # Correctness first: the fast path must not change the solved config.
    pairs = sorted(
        [prefix, pid]
        for prefix in config.prefixes
        for pid in config.peerings_for(prefix)
    )
    assert pairs == golden["pairs"]

    # Speed: at least 3x over the pre-fast-path baseline.
    assert elapsed < PRE_PR_BASELINE_S / 3, (
        f"solve() took {elapsed:.1f}s; fast path should beat "
        f"{PRE_PR_BASELINE_S / 3:.1f}s"
    )

    # Laziness: the heap must have skipped most naive re-evaluations.
    lazy = PERF.counter("orchestrator.marginal_evals").value
    naive = PERF.counter("orchestrator.naive_marginal_evals").value
    assert 0 < lazy < naive
    lat_stats = PERF.cache("evaluator.latency_matrix")

    benchmark.extra_info["solve_s"] = round(elapsed, 3)
    benchmark.extra_info["speedup_vs_baseline"] = round(
        PRE_PR_BASELINE_S / elapsed, 2
    )
    benchmark.extra_info["marginal_evals"] = lazy
    benchmark.extra_info["naive_marginal_evals"] = naive
    benchmark.extra_info["laziness_ratio"] = round(lazy / naive, 4)
    benchmark.extra_info["latency_matrix_hit_rate"] = round(
        lat_stats.hit_rate, 4
    )
    benchmark.extra_info["pairs"] = len(pairs)
    benchmark.extra_info["backend"] = orchestrators[-1].evaluator.backend.name

    # Optimality envelope: the greedy's benefit must sit at or below the LP
    # relaxation of the selection problem at its distinct-peering budget —
    # a speed regression that corrupts Eq.-2 evaluation trips this.
    if HAVE_LP_GATE:
        envelope = assert_lp_sound(orchestrators[-1].evaluator, config)
        benchmark.extra_info["benefit"] = round(envelope.benefit, 4)
        benchmark.extra_info["lp_bound"] = round(envelope.bound, 4)
        benchmark.extra_info["lp_budget"] = envelope.budget
        benchmark.extra_info["optimality_utilization"] = round(
            envelope.utilization, 4
        )
    else:
        benchmark.extra_info["lp_bound"] = "scipy unavailable"

    # One prefix_scan span per allocated prefix landed in the journal.
    journal = journals[-1]
    scans = [s for s in journal.spans() if s["name"] == "orchestrator.prefix_scan"]
    assert len(scans) >= len(config.prefixes)
    benchmark.extra_info["journal_records"] = len(journal)
