"""Throughput gate for the batched Traffic Manager data plane.

Pins the tentpole claim: on the azure preset, the vectorized
:class:`VectorFlowTable` sustains at least 100k flows/s on *every* replay
step while carrying one million concurrent flows.  A slow step anywhere in
the run — admission, measurement fold-in, or the failover re-map — fails
the gate, not just the average.

The run executes with telemetry *enabled* (spans into a live journal), so
the gate also bounds the instrumentation overhead: the tracer's per-batch
span cost must fit inside the same 100k flows/s floor.
"""

from __future__ import annotations

from repro.experiments.replay import ReplayConfig, run_traffic_replay
from repro.perf import PERF
from repro.telemetry import telemetry_session

#: The ISSUE's acceptance floor: each step must admit at this rate or better.
MIN_FLOWS_PER_S = 100_000.0

#: Total arrivals across the run; all stay live, so this is also the
#: concurrent-flow count the final step carries.
TOTAL_FLOWS = 1_000_000

STEPS = 5


def test_bench_tm_azure(benchmark):
    config = ReplayConfig(
        preset="azure",
        seed=0,
        arrivals_per_step=TOTAL_FLOWS // STEPS,
        steps=STEPS,
        prefix_budget=4,
        plane="vector",
        fail_step=STEPS - 1,
    )

    journals = []

    def run():
        PERF.reset()
        with telemetry_session("bench-tm", include_timings=True) as journal:
            replay = run_traffic_replay(config)
        journals.append(journal)
        return replay

    replay = benchmark.pedantic(run, rounds=1, iterations=1)

    # Scale: the run must actually reach a million concurrent flows.
    assert replay.peak_live_flows >= TOTAL_FLOWS * 0.99, (
        f"peak {replay.peak_live_flows:,} concurrent flows; "
        f"expected ~{TOTAL_FLOWS:,}"
    )

    # Throughput: every step, including the failover one, beats the floor.
    slowest = replay.min_flows_per_s
    assert slowest >= MIN_FLOWS_PER_S, (
        f"slowest step admitted {slowest:,.0f} flows/s; "
        f"gate is {MIN_FLOWS_PER_S:,.0f}"
    )

    # The failover actually moved pinned flows off the dead prefix.
    assert replay.failed_prefix is not None
    assert replay.flows_remapped > 0
    assert replay.failed_prefix not in replay.flows_by_destination

    benchmark.extra_info["peak_live_flows"] = replay.peak_live_flows
    benchmark.extra_info["total_admitted"] = replay.total_admitted
    benchmark.extra_info["min_kflows_per_s"] = round(slowest / 1e3, 1)
    benchmark.extra_info["flows_remapped"] = replay.flows_remapped
    benchmark.extra_info["step_s"] = [
        round(s.elapsed_s, 4) for s in replay.step_stats
    ]
    benchmark.extra_info["solve_s"] = round(
        PERF.timer("replay.solve").total_s, 3
    )

    # Telemetry was live for the whole gated run: spans must have landed.
    journal = journals[-1]
    assert any(s["name"] == "replay.step" for s in journal.spans())
    benchmark.extra_info["journal_records"] = len(journal)
