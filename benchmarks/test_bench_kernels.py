"""Compute-backend benchmark gates.

Two headline claims of the pluggable-kernel work, each CI-gated:

* **numba speedup** — the compiled backend must solve the azure preset at
  least 3x faster than the numpy reference *while producing the
  bit-identical golden configuration* (skipped where numba is not
  installed; the numpy-only CI leg exercises the fallback path instead);
* **mega memory** — building and solving the 100k-UG ``mega`` preset
  through the dense-matrix layout must stay inside a fixed peak-RSS
  budget, so the per-UG dict layout can never silently come back.

Timing, backend identity, and compile-time attribution all land in
``benchmark.extra_info`` so the saved JSON doubles as the PR's artifact.
"""

from __future__ import annotations

import json
import resource
import time
from pathlib import Path

import pytest

from repro.core.orchestrator import OrchestratorConfig, PainterOrchestrator
from repro.kernels import available_backends
from repro.perf import PERF
from repro.scenario import azure_scenario, mega_scenario
from repro.telemetry import telemetry_session

try:  # LP optimality envelope (needs scipy; see repro.optimality.gates)
    import scipy  # noqa: F401

    from repro.optimality import assert_lp_sound

    HAVE_LP_GATE = True
except ImportError:  # pragma: no cover - scipy installed in CI bench jobs
    HAVE_LP_GATE = False

HAVE_NUMBA = "numba" in available_backends()

GOLDEN_PATH = Path(__file__).parent.parent / "tests" / "data" / "golden_solve_configs.json"

#: Required numba-over-numpy wall-clock ratio on the azure solve.
NUMBA_MIN_SPEEDUP = 3.0

#: Peak-RSS budget for the mega build+solve (see tests/test_mega_preset.py
#: for the measured ~5.0 GB baseline this derives from).
MEGA_PEAK_RSS_BYTES = 8 * 1024**3


def _timed_solve(scenario, backend: str, budget: int):
    """One warmed solve: returns (config, seconds, compile_seconds)."""
    PERF.reset()
    orchestrator = PainterOrchestrator(
        scenario, OrchestratorConfig(prefix_budget=budget, backend=backend)
    )
    try:
        start = time.perf_counter()
        config = orchestrator.solve()
        elapsed = time.perf_counter() - start
    finally:
        orchestrator.close()
    return (
        config,
        elapsed,
        PERF.timer("kernels.compile_s").total_s,
        orchestrator,
    )


@pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
def test_bench_numba_speedup_azure(benchmark):
    golden = json.loads(GOLDEN_PATH.read_text())["azure_seed0"]
    scenario = azure_scenario(seed=0)
    budget = golden["budget"]

    # Reference leg (untimed by the harness, timed manually).
    numpy_config, numpy_s, _, _ = _timed_solve(scenario, "numpy", budget)

    results = []

    def run():
        results.append(_timed_solve(scenario, "numba", budget))
        return results[-1]

    numba_config, numba_s, compile_s, orchestrator = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    # Bit-exactness before speed: both backends must emit the golden config.
    def pairs(config):
        return sorted(
            [prefix, pid]
            for prefix in config.prefixes
            for pid in config.peerings_for(prefix)
        )

    assert pairs(numpy_config) == golden["pairs"]
    assert pairs(numba_config) == golden["pairs"]

    speedup = numpy_s / numba_s
    assert speedup >= NUMBA_MIN_SPEEDUP, (
        f"numba solve {numba_s:.2f}s vs numpy {numpy_s:.2f}s — only "
        f"{speedup:.2f}x, gate is {NUMBA_MIN_SPEEDUP}x"
    )

    if HAVE_LP_GATE:
        envelope = assert_lp_sound(orchestrator.evaluator, numba_config)
        benchmark.extra_info["lp_bound"] = round(envelope.bound, 4)
        benchmark.extra_info["optimality_utilization"] = round(
            envelope.utilization, 4
        )

    benchmark.extra_info["backend"] = "numba"
    benchmark.extra_info["numpy_solve_s"] = round(numpy_s, 3)
    benchmark.extra_info["numba_solve_s"] = round(numba_s, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["compile_s"] = round(compile_s, 3)


def test_bench_backend_fallback_costs_nothing(benchmark):
    """Numpy-only environments: an explicit ``numba`` request must degrade
    to a solve that matches the numpy reference exactly (and log it)."""
    if HAVE_NUMBA:
        pytest.skip("numba installed; fallback leg runs on the numpy-only job")
    golden = json.loads(GOLDEN_PATH.read_text())["prototype_seed0"]
    from repro.scenario import prototype_scenario

    scenario = prototype_scenario(seed=0)

    def run():
        PERF.reset()
        with telemetry_session("bench-fallback") as journal:
            with pytest.warns(RuntimeWarning, match="falling back"):
                orchestrator = PainterOrchestrator(
                    scenario,
                    OrchestratorConfig(
                        prefix_budget=golden["budget"], backend="numba"
                    ),
                )
            config = orchestrator.solve()
        return config, journal

    config, journal = benchmark.pedantic(run, rounds=1, iterations=1)
    pairs = sorted(
        [prefix, pid]
        for prefix in config.prefixes
        for pid in config.peerings_for(prefix)
    )
    assert pairs == golden["pairs"]
    assert PERF.counter("kernels.fallbacks").value == 1
    assert len(journal.events("backend_fallback")) == 1
    benchmark.extra_info["backend"] = "numpy (fallback)"
    benchmark.extra_info["fallbacks"] = PERF.counter("kernels.fallbacks").value


def test_bench_mega_memory_budget(benchmark):
    """Build + budget-2 solve of the 100k-UG mega preset under the RSS gate."""

    def run():
        PERF.reset()
        scenario = mega_scenario()
        orchestrator = PainterOrchestrator(
            scenario, OrchestratorConfig(prefix_budget=2)
        )
        assert orchestrator._use_dense_matrices()
        start = time.perf_counter()
        config = orchestrator.solve()
        solve_s = time.perf_counter() - start
        return scenario, config, solve_s, orchestrator.evaluator.backend.name

    scenario, config, solve_s, backend_name = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert len(scenario.user_groups) >= 100_000
    assert len(scenario.deployment.pops) >= 500
    assert config.pair_count > 0

    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    assert peak <= MEGA_PEAK_RSS_BYTES, (
        f"mega peak RSS {peak / 1e9:.2f} GB exceeds the "
        f"{MEGA_PEAK_RSS_BYTES / 1e9:.1f} GB gate"
    )

    benchmark.extra_info["backend"] = backend_name
    benchmark.extra_info["peak_rss_gb"] = round(peak / 1e9, 3)
    benchmark.extra_info["solve_s"] = round(solve_s, 3)
    benchmark.extra_info["materialize_s"] = round(
        PERF.timer("kernels.materialize_s").total_s, 3
    )
    benchmark.extra_info["ugs"] = len(scenario.user_groups)
    benchmark.extra_info["peerings"] = len(scenario.deployment.peerings)
