"""Visualize the learning loop (Fig. 6c) as a terminal plot.

Runs Algorithm 1's outer loop for several iterations and plots how the
realized benefit curve shifts upward as the routing model learns which
ingresses UGs actually use — with the pre-test uncertainty band narrowing.

Run with::

    python examples/learning_dynamics.py
"""

from __future__ import annotations

from repro import OrchestratorConfig, PainterOrchestrator, prototype_scenario
from repro.core.benefit import realized_benefit
from repro.experiments.harness import budget_grid, config_prefix_subset
from repro.experiments.plotting import ascii_plot


def main() -> None:
    scenario = prototype_scenario(seed=0, n_ugs=250)
    possible = scenario.total_possible_benefit()
    print(scenario.describe())

    orchestrator = PainterOrchestrator(scenario, OrchestratorConfig(prefix_budget=12))
    learning = orchestrator.learn(iterations=4)

    budgets = budget_grid(12)
    series = {}
    for record in learning.iterations:
        points = []
        for budget in budgets:
            subset = config_prefix_subset(record.config, budget)
            points.append((budget, realized_benefit(scenario, subset) / possible))
        series[f"iter{record.iteration}"] = points

    print()
    print(
        ascii_plot(
            series,
            title="realized benefit vs prefix budget, per learning iteration",
            x_label="prefix budget",
            y_label="benefit",
            log_x=True,
            height=18,
        )
    )
    print()
    print("pre-test uncertainty per iteration (upper - estimated, weighted ms):")
    for record in learning.iterations:
        bar = "#" * max(1, int(200 * record.uncertainty / max(possible, 1e-9)))
        print(f"  iter {record.iteration}: {record.uncertainty:8.3f}  {bar}")
    print(
        f"\none real-world iteration would take ~"
        f"{orchestrator.estimated_iteration_duration_s() / 60:.0f} minutes "
        f"(30 s/prefix computation + flap-damping-safe advertisement pacing)"
    )


if __name__ == "__main__":
    main()
