"""Anycast catchments: where does traffic actually land?

Tabulates per-PoP catchments under the default anycast configuration and
surfaces the inflated tail — UGs hauled far past their closest PoP, the
Figure 1 pathology that motivates PAINTER.  Then shows how much of that tail
PAINTER's advertisements recover.

Run with::

    python examples/anycast_catchments.py
"""

from __future__ import annotations

from repro import OrchestratorConfig, PainterOrchestrator, prototype_scenario
from repro.core.benefit import realized_improvement
from repro.steering.catchment import CatchmentAnalysis


def main() -> None:
    scenario = prototype_scenario(seed=7, n_ugs=250)
    analysis = CatchmentAnalysis(scenario)
    print(scenario.describe())

    volumes = analysis.catchment_volumes()
    top = sorted(volumes, key=lambda name: -volumes[name])[:8]
    total = sum(volumes.values())
    print("\nlargest anycast catchments (by traffic volume):")
    for pop_name in top:
        share = volumes[pop_name] / total
        print(f"  {pop_name:<22} {100 * share:5.1f}%  {'#' * int(60 * share)}")

    print(
        f"\n{100 * analysis.fraction_at_closest_pop():.0f}% of UGs land at their "
        f"geographically closest PoP; "
        f"{100 * analysis.fraction_within_km(1000):.0f}% within 1,000 km of it "
        "(prior work: ~90% for a large CDN)"
    )
    percentiles = analysis.inflation_percentiles((0.5, 0.9, 0.99))
    print(
        "anycast inflation (extra km past the closest PoP): "
        + ", ".join(f"p{int(100 * f)}={km:,.0f} km" for f, km in percentiles.items())
    )

    print("\nthe Figure 1 tail — farthest-hauled UGs, and what PAINTER recovers:")
    orchestrator = PainterOrchestrator(scenario, OrchestratorConfig(prefix_budget=8))
    orchestrator.learn(iterations=2)
    config = orchestrator.solve()
    by_id = {ug.ug_id: ug for ug in scenario.user_groups}
    for entry in analysis.worst_entries(5):
        ug = by_id[entry.ug_id]
        gain = realized_improvement(scenario, ug, config)
        print(
            f"  {ug.metro.name:<16} landed {entry.pop_name:<22} "
            f"(+{entry.inflation_km:6,.0f} km past {entry.closest_pop_name}); "
            f"PAINTER recovers {gain:6.1f} ms"
        )


if __name__ == "__main__":
    main()
