"""End-to-end PAINTER deployment: optimize, install, steer.

Combines all three layers the paper describes:

1. the Advertisement Orchestrator computes a prefix->peering configuration
   (Algorithm 1, with learning);
2. the installation layer binds it to real /24s from the cloud's address
   pool, announces them, and stands up TM-PoPs;
3. a TM-Edge in one enterprise resolves the available destinations, measures
   them, and steers flows onto the best ingress path.

Run with::

    python examples/full_deployment.py
"""

from __future__ import annotations

from repro import OrchestratorConfig, PainterOrchestrator, prototype_scenario
from repro.core.installation import DEFAULT_SERVICE, install_configuration
from repro.traffic_manager.flows import FiveTuple
from repro.traffic_manager.tm_edge import TMEdge


def main() -> None:
    # 1. Optimize advertisements.
    scenario = prototype_scenario(seed=4, n_ugs=200)
    print(scenario.describe())
    orchestrator = PainterOrchestrator(scenario, OrchestratorConfig(prefix_budget=8))
    orchestrator.learn(iterations=2)
    config = orchestrator.solve()
    print(f"computed {config}\n")

    # 2. Install: bind to real /24s, announce, create TM-PoPs.
    installation = install_configuration(scenario, config)
    print(f"anycast prefix: {installation.anycast_cidr}")
    for installed in installation.prefixes:
        print(
            f"  {installed.cidr}: {len(installed.peering_ids)} peerings "
            f"at PoPs {sorted(installed.pop_names)[:3]}"
            + ("..." if len(installed.pop_names) > 3 else "")
        )

    # 3. A TM-Edge in one enterprise steers traffic.
    ug = max(
        scenario.user_groups,
        key=lambda u: scenario.anycast_latency_ms(u) - scenario.best_possible_latency_ms(u),
    )
    print(f"\nenterprise UG: {ug}")
    print(f"  anycast latency      : {scenario.anycast_latency_ms(ug):6.1f} ms")

    edge = TMEdge(edge_ip="203.0.113.50", directory=installation.directory)
    available = edge.resolve_service(DEFAULT_SERVICE)

    # Measure each destination: ground-truth latency via the ingress this
    # UG's traffic would actually take for that prefix's advertisement.
    rtts = {}
    for cidr in available:
        if cidr == installation.anycast_cidr:
            rtts[cidr] = scenario.anycast_latency_ms(ug)
            continue
        installed = next(p for p in installation.prefixes if p.cidr == cidr)
        latency = scenario.routing.latency_for(ug, installed.peering_ids)
        if latency is not None:
            rtts[cidr] = latency
    selected = edge.record_measurements(DEFAULT_SERVICE, rtts)
    print(f"  best PAINTER prefix  : {rtts[selected]:6.1f} ms via {selected}")
    print(f"  improvement          : {scenario.anycast_latency_ms(ug) - rtts[selected]:6.1f} ms")

    flow = FiveTuple(
        proto="tcp", src_ip="192.168.7.7", src_port=40000, dst_ip="1.1.1.1", dst_port=443
    )
    entry = edge.admit_flow(DEFAULT_SERVICE, flow, now_s=0.0)
    print(f"  new flow pinned to   : {entry.destination_prefix}")


if __name__ == "__main__":
    main()
