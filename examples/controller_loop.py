"""Continuous operation: the controller daemon, a crash, and a resume.

Runs the :class:`repro.controller.PainterController` over a seeded delta
stream (volume churn, a peering flap, a PoP outage), kills the loop
mid-stream, then restarts it from the durable checkpoint and shows that
the recovered run converges to the identical configuration and journal.

Run with::

    python examples/controller_loop.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import OrchestratorConfig, tiny_scenario
from repro.controller import ControllerConfig, PainterController, synthetic_deltas


def run_stream(checkpoint_dir: Path, max_iterations=None):
    """One controller run; an existing checkpoint resumes automatically."""
    scenario = tiny_scenario(seed=3)
    deltas = synthetic_deltas(scenario, iterations=5, seed=7)
    controller = PainterController(
        scenario,
        OrchestratorConfig(prefix_budget=4),
        ControllerConfig(
            checkpoint_dir=checkpoint_dir,
            verify_every=2,          # cold-verify the warm solver
            max_iterations=max_iterations,
        ),
        deltas,
    )
    try:
        return controller.run()
    finally:
        controller.close()


def main() -> None:
    with tempfile.TemporaryDirectory() as root:
        root = Path(root)

        print("reference run (uninterrupted):")
        reference = run_stream(root / "ref")
        for entry in reference.timeline:
            print(
                f"  iter {entry['iteration']}: {entry['mode']} re-solve, "
                f"benefit {entry['realized_benefit']:.1f}"
            )
        print(f"  final: {reference.final_config}\n")

        print("interrupted run (stopped after 3 iterations):")
        run_stream(root / "crash", max_iterations=3)
        checkpoints = sorted(p.name for p in (root / "crash").glob("checkpoint-*"))
        print(f"  durable checkpoints left behind: {checkpoints}\n")

        print("resumed run (fresh process, same checkpoint dir):")
        resumed = run_stream(root / "crash")
        print(f"  resumed from checkpoint {resumed.resumed_from}")
        print(f"  final: {resumed.final_config}\n")

        same_config = resumed.final_config == reference.final_config
        same_journal = (
            (root / "ref" / "journal.jsonl").read_bytes()
            == (root / "crash" / "journal.jsonl").read_bytes()
        )
        print(f"final configs identical:    {same_config}")
        print(f"journals byte-identical:    {same_journal}")


if __name__ == "__main__":
    main()
