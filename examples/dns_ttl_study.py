"""Reproduce the DNS/TTL motivation study (Fig. 3).

Generates synthetic residential traces for three cloud profiles and shows
how much traffic is still sent to addresses from expired DNS records — the
reason DNS cannot steer cloud ingress traffic quickly.

Run with::

    python examples/dns_ttl_study.py
"""

from __future__ import annotations

from repro.dns.trace import (
    CLOUD_PROFILES,
    bytes_yet_to_be_sent_curve,
    extant_vs_cached_ratio,
    generate_trace,
)

OFFSETS = (-60.0, -1.0, 0.0, 1.0, 60.0, 300.0, 3600.0)
LABELS = ("-1min", "-1s", "expiry", "+1s", "+1min", "+5min", "+1hour")


def main() -> None:
    print("fraction of bytes yet to be sent, relative to DNS record expiry\n")
    header = "cloud".ljust(10) + "".join(label.rjust(9) for label in LABELS)
    print(header)
    print("-" * len(header))
    for profile in CLOUD_PROFILES:
        flows = generate_trace(profile, n_flows=5000, seed=0)
        curve = bytes_yet_to_be_sent_curve(flows, OFFSETS)
        cells = "".join(f"{100 * fraction:8.1f}%" for _offset, fraction in curve)
        print(profile.name.ljust(10) + cells)

    print()
    for profile in CLOUD_PROFILES:
        flows = generate_trace(profile, n_flows=5000, seed=0)
        ratio = extant_vs_cached_ratio(flows)
        print(
            f"{profile.name}: late bytes split {ratio:.1f}:1 between flows that "
            "outlived their record and flows started from cached addresses"
        )

    print(
        "\nTakeaway: most of cloud-a's traffic ignores DNS TTLs entirely, so a "
        "DNS answer change cannot re-steer it — PAINTER steers per flow instead."
    )


if __name__ == "__main__":
    main()
