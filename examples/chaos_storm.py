"""Fault storms: how each steering strategy weathers compounding failures.

Fig. 10 measures one clean PoP failure.  Real networks fail messily:
overlapping outages, links that flap faster than BGP damping tolerates,
latency spikes, probing that goes dark.  This example builds one explicit
storm to show the TM-Edge surviving back-to-back failures, then runs the
seeded chaos harness to score PAINTER, anycast, and DNS steering against
identical random weather — and shows the orchestrator's learning loop
finishing (with widened uncertainty) while a third of its observations are
withheld.

Run with::

    python examples/chaos_storm.py
"""

from __future__ import annotations

from repro import OrchestratorConfig, PainterOrchestrator, tiny_scenario
from repro.experiments.chaos import ChaosConfig, ChaosHarness
from repro.faults import FaultSchedule, LinkFlap, ObservationFaults, PopOutage
from repro.traffic_manager.failover import FailoverConfig, default_fig10_paths, run_failover


def explicit_storm() -> None:
    """Both PoPs fail in sequence while the best unicast link flaps."""
    schedule = FaultSchedule(
        events=(
            LinkFlap(start_s=20.0, prefix="2.2.2.0/24", down_s=1.0, up_s=5.0, cycles=2),
            PopOutage(start_s=60.0, pop_name="pop-a"),
            PopOutage(start_s=80.0, pop_name="pop-b", duration_s=20.0),
        )
    )
    result = run_failover(default_fig10_paths(), FailoverConfig(schedule=schedule))

    print("explicit storm: flapping link, then pop-a dies, then pop-b too")
    for event in result.downtime_events:
        recovered = (
            f"recovered after {event.duration_ms:6.1f} ms"
            if event.recovered_s is not None
            else "never recovered"
        )
        print(f"  t={event.detected_s:7.3f}s  {event.prefix:<12} down, {recovered}")
    print(
        f"  total downtime {result.total_downtime_ms:.1f} ms over "
        f"{len(result.downtime_events)} episodes; "
        f"active path at the end: {result.active_prefix_at(129.0)}"
    )


def seeded_storms() -> None:
    harness = ChaosHarness(ChaosConfig(storms=4, duration_s=110.0, seed=7))
    print("\nseeded random storms (identical weather for every strategy):")
    print(harness.to_result(harness.run()).render())


def degraded_learning() -> None:
    scenario = tiny_scenario(seed=3)
    orchestrator = PainterOrchestrator(scenario, OrchestratorConfig(prefix_budget=3))
    faults = ObservationFaults(missing_rate=0.30, stale_rate=0.10, seed=7)
    result = orchestrator.learn(iterations=3, faults=faults)

    print("learning through a measurement brown-out (30% missing, 10% stale):")
    for record in result.iterations:
        print(
            f"  iter {record.iteration}: realized {record.realized_benefit:8.1f}, "
            f"{record.observations_observed} observed / "
            f"{record.observations_missing} missing / "
            f"{record.observations_stale} stale, "
            f"uncertainty {record.uncertainty:.1f} "
            f"(widened {100 * record.degraded_fraction:.0f}%)"
        )


def main() -> None:
    explicit_storm()
    seeded_storms()
    degraded_learning()


if __name__ == "__main__":
    main()
