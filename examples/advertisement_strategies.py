"""Compare PAINTER's advertisements against the paper's baselines (Fig. 6).

For a range of prefix budgets, computes how much of the total possible
latency benefit each strategy realizes against ground-truth routing.

Run with::

    python examples/advertisement_strategies.py
"""

from __future__ import annotations

from repro import OrchestratorConfig, PainterOrchestrator, prototype_scenario
from repro.core.baselines import (
    one_per_peering,
    one_per_pop,
    one_per_pop_with_reuse,
    regional_transit,
)
from repro.core.benefit import realized_benefit
from repro.experiments.harness import config_prefix_subset


def main() -> None:
    scenario = prototype_scenario(seed=2, n_ugs=200)
    possible = scenario.total_possible_benefit()
    print(scenario.describe())
    print(f"peerings (ingresses): {len(scenario.deployment)}\n")

    budgets = (1, 2, 4, 8, 12)

    orchestrator = PainterOrchestrator(scenario, OrchestratorConfig(prefix_budget=max(budgets)))
    orchestrator.learn(iterations=2)  # let the routing model converge a bit
    painter_full = orchestrator.solve()

    strategies = {
        "painter": lambda budget: config_prefix_subset(painter_full, budget),
        "one_per_peering": lambda budget: one_per_peering(scenario, budget),
        "one_per_pop": lambda budget: one_per_pop(scenario, budget),
        "one_per_pop_w_reuse": lambda budget: one_per_pop_with_reuse(scenario, budget),
        "regional_transit": lambda budget: regional_transit(scenario, budget),
    }

    header = "strategy".ljust(22) + "".join(f"{budget:>10}" for budget in budgets)
    print(header)
    print("-" * len(header))
    for name, builder in strategies.items():
        cells = []
        for budget in budgets:
            config = builder(budget)
            fraction = realized_benefit(scenario, config) / possible
            cells.append(f"{100 * fraction:9.1f}%")
        print(name.ljust(22) + "".join(cells))

    print("\n(cells: % of total possible benefit realized at that prefix budget)")


if __name__ == "__main__":
    main()
