"""The Figure 1 story: a regional ISP's peering router fails.

An enterprise branch office reaches the cloud through a close PoP.  The
peering there fails; the default anycast route hauls traffic to a distant
PoP while BGP reconverges, and a DNS-based fix waits out the TTL.  PAINTER's
TM-Edge detects the failure in about one RTT and tunnels flows onto a
policy-compliant backup path through a transit ISP.

Run with::

    python examples/enterprise_failover.py
"""

from __future__ import annotations

from repro.traffic_manager.failover import (
    FailoverConfig,
    PathSpec,
    run_failover,
)


def main() -> None:
    # City A's close PoP hosts the default path (via the regional ISP) and a
    # transit alternative; City B's distant PoP is the anycast fallback.
    paths = [
        PathSpec(
            prefix="1.1.1.0/24",  # anycast at both PoPs
            pop_name="city-a",
            base_rtt_ms=18.0,
            is_anycast=True,
            backup_rtt_ms=95.0,  # the circuitous path to City B
        ),
        PathSpec(prefix="2.2.2.0/24", pop_name="city-a", base_rtt_ms=14.0),  # regional ISP
        PathSpec(prefix="3.3.3.0/24", pop_name="city-a", base_rtt_ms=21.0),  # transit ISP
        PathSpec(prefix="4.4.4.0/24", pop_name="city-b", base_rtt_ms=92.0),  # distant PoP
    ]
    config = FailoverConfig(
        duration_s=130.0,
        failure_time_s=60.0,
        failed_pop="city-a",
        dns_ttl_s=60.0,
    )

    # Note: the whole City A PoP fails here (the paper's Fig. 10 setup); the
    # transit path at City A dies with it and PAINTER lands on City B.
    result = run_failover(paths, config)

    print("timeline (sampled):")
    for t in (0, 30, 59, 61, 65, 80, 120):
        active = result.active_prefix_at(float(t))
        print(f"  t={t:>3}s  active path: {active}")

    print("\noutage comparison after the City A failure:")
    print(f"  PAINTER (TM-Edge failover) : {result.painter_downtime_ms:8.1f} ms")
    print(f"  anycast (BGP withdrawal)   : {result.anycast_loss_s * 1000:8.1f} ms loss, "
          f"{result.anycast_reconvergence_s:.1f} s of path exploration")
    print(f"  DNS re-steering (TTL-bound): {result.dns_downtime_s * 1000:8.1f} ms")

    churn = result.bgp_update_series(bin_s=5.0)
    busy = [(t, c) for t, c in churn if c > 0]
    print("\nBGP update churn (5 s bins):")
    for t, count in busy:
        print(f"  t={t:5.0f}s  {'#' * count} ({count})")


if __name__ == "__main__":
    main()
