"""Prefix-budget planning: the cost/benefit frontier.

Prefixes cost real money (>$20k per /24) and global FIB space (§2.4).  This
example sweeps the budget, showing benefit, dollar cost, the prefixes reuse
saved versus one-per-peering, and how the footprint compares to hypergiant
norms — the numbers an operator needs to pick a budget.

Run with::

    python examples/budget_planning.py
"""

from __future__ import annotations

from repro import OrchestratorConfig, PainterOrchestrator, prototype_scenario
from repro.core.benefit import realized_benefit
from repro.core.cost import configuration_cost, prefixes_saved_vs_one_per_peering
from repro.experiments.harness import config_prefix_subset


def main() -> None:
    scenario = prototype_scenario(seed=5, n_ugs=200)
    possible = scenario.total_possible_benefit()
    print(scenario.describe())
    print(f"peerings: {len(scenario.deployment)}; "
          f"total possible benefit {possible:.1f} weighted-ms\n")

    orchestrator = PainterOrchestrator(scenario, OrchestratorConfig(prefix_budget=16))
    orchestrator.learn(iterations=2)
    full = orchestrator.solve()

    header = (
        f"{'budget':>6} {'benefit%':>9} {'pairs':>6} {'saved':>6} "
        f"{'cost $':>12} {'vs hypergiant':>14}"
    )
    print(header)
    print("-" * len(header))
    for budget in (1, 2, 4, 8, 12, 16):
        config = config_prefix_subset(full, budget)
        benefit = realized_benefit(scenario, config) / possible
        cost = configuration_cost(config)
        saved = prefixes_saved_vs_one_per_peering(config)
        print(
            f"{budget:>6} {100 * benefit:>8.1f}% {config.pair_count:>6} {saved:>6} "
            f"{cost.address_cost_usd:>12,.0f} "
            f"{100 * cost.fraction_of_hypergiant_footprint:>13.1f}%"
        )

    print(
        "\n'saved' counts prefixes that reuse avoided buying (covered peerings "
        "minus prefixes); the hypergiant column compares the footprint against "
        "the >=500 /24s large content providers already advertise."
    )
    print(
        f"one learning iteration at the full budget would take "
        f"~{orchestrator.estimated_iteration_duration_s() / 60:.0f} minutes of "
        f"real time (computation + flap-damping-safe pacing)"
    )


if __name__ == "__main__":
    main()
