"""A modern enterprise on a virtual corporate WAN (Figure 2).

Builds the paper's motivating enterprise — HQ, branch offices, and remote
employees connected through the cloud — generates its per-service workload,
optimizes ingress advertisements with PAINTER, and reports per-service SLO
attainment before and after.  The AR service's 10 ms budget (§1) shows where
ingress latency is the binding constraint.

Run with::

    python examples/virtual_wan.py
"""

from __future__ import annotations

from repro import OrchestratorConfig, PainterOrchestrator, prototype_scenario
from repro.enterprise import (
    EnterpriseConfig,
    analyze_slos,
    build_enterprise,
    flows_by_service,
    generate_workload,
    peak_concurrent_demand_mbps,
    summarize_slos,
)


def main() -> None:
    scenario = prototype_scenario(seed=6, n_ugs=200)
    enterprise = build_enterprise(scenario, EnterpriseConfig(seed=2, n_branches=4))

    print(f"{enterprise.name}: {len(enterprise.sites)} sites, "
          f"{enterprise.total_headcount} people, "
          f"{100 * enterprise.steerable_fraction():.0f}% behind cloud-edge stacks")
    for site in enterprise.sites:
        stack = "TM-Edge" if site.has_edge_stack else "unmanaged"
        print(f"  {site.name:<10} {site.kind.value:<7} @ {site.user_group.metro.name:<14} "
              f"{site.headcount:>5} people  [{stack}]")

    flows = generate_workload(enterprise, duration_s=3600.0, seed=1)
    print(f"\nworkload: {len(flows)} flows in one office hour; "
          f"peak demand {peak_concurrent_demand_mbps(flows):.0f} Mbps")
    for service, count in sorted(flows_by_service(flows).items()):
        print(f"  {service:<18} {count:>5} flows")

    orchestrator = PainterOrchestrator(scenario, OrchestratorConfig(prefix_budget=8))
    orchestrator.learn(iterations=2)
    config = orchestrator.solve()
    outcomes = analyze_slos(scenario, enterprise, config)

    print(f"\nSLO attainment with {config}:")
    print(f"  {'site':<10} {'service':<18} {'SLO':>7} {'anycast':>9} {'painter':>9}  verdict")
    for outcome in outcomes:
        verdict = (
            "met -> met" if outcome.met_under_anycast and outcome.met_under_painter
            else "MISS -> met" if outcome.met_under_painter
            else "MISS -> MISS" if not outcome.met_under_anycast
            else "met -> MISS"
        )
        print(
            f"  {outcome.site_name:<10} {outcome.service_name:<18} "
            f"{outcome.slo_ms:>6.0f}m {outcome.anycast_latency_ms:>8.1f}m "
            f"{outcome.painter_latency_ms:>8.1f}m  {verdict}"
        )

    summary = summarize_slos(enterprise, outcomes)
    print(
        f"\nheadcount-weighted SLO attainment: "
        f"{100 * summary.anycast_met_fraction:.0f}% (anycast) -> "
        f"{100 * summary.painter_met_fraction:.0f}% (PAINTER), "
        f"avg improvement {summary.mean_improvement_ms:.1f} ms"
    )


if __name__ == "__main__":
    main()
