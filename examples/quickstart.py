"""Quickstart: optimize ingress advertisements for a synthetic cloud.

Builds a PEERING-prototype-scale world, runs PAINTER's Advertisement
Orchestrator (Algorithm 1) with its learning loop, and reports how much of
the possible latency benefit each iteration realizes.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import OrchestratorConfig, PainterOrchestrator, prototype_scenario
from repro.core.benefit import realized_benefit


def main() -> None:
    scenario = prototype_scenario(seed=1, n_ugs=250)
    print(scenario.describe())

    possible = scenario.total_possible_benefit()
    print(f"total possible benefit (volume-weighted ms): {possible:.1f}\n")

    orchestrator = PainterOrchestrator(scenario, OrchestratorConfig(prefix_budget=10))
    result = orchestrator.learn(iterations=3)

    print("learning iterations (Algorithm 1's outer loop):")
    for record in result.iterations:
        print(
            f"  iter {record.iteration}: {record.config} -> "
            f"realized {100 * record.realized_benefit / possible:.1f}% of possible, "
            f"uncertainty {record.uncertainty:.2f}, "
            f"{record.new_preferences} new preferences learned"
        )

    config = result.final_config
    print("\nfinal advertisement configuration:")
    for prefix in config.prefixes:
        peerings = [
            str(scenario.deployment.peering(pid))
            for pid in sorted(config.peerings_for(prefix))
        ]
        print(f"  prefix {prefix}: {len(peerings)} peerings")
        for peering in peerings[:4]:
            print(f"    {peering}")
        if len(peerings) > 4:
            print(f"    ... and {len(peerings) - 4} more")

    print(
        f"\nrealized benefit: {100 * realized_benefit(scenario, config) / possible:.1f}%"
        f" of possible with {config.prefix_count} prefixes"
        f" (vs {len(scenario.deployment)} peerings for one-per-peering)"
    )


if __name__ == "__main__":
    main()
