"""Walk a packet through the Traffic Manager data plane (Appendix D).

Shows the six-step journey of Figure 13: TM-Edge encapsulation, TM-PoP
decapsulation + NAT, service reply, NAT restoration, and final delivery.

Run with::

    python examples/tunnel_walkthrough.py
"""

from __future__ import annotations

from repro.topology.cloud import PoP
from repro.topology.geo import metro_by_name
from repro.traffic_manager.flows import FiveTuple
from repro.traffic_manager.tm_edge import TMEdge
from repro.traffic_manager.tm_pop import PrefixDirectory, TMPoP
from repro.traffic_manager.tunnel import Packet, TMPoPNat, decapsulate


def describe(step: str, packet: Packet) -> None:
    inner = " [encapsulated]" if packet.is_encapsulated else ""
    print(
        f"  {step}: {packet.src_ip}:{packet.src_port} -> "
        f"{packet.dst_ip}:{packet.dst_port} ({packet.proto}, "
        f"{packet.wire_bytes} bytes on the wire){inner}"
    )


def main() -> None:
    # Control plane: a TM-PoP serving the 'teams' service behind two prefixes.
    directory = PrefixDirectory()
    tm_pop = TMPoP(
        name="tm-newyork",
        pop=PoP(name="pop-newyork", metro=metro_by_name("new-york")),
        nat=TMPoPNat(nat_ips=["100.64.0.1", "100.64.0.2"]),
    )
    tm_pop.add_service("teams")
    tm_pop.attach_prefix("184.164.224.0/24")
    tm_pop.attach_prefix("184.164.225.0/24")
    directory.register(tm_pop)

    edge = TMEdge(edge_ip="203.0.113.1", directory=directory)
    available = edge.resolve_service("teams")
    print(f"TM-Edge resolved {len(available)} destination prefixes: {sorted(available)}")
    edge.record_measurements(
        "teams", {"184.164.224.0/24": 14.0, "184.164.225.0/24": 22.0}
    )
    print(f"TM-Edge selected {edge.selected_prefix('teams')} (lowest RTT)\n")

    # Data plane: a client packet to the anycast service address.
    client_packet = Packet(
        src_ip="192.168.1.10",
        dst_ip="1.1.1.1",
        src_port=52311,
        dst_port=443,
        proto="tcp",
        payload_bytes=1400,
    )
    flow = FiveTuple(
        proto="tcp", src_ip="192.168.1.10", src_port=52311, dst_ip="1.1.1.1", dst_port=443
    )

    print("packet journey (Figure 13):")
    describe("1. client -> TM-Edge       ", client_packet)
    tunneled = edge.forward("teams", client_packet, flow, now_s=0.0)
    describe("2. TM-Edge tunnels          ", tunneled)
    toward_service = tm_pop.handle_ingress(tunneled)
    describe("3. TM-PoP NATs to service   ", toward_service)
    reply = Packet(
        src_ip="1.1.1.1",
        dst_ip=toward_service.src_ip,
        src_port=443,
        dst_port=toward_service.src_port,
        proto="tcp",
        payload_bytes=900,
    )
    describe("4. service replies          ", reply)
    back = tm_pop.handle_service_reply(reply)
    describe("5. TM-PoP returns via tunnel", back)
    final = decapsulate(back)
    describe("6. TM-Edge -> client        ", final)

    print(
        f"\nflow table: {edge.flow_table.destinations()}; "
        f"NAT bindings at TM-PoP: {tm_pop.nat.active_bindings}"
    )


if __name__ == "__main__":
    main()
